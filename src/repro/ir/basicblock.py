"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from repro.common.errors import IRError
from repro.ir.values import Value
from repro.ir.instructions import Phi
from repro.ir.types import VOID


class BasicBlock(Value):
    """A labeled sequence of instructions with a single terminator at the end.

    Blocks are also :class:`Value` objects (of void type) purely so branch
    targets can be printed uniformly; they are never operands.
    """

    def __init__(self, name, parent=None):
        super().__init__(VOID, name)
        self.parent = parent
        self.instructions = []

    # -- construction -------------------------------------------------------

    def append(self, instr):
        """Append ``instr``; refuses to add past an existing terminator."""
        if self.is_terminated():
            raise IRError(
                f"block {self.name!r} already terminated; cannot append {instr!r}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index, instr):
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    def remove(self, instr):
        self.instructions.remove(instr)
        instr.parent = None

    # -- structure queries ---------------------------------------------------

    def terminator(self):
        """The block's terminator, or ``None`` if not yet terminated."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self):
        return self.terminator() is not None

    def successors(self):
        term = self.terminator()
        if term is None or not hasattr(term, "successors"):
            return []
        return term.successors()

    def phis(self):
        """The block's leading phi instructions."""
        out = []
        for instr in self.instructions:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out

    def non_phi_instructions(self):
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def first_non_phi_index(self):
        for idx, instr in enumerate(self.instructions):
            if not isinstance(instr, Phi):
                return idx
        return len(self.instructions)

    def short(self):
        return f"%{self.name}"

    def __repr__(self):
        lines = [f"{self.name}:"]
        lines.extend(f"  {instr!r}" for instr in self.instructions)
        return "\n".join(lines)
