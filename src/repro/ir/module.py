"""IR modules: a translation unit of globals and functions."""

from repro.common.errors import IRError
from repro.ir.values import GlobalVariable
from repro.ir.function import Function


class Module:
    """A compilation unit: named globals plus named functions."""

    def __init__(self, name="module"):
        self.name = name
        self.globals = {}
        self.functions = {}

    def add_global(self, name, size_words, initializer=None):
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        var = GlobalVariable(name, size_words, initializer)
        self.globals[name] = var
        return var

    def add_function(self, name, param_names=(), returns_value=True):
        if name in self.functions:
            raise IRError(f"duplicate function {name!r}")
        func = Function(name, param_names, returns_value)
        self.functions[name] = func
        return func

    def get_function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"unknown function {name!r}") from None

    def __repr__(self):
        parts = [f"; module {self.name}"]
        for var in self.globals.values():
            init = "" if var.initializer is None else f" = {var.initializer}"
            parts.append(f"@{var.name}: [{var.size_words} x i32]{init}")
        parts.extend(repr(func) for func in self.functions.values())
        return "\n\n".join(parts)
