"""IR verifier: structural and SSA well-formedness checks.

Run after construction and between passes (the pass manager calls it when
``verify_each=True``).  Checks:

* every block ends in exactly one terminator, and only at the end;
* phis appear only at block heads and cover each predecessor exactly once;
* every instruction operand is a constant, argument, global, or an
  instruction that *dominates* the use (the SSA dominance property);
* branch targets belong to the same function.
"""

from repro.common.errors import IRError
from repro.ir.values import ConstantInt, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import Instruction, Phi
from repro.ir.analysis.dominance import DominatorTree


def verify_module(module):
    """Verify every function in ``module``; raises :class:`IRError` on failure."""
    for func in module.functions.values():
        verify_function(func)


def verify_function(func):
    """Verify one function; raises :class:`IRError` on the first violation."""
    if not func.blocks:
        raise IRError(f"@{func.name}: function has no blocks")
    _check_block_structure(func)
    _check_phi_shape(func)
    _check_ssa_dominance(func)


def _check_block_structure(func):
    known_blocks = set(func.blocks)
    for block in func.blocks:
        if not block.instructions:
            raise IRError(f"@{func.name}/%{block.name}: empty block")
        for instr in block.instructions[:-1]:
            if instr.is_terminator():
                raise IRError(
                    f"@{func.name}/%{block.name}: terminator {instr!r} "
                    "is not last in block"
                )
        if not block.instructions[-1].is_terminator():
            raise IRError(f"@{func.name}/%{block.name}: missing terminator")
        for succ in block.successors():
            if succ not in known_blocks:
                raise IRError(
                    f"@{func.name}/%{block.name}: branch to foreign block "
                    f"%{succ.name}"
                )


def _check_phi_shape(func):
    preds = func.predecessors()
    for block in func.blocks:
        seen_non_phi = False
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise IRError(
                        f"@{func.name}/%{block.name}: phi {instr!r} not at "
                        "block head"
                    )
                incoming = instr.incoming_blocks
                expected = preds[block]
                if sorted(b.name for b in incoming) != sorted(
                    b.name for b in expected
                ):
                    raise IRError(
                        f"@{func.name}/%{block.name}: phi {instr!r} incoming "
                        f"blocks {[b.name for b in incoming]} do not match "
                        f"predecessors {[b.name for b in expected]}"
                    )
            else:
                seen_non_phi = True


def _check_ssa_dominance(func):
    domtree = DominatorTree(func)
    positions = {}
    for block in func.blocks:
        for idx, instr in enumerate(block.instructions):
            positions[instr] = (block, idx)

    def defined_before(def_instr, use_block, use_idx):
        def_block, def_idx = positions[def_instr]
        if def_block is use_block:
            return def_idx < use_idx
        return domtree.dominates(def_block, use_block)

    for block in func.blocks:
        for idx, instr in enumerate(block.instructions):
            for op_index, op in enumerate(instr.operands):
                if isinstance(
                    op, (ConstantInt, Argument, GlobalVariable, UndefValue)
                ):
                    continue
                if not isinstance(op, Instruction):
                    raise IRError(
                        f"@{func.name}/%{block.name}: {instr!r} has "
                        f"non-value operand {op!r}"
                    )
                if op not in positions:
                    raise IRError(
                        f"@{func.name}/%{block.name}: {instr!r} uses "
                        f"{op.short()} which is not in the function"
                    )
                if isinstance(instr, Phi):
                    # A phi use must dominate the *end of the incoming edge's
                    # predecessor*, not the phi itself.
                    pred = instr.incoming_blocks[op_index]
                    pred_len = len(pred.instructions)
                    if not defined_before(op, pred, pred_len):
                        raise IRError(
                            f"@{func.name}/%{block.name}: phi operand "
                            f"{op.short()} does not dominate edge from "
                            f"%{pred.name}"
                        )
                elif not defined_before(op, block, idx):
                    raise IRError(
                        f"@{func.name}/%{block.name}: use of {op.short()} in "
                        f"{instr!r} is not dominated by its definition"
                    )
