"""IRBuilder: convenience construction of SSA instructions.

The builder holds an insertion point (a block) and exposes one method per
instruction kind, naming results automatically.  Mirrors LLVM's ``IRBuilder``
at the scale this project needs.
"""

from repro.common.errors import IRError
from repro.ir.types import I32
from repro.ir.values import ConstantInt
from repro.ir.instructions import (
    BinOp,
    ICmp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Call,
    Ret,
    Br,
    CondBr,
    Phi,
    Output,
    Select,
)


class IRBuilder:
    """Appends instructions to a current block inside a current function."""

    def __init__(self, function=None):
        self.function = function
        self.block = None

    def set_insert_point(self, block):
        self.block = block
        self.function = block.parent
        return block

    def _emit(self, instr, base_name=None):
        if self.block is None:
            raise IRError("builder has no insertion point")
        if base_name and not instr.name:
            instr.name = self.function.unique_name(base_name)
        return self.block.append(instr)

    # -- constants ------------------------------------------------------------

    def const(self, value):
        return ConstantInt(value)

    # -- arithmetic -----------------------------------------------------------

    def binop(self, op, lhs, rhs, name=None):
        return self._emit(BinOp(op, lhs, rhs), name or op)

    def add(self, lhs, rhs, name=None):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=None):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=None):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=None):
        return self.binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs, rhs, name=None):
        return self.binop("udiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=None):
        return self.binop("srem", lhs, rhs, name)

    def urem(self, lhs, rhs, name=None):
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=None):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=None):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=None):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=None):
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=None):
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=None):
        return self.binop("ashr", lhs, rhs, name)

    def icmp(self, pred, lhs, rhs, name=None):
        return self._emit(ICmp(pred, lhs, rhs), name or f"cmp_{pred}")

    def select(self, cond, a, b, name=None):
        return self._emit(Select(cond, a, b), name or "sel")

    # -- memory -----------------------------------------------------------------

    def alloca(self, size_words=1, name=None):
        return self._emit(Alloca(size_words), name or "slot")

    def load(self, ptr, name=None):
        return self._emit(Load(ptr), name or "ld")

    def store(self, value, ptr):
        return self._emit(Store(value, ptr))

    def gep(self, base, index, name=None):
        return self._emit(GetElementPtr(base, index), name or "addr")

    # -- calls / io -----------------------------------------------------------------

    def call(self, callee, args, returns_value=True, name=None):
        instr = Call(callee, args, returns_value)
        base = name or "call"
        if returns_value:
            return self._emit(instr, base)
        return self._emit(instr)

    def output(self, value):
        return self._emit(Output(value))

    # -- control flow -----------------------------------------------------------------

    def phi(self, type_=I32, name=None):
        """Create a phi at the head of the current block (before non-phis)."""
        instr = Phi(type_)
        instr.name = self.function.unique_name(name or "phi")
        index = self.block.first_non_phi_index()
        return self.block.insert(index, instr)

    def br(self, target):
        return self._emit(Br(target))

    def cond_br(self, cond, iftrue, iffalse):
        return self._emit(CondBr(cond, iftrue, iffalse))

    def ret(self, value=None):
        return self._emit(Ret(value))
