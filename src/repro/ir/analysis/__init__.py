"""CFG analyses: dominance, liveness, natural loops, traversal orders."""

from repro.ir.analysis.cfg import reverse_postorder, reachable_blocks
from repro.ir.analysis.dominance import DominatorTree
from repro.ir.analysis.liveness import LivenessInfo, compute_liveness
from repro.ir.analysis.loops import NaturalLoop, find_natural_loops

__all__ = [
    "reverse_postorder",
    "reachable_blocks",
    "DominatorTree",
    "LivenessInfo",
    "compute_liveness",
    "NaturalLoop",
    "find_natural_loops",
]
