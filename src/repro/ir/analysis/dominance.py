"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is what production compilers at this scale use.
Dominance frontiers drive phi insertion in mem2reg, the exact mechanism by
which the front end produces the SSA the STRAIGHT backend needs.
"""

from repro.ir.analysis.cfg import reverse_postorder, reachable_blocks


class DominatorTree:
    """Immediate dominators, dominance queries, and dominance frontiers."""

    def __init__(self, func):
        self.func = func
        self._reachable = reachable_blocks(func)
        self._rpo = reverse_postorder(func)
        self._rpo_index = {block: i for i, block in enumerate(self._rpo)}
        self.idom = self._compute_idoms()
        self.children = self._build_children()
        self.frontier = self._compute_frontiers()

    # -- construction -------------------------------------------------------

    def _compute_idoms(self):
        entry = self.func.entry
        idom = {entry: entry}
        preds = self.func.predecessors()

        def intersect(a, b):
            while a is not b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in self._rpo:
                if block is entry:
                    continue
                processed = [
                    p
                    for p in preds[block]
                    if p in idom and p in self._reachable
                ]
                if not processed:
                    continue
                new_idom = processed[0]
                for other in processed[1:]:
                    new_idom = intersect(other, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        return idom

    def _build_children(self):
        children = {block: [] for block in self._reachable}
        for block, parent in self.idom.items():
            if block is not self.func.entry:
                children[parent].append(block)
        return children

    def _compute_frontiers(self):
        frontier = {block: set() for block in self._reachable}
        preds = self.func.predecessors()
        for block in self._reachable:
            block_preds = [p for p in preds[block] if p in self._reachable]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier

    # -- queries ----------------------------------------------------------------

    def dominates(self, a, b):
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        runner = b
        while True:
            if runner is a:
                return True
            parent = self.idom.get(runner)
            if parent is None or parent is runner:
                return False
            runner = parent

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def dom_tree_preorder(self):
        """Blocks in dominator-tree preorder (entry first)."""
        order = []
        stack = [self.func.entry]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.children.get(block, [])))
        return order
