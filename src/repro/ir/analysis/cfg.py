"""CFG traversal utilities."""


def reachable_blocks(func):
    """The set of blocks reachable from the entry block."""
    seen = set()
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def postorder(func):
    """Postorder DFS from the entry block (iterative, deterministic)."""
    seen = set()
    order = []
    # Emulate recursive DFS with an explicit stack of (block, child-iterator).
    stack = [(func.entry, iter(func.entry.successors()))]
    seen.add(func.entry)
    while stack:
        block, children = stack[-1]
        advanced = False
        for child in children:
            if child not in seen:
                seen.add(child)
                stack.append((child, iter(child.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    return order


def reverse_postorder(func):
    """Reverse postorder: a topological-ish order ideal for forward dataflow."""
    return list(reversed(postorder(func)))
