"""Per-block liveness of SSA values.

Phi semantics follow the standard convention: a phi's operands are live-out of
the corresponding *predecessor* (the copy happens on the edge), and the phi's
own result is live-in to its block — this is precisely the set of values the
STRAIGHT backend must refresh with RMOVs at merge points (paper §IV-C2:
"obtained by liveness analysis as well").
"""

from repro.ir.values import Argument
from repro.ir.instructions import Instruction, Phi


def _trackable(value):
    """Instruction results and arguments have lifetimes worth tracking;
    constants and globals are re-materializable and handled separately by
    backends."""
    return isinstance(value, (Instruction, Argument))


class LivenessInfo:
    """Holds live-in / live-out sets (of Instruction values) per block."""

    def __init__(self, live_in, live_out):
        self.live_in = live_in
        self.live_out = live_out

    def live_across_edge(self, pred, succ):
        """Values live along the CFG edge ``pred -> succ``.

        This is live-in of ``succ`` minus ``succ``'s own phi results, plus the
        phi operands flowing in from ``pred``.
        """
        values = set(self.live_in[succ])
        for phi in succ.phis():
            values.discard(phi)
            incoming = phi.incoming_for(pred)
            if _trackable(incoming):
                values.add(incoming)
        return values


def compute_liveness(func):
    """Backward dataflow to a fixed point; returns :class:`LivenessInfo`."""
    use = {block: set() for block in func.blocks}
    defs = {block: set() for block in func.blocks}
    # Phi operands act as uses at the end of the incoming predecessor.
    phi_uses_at_pred_exit = {block: set() for block in func.blocks}

    for block in func.blocks:
        for instr in block.instructions:
            if isinstance(instr, Phi):
                defs[block].add(instr)
                for value, pred in instr.incomings():
                    if _trackable(value):
                        phi_uses_at_pred_exit[pred].add(value)
                continue
            for op in instr.operands:
                if _trackable(op) and op not in defs[block]:
                    use[block].add(op)
            if not instr.type.is_void():
                defs[block].add(instr)

    live_in = {block: set() for block in func.blocks}
    live_out = {block: set() for block in func.blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            out = set(phi_uses_at_pred_exit[block])
            for succ in block.successors():
                out |= live_in[succ] - set(succ.phis())
            new_in = use[block] | (out - defs[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True

    return LivenessInfo(live_in, live_out)
