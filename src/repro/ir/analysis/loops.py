"""Natural loop detection (back edges via dominance).

The RE+ optimization's "stack-frame demotion" (paper §IV-D and Fig. 10(c))
needs to know which values are live *through* a loop but never used inside it;
this module finds the loops.
"""

from repro.ir.analysis.dominance import DominatorTree


class NaturalLoop:
    """A natural loop: ``header`` plus the ``body`` block set (incl. header)."""

    def __init__(self, header, body):
        self.header = header
        self.body = body  # set of blocks, includes header

    def exits(self):
        """Blocks outside the loop targeted by a branch from inside it."""
        targets = set()
        for block in self.body:
            for succ in block.successors():
                if succ not in self.body:
                    targets.add(succ)
        return targets

    def __repr__(self):
        names = sorted(b.name for b in self.body)
        return f"Loop(header=%{self.header.name}, body={names})"


def find_natural_loops(func):
    """All natural loops, one per header (bodies of shared headers merged)."""
    domtree = DominatorTree(func)
    preds = func.predecessors()
    loops_by_header = {}

    for block in func.blocks:
        for succ in block.successors():
            if domtree.dominates(succ, block):
                # Back edge block -> succ; succ is the loop header.
                body = loops_by_header.setdefault(succ, {succ})
                _collect_body(block, succ, body, preds)

    return [NaturalLoop(header, body) for header, body in loops_by_header.items()]


def _collect_body(latch, header, body, preds):
    """Walk predecessors from the latch up to the header, collecting blocks."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in body:
            continue
        body.add(block)
        stack.extend(preds[block])
