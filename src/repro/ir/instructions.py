"""IR instructions.

Instructions are :class:`~repro.ir.values.Value` objects whose operands are
held in ``self.operands`` (a plain list, rewritten in place by passes).
Terminators (:class:`Ret`, :class:`Br`, :class:`CondBr`) end a basic block.

Comparison results are materialized as ``i32`` 0/1 — there is no ``i1`` type —
which matches how both target ISAs (RV32IM ``SLT``-family, STRAIGHT
``SLT``-family) produce booleans.
"""

from repro.ir.types import I32, PTR, VOID
from repro.ir.values import Value

#: Binary opcodes; the division/remainder/shift-right opcodes come in
#: signed/unsigned pairs exactly as in RV32IM (div/divu, rem/remu, sra/srl).
BINOP_OPCODES = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "udiv",
    "srem",
    "urem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)

#: Comparison predicates (signed and unsigned orderings).
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


class Instruction(Value):
    """Base class; ``opcode`` names the operation, ``operands`` its inputs."""

    opcode = "instr"

    def __init__(self, type_, operands, name=""):
        super().__init__(type_, name)
        self.operands = list(operands)
        self.parent = None  # owning BasicBlock, set on insertion

    def is_terminator(self):
        return False

    def has_side_effects(self):
        """True when the instruction cannot be dead-code eliminated."""
        return False

    def replace_operand(self, old, new):
        """Replace every occurrence of ``old`` in the operand list."""
        self.operands = [new if op is old else op for op in self.operands]

    def operand_str(self):
        return ", ".join(op.short() for op in self.operands)

    def __repr__(self):
        operands = self.operand_str()
        body = f"{self.opcode} {operands}" if operands else self.opcode
        if self.type.is_void():
            return body
        return f"{self.short()} = {body}"


class BinOp(Instruction):
    """``dst = op lhs, rhs`` for ``op`` in :data:`BINOP_OPCODES`."""

    def __init__(self, op, lhs, rhs, name=""):
        if op not in BINOP_OPCODES:
            raise ValueError(f"unknown binary opcode {op!r}")
        super().__init__(I32, [lhs, rhs], name)
        self.opcode = op

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class ICmp(Instruction):
    """``dst = icmp.<pred> lhs, rhs`` producing i32 0 or 1."""

    def __init__(self, pred, lhs, rhs, name=""):
        if pred not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {pred!r}")
        super().__init__(I32, [lhs, rhs], name)
        self.pred = pred
        self.opcode = f"icmp.{pred}"

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class Select(Instruction):
    """``dst = select cond, a, b`` — ``a`` if ``cond`` is non-zero, else ``b``."""

    opcode = "select"

    def __init__(self, cond, a, b, name=""):
        super().__init__(I32, [cond, a, b], name)

    @property
    def cond(self):
        return self.operands[0]


class Load(Instruction):
    """``dst = load ptr`` — read one aligned word."""

    opcode = "load"

    def __init__(self, ptr, name=""):
        super().__init__(I32, [ptr], name)

    @property
    def ptr(self):
        return self.operands[0]


class Store(Instruction):
    """``store value, ptr`` — write one aligned word.  Value-less."""

    opcode = "store"

    def __init__(self, value, ptr):
        super().__init__(VOID, [value, ptr])

    def has_side_effects(self):
        return True

    @property
    def value(self):
        return self.operands[0]

    @property
    def ptr(self):
        return self.operands[1]


class Alloca(Instruction):
    """``dst = alloca n`` — reserve ``n`` words in the current stack frame."""

    opcode = "alloca"

    def __init__(self, size_words, name=""):
        super().__init__(PTR, [], name)
        if size_words <= 0:
            raise ValueError("alloca size must be positive")
        self.size_words = size_words

    def has_side_effects(self):
        # Keep allocas alive until mem2reg decides their fate.
        return True

    def __repr__(self):
        return f"{self.short()} = alloca {self.size_words}"


class GetElementPtr(Instruction):
    """``dst = gep base, index`` — byte address ``base + index * 4``."""

    opcode = "gep"

    def __init__(self, base, index, name=""):
        super().__init__(PTR, [base, index], name)

    @property
    def base(self):
        return self.operands[0]

    @property
    def index(self):
        return self.operands[1]


class Call(Instruction):
    """``dst = call @f(args...)`` (or value-less for void functions)."""

    opcode = "call"

    def __init__(self, callee, args, returns_value=True, name=""):
        super().__init__(I32 if returns_value else VOID, list(args), name)
        self.callee = callee  # Function or str (resolved at link of IR module)

    def has_side_effects(self):
        return True

    def callee_name(self):
        return self.callee if isinstance(self.callee, str) else self.callee.name

    def __repr__(self):
        args = self.operand_str()
        if self.type.is_void():
            return f"call @{self.callee_name()}({args})"
        return f"{self.short()} = call @{self.callee_name()}({args})"


class Output(Instruction):
    """``output value`` — emit a word to the validation output channel.

    Lowered to the ``OUT`` instruction on STRAIGHT and the output ``ECALL`` on
    RV32IM; used to cross-check compiled binaries between the two ISAs.
    """

    opcode = "output"

    def __init__(self, value):
        super().__init__(VOID, [value])

    def has_side_effects(self):
        return True

    @property
    def value(self):
        return self.operands[0]


class Ret(Instruction):
    """``ret value`` or bare ``ret``."""

    opcode = "ret"

    def __init__(self, value=None):
        super().__init__(VOID, [value] if value is not None else [])

    def is_terminator(self):
        return True

    def has_side_effects(self):
        return True

    @property
    def value(self):
        return self.operands[0] if self.operands else None


class Br(Instruction):
    """``br label`` — unconditional branch."""

    opcode = "br"

    def __init__(self, target):
        super().__init__(VOID, [])
        self.target = target

    def is_terminator(self):
        return True

    def has_side_effects(self):
        return True

    def successors(self):
        return [self.target]

    def replace_successor(self, old, new):
        if self.target is old:
            self.target = new

    def __repr__(self):
        return f"br %{self.target.name}"


class CondBr(Instruction):
    """``condbr cond, iftrue, iffalse`` — taken when ``cond`` is non-zero."""

    opcode = "condbr"

    def __init__(self, cond, iftrue, iffalse):
        super().__init__(VOID, [cond])
        self.iftrue = iftrue
        self.iffalse = iffalse

    def is_terminator(self):
        return True

    def has_side_effects(self):
        return True

    @property
    def cond(self):
        return self.operands[0]

    def successors(self):
        return [self.iftrue, self.iffalse]

    def replace_successor(self, old, new):
        if self.iftrue is old:
            self.iftrue = new
        if self.iffalse is old:
            self.iffalse = new

    def __repr__(self):
        return f"condbr {self.cond.short()}, %{self.iftrue.name}, %{self.iffalse.name}"


class Phi(Instruction):
    """SSA merge: ``dst = phi [v0, bb0], [v1, bb1], ...``.

    ``incomings`` is a list of ``(value, block)`` pairs; the operand list
    mirrors the values so generic operand rewriting also reaches phis.
    """

    opcode = "phi"

    def __init__(self, type_=I32, name=""):
        super().__init__(type_, [], name)
        self.incoming_blocks = []

    def add_incoming(self, value, block):
        self.operands.append(value)
        self.incoming_blocks.append(block)

    def incomings(self):
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block):
        """The value flowing in from predecessor ``block``."""
        for value, pred in self.incomings():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming for block {block.name!r}")

    def set_incoming_block(self, old, new):
        self.incoming_blocks = [
            new if blk is old else blk for blk in self.incoming_blocks
        ]

    def remove_incoming(self, block):
        pairs = [(v, b) for v, b in self.incomings() if b is not block]
        self.operands = [v for v, _ in pairs]
        self.incoming_blocks = [b for _, b in pairs]

    def __repr__(self):
        pairs = ", ".join(
            f"[{v.short()}, %{b.name}]" for v, b in self.incomings()
        )
        return f"{self.short()} = phi {pairs}"
