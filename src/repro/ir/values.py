"""IR values: the nodes of the SSA value graph.

A :class:`Value` is anything an instruction may take as an operand: constants,
function arguments, global variables, and instructions themselves
(:class:`~repro.ir.instructions.Instruction` subclasses ``Value``).
"""

from repro.common.bitops import wrap32
from repro.ir.types import I32, PTR


class Value:
    """Base class of everything usable as an operand."""

    def __init__(self, type_, name=""):
        self.type = type_
        self.name = name

    def short(self):
        """Compact printable form used inside instruction listings."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self):
        return self.short()


class ConstantInt(Value):
    """A 32-bit integer constant (stored wrapped to unsigned)."""

    def __init__(self, value):
        super().__init__(I32)
        self.value = wrap32(value)

    def short(self):
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, ConstantInt) and other.value == self.value

    def __hash__(self):
        return hash(("const", self.value))


class UndefValue(Value):
    """An undefined value (used for incomplete phi inputs on impossible paths)."""

    def __init__(self, type_=I32):
        super().__init__(type_)

    def short(self):
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name, type_=I32, index=0):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level array of words.

    ``size_words`` is the allocation size; ``initializer`` is either ``None``
    (zero-initialized) or a list of at most ``size_words`` word values.
    A global's value, used as an operand, is its byte address (a ``ptr``).
    """

    def __init__(self, name, size_words, initializer=None):
        super().__init__(PTR, name)
        if size_words <= 0:
            raise ValueError(f"global {name!r} must have positive size")
        if initializer is not None and len(initializer) > size_words:
            raise ValueError(f"global {name!r}: initializer longer than size")
        self.size_words = size_words
        self.initializer = list(initializer) if initializer is not None else None

    def short(self):
        return f"@{self.name}"

    def init_words(self):
        """The full ``size_words``-long initializer (zero padded)."""
        words = [wrap32(w) for w in (self.initializer or [])]
        words.extend([0] * (self.size_words - len(words)))
        return words
