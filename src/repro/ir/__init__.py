"""SSA intermediate representation (the reproduction's LLVM-IR substitute).

The STRAIGHT compiler in the paper consumes LLVM IR because it is SSA-formed:
every destination is written once, which matches STRAIGHT's write-once
register discipline, and PHI instructions mark exactly the merge points where
the backend must fix distances.  This package provides the same shape:

* a typed value graph (:mod:`.values`, :mod:`.instructions`),
* functions of basic blocks with explicit terminators (:mod:`.function`),
* an :class:`~repro.ir.builder.IRBuilder` for construction,
* analyses (dominance, liveness, natural loops, CFG utilities), and
* transformation passes (mem2reg, const-fold, DCE, simplify-CFG,
  critical-edge splitting) run through a small pass manager.
"""

from repro.ir.types import IntType, PointerType, VoidType, I32, PTR, VOID
from repro.ir.values import Value, ConstantInt, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import (
    Instruction,
    BinOp,
    ICmp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Call,
    Ret,
    Br,
    CondBr,
    Phi,
    Output,
    Select,
    BINOP_OPCODES,
    ICMP_PREDICATES,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_module, verify_function
from repro.ir.parser import parse_module

__all__ = [
    "IntType",
    "PointerType",
    "VoidType",
    "I32",
    "PTR",
    "VOID",
    "Value",
    "ConstantInt",
    "Argument",
    "GlobalVariable",
    "UndefValue",
    "Instruction",
    "BinOp",
    "ICmp",
    "Load",
    "Store",
    "Alloca",
    "GetElementPtr",
    "Call",
    "Ret",
    "Br",
    "CondBr",
    "Phi",
    "Output",
    "Select",
    "BINOP_OPCODES",
    "ICMP_PREDICATES",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "verify_module",
    "verify_function",
    "parse_module",
]
