"""Local common-subexpression elimination (block-scoped value numbering).

Within one basic block, two pure instructions with the same opcode and the
same operands compute the same value; the second is replaced by the first.
Commutative operations are canonicalized so ``a+b`` and ``b+a`` match.
Memory operations are not touched (no alias analysis at this scale).
"""

from repro.ir.values import ConstantInt
from repro.ir.instructions import BinOp, ICmp, GetElementPtr, Select

_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}


def _operand_key(value):
    if isinstance(value, ConstantInt):
        return ("const", value.value)
    return ("value", id(value))


def _value_number(instr):
    """A hashable key identifying the computation, or None if not CSE-able."""
    if isinstance(instr, BinOp):
        lhs, rhs = _operand_key(instr.lhs), _operand_key(instr.rhs)
        if instr.opcode in _COMMUTATIVE and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("bin", instr.opcode, lhs, rhs)
    if isinstance(instr, ICmp):
        return (
            "icmp",
            instr.pred,
            _operand_key(instr.lhs),
            _operand_key(instr.rhs),
        )
    if isinstance(instr, GetElementPtr):
        return (
            "gep",
            _operand_key(instr.base),
            _operand_key(instr.index),
        )
    if isinstance(instr, Select):
        return ("select",) + tuple(_operand_key(op) for op in instr.operands)
    return None


def eliminate_common_subexpressions(func):
    """Run local CSE over every block; returns the number of replacements."""
    replaced = 0
    replacements = {}
    for block in func.blocks:
        available = {}
        for instr in list(block.instructions):
            instr.operands = [replacements.get(op, op) for op in instr.operands]
            key = _value_number(instr)
            if key is None:
                continue
            existing = available.get(key)
            if existing is not None:
                replacements[instr] = existing
                block.remove(instr)
                replaced += 1
            else:
                available[key] = instr
    if replacements:
        def resolve(value):
            seen = set()
            while value in replacements and value not in seen:
                seen.add(value)
                value = replacements[value]
            return value

        for block in func.blocks:
            for instr in block.instructions:
                instr.operands = [resolve(op) for op in instr.operands]
    return replaced
