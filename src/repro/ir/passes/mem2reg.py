"""mem2reg: promote single-word allocas to SSA values with phi insertion.

This is the pass that turns the front end's naive alloca/load/store output
into genuine SSA — the IR shape the paper's compiler consumes ("LLVM IR is an
SSA-formed IR ... this manner is similar to the register management of
STRAIGHT", §IV-A).  Classic two-phase algorithm:

1. insert phis at the iterated dominance frontier of every store block;
2. rename loads/stores by walking the dominator tree with a value stack.
"""

from repro.ir.values import UndefValue
from repro.ir.instructions import Load, Store, Alloca, Phi
from repro.ir.analysis.dominance import DominatorTree


def promote_allocas(func):
    """Promote every promotable alloca in ``func``; returns count promoted."""
    allocas = _promotable_allocas(func)
    if not allocas:
        return 0
    domtree = DominatorTree(func)
    phi_owner = _insert_phis(func, allocas, domtree)
    _rename(func, allocas, domtree, phi_owner)
    _strip(func, allocas)
    return len(allocas)


def _promotable_allocas(func):
    """Single-word allocas whose only uses are direct word loads/stores."""
    allocas = [
        instr
        for block in func.blocks
        for instr in block.instructions
        if isinstance(instr, Alloca) and instr.size_words == 1
    ]
    promotable = set(allocas)
    for block in func.blocks:
        for instr in block.instructions:
            for op in instr.operands:
                if not isinstance(op, Alloca) or op not in promotable:
                    continue
                is_load = isinstance(instr, Load) and instr.ptr is op
                is_store_addr = (
                    isinstance(instr, Store)
                    and instr.ptr is op
                    and instr.value is not op
                )
                if not (is_load or is_store_addr):
                    # Address escapes (stored as a value, passed to a call,
                    # used in pointer arithmetic): leave it in memory.
                    promotable.discard(op)
    return [a for a in allocas if a in promotable]


def _insert_phis(func, allocas, domtree):
    """Phase 1: place empty phis at iterated dominance frontiers."""
    phi_owner = {}
    for alloca in allocas:
        def_blocks = {
            instr.parent
            for block in func.blocks
            for instr in block.instructions
            if isinstance(instr, Store) and instr.ptr is alloca
        }
        placed = set()
        worklist = list(def_blocks)
        while worklist:
            block = worklist.pop()
            for frontier_block in domtree.frontier.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi()
                phi.name = func.unique_name(f"{alloca.name}.phi")
                frontier_block.insert(0, phi)
                phi_owner[phi] = alloca
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)
    return phi_owner


def _rename(func, allocas, domtree, phi_owner):
    """Phase 2: dominator-tree walk replacing loads with reaching values."""
    alloca_set = set(allocas)
    replacements = {}  # load instruction -> SSA value

    def current(stacks, alloca):
        stack = stacks[alloca]
        return stack[-1] if stack else UndefValue()

    stacks = {alloca: [] for alloca in allocas}
    # Iterative preorder walk carrying push-counts for scope restoration.
    visit_stack = [(func.entry, False)]
    pushed = {}
    while visit_stack:
        block, done = visit_stack.pop()
        if done:
            for alloca, count in pushed.pop(block, {}).items():
                for _ in range(count):
                    stacks[alloca].pop()
            continue
        visit_stack.append((block, True))
        counts = {}
        pushed[block] = counts

        for instr in list(block.instructions):
            if isinstance(instr, Phi) and instr in phi_owner:
                alloca = phi_owner[instr]
                stacks[alloca].append(instr)
                counts[alloca] = counts.get(alloca, 0) + 1
            elif isinstance(instr, Load) and instr.ptr in alloca_set:
                replacements[instr] = current(stacks, instr.ptr)
                block.remove(instr)
            elif isinstance(instr, Store) and instr.ptr in alloca_set:
                value = instr.value
                value = replacements.get(value, value)
                stacks[instr.ptr].append(value)
                counts[instr.ptr] = counts.get(instr.ptr, 0) + 1
                block.remove(instr)

        for succ in block.successors():
            for phi in succ.phis():
                if phi in phi_owner:
                    phi.add_incoming(current(stacks, phi_owner[phi]), block)

        for child in domtree.children.get(block, ()):
            visit_stack.append((child, False))

    # Chase replacement chains (a load replaced by another replaced load).
    def resolve(value):
        seen = set()
        while value in replacements and value not in seen:
            seen.add(value)
            value = replacements[value]
        return value

    for block in func.blocks:
        for instr in block.instructions:
            instr.operands = [resolve(op) for op in instr.operands]


def _strip(func, allocas):
    """Remove the promoted allocas and any phis that ended up unreferenced."""
    for alloca in allocas:
        alloca.parent.remove(alloca)
