"""Loop-invariant code motion.

Hoists pure instructions whose operands are all defined outside a natural
loop into a dedicated preheader block.  Classic and effective for the
workload kernels (``i * n`` in a ``k`` loop, global base addresses), and an
interesting ablation subject for STRAIGHT: hoisting *extends live ranges*,
and every value live across a merge costs one refresh RMOV per iteration —
the compile-time tension the paper's §IV-D discusses.
"""

from repro.ir.instructions import Br, Phi, BinOp, ICmp, GetElementPtr, Select
from repro.ir.analysis.loops import find_natural_loops

_HOISTABLE = (BinOp, ICmp, GetElementPtr, Select)


def hoist_loop_invariants(func):
    """Hoist invariant computations; returns the number hoisted."""
    hoisted_total = 0
    # Loops change as preheaders are inserted; recompute per round.
    for _ in range(4):
        hoisted = 0
        for loop in find_natural_loops(func):
            hoisted += _hoist_one_loop(func, loop)
        hoisted_total += hoisted
        if hoisted == 0:
            break
    return hoisted_total


def _hoist_one_loop(func, loop):
    defined_in_loop = set()
    for block in loop.body:
        for instr in block.instructions:
            defined_in_loop.add(instr)

    def is_invariant(instr):
        return not any(op in defined_in_loop for op in instr.operands)

    candidates = []
    for block in loop.body:
        for instr in block.instructions:
            if isinstance(instr, _HOISTABLE) and is_invariant(instr):
                candidates.append(instr)
    # Re-scan to a local fixed point: hoisting one instruction can make its
    # consumers invariant too.
    changed = True
    while changed:
        changed = False
        hoisted_set = set(candidates)
        for block in loop.body:
            for instr in block.instructions:
                if instr in hoisted_set or not isinstance(instr, _HOISTABLE):
                    continue
                if all(
                    op not in defined_in_loop or op in hoisted_set
                    for op in instr.operands
                ):
                    candidates.append(instr)
                    changed = True

    if not candidates:
        return 0

    preheader = _get_or_create_preheader(func, loop)
    if preheader is None:
        return 0
    ordered = _dependence_order(candidates)
    insert_at = len(preheader.instructions) - 1  # before the terminator
    for instr in ordered:
        instr.parent.remove(instr)
        preheader.insert(insert_at, instr)
        insert_at += 1
    return len(ordered)


def _dependence_order(candidates):
    """Order hoisted instructions so producers precede their consumers."""
    candidate_set = set(candidates)
    placed = set()
    ordered = []
    pending = list(candidates)
    while pending:
        progressed = False
        remaining = []
        for instr in pending:
            deps = [op for op in instr.operands if op in candidate_set]
            if all(dep in placed for dep in deps):
                ordered.append(instr)
                placed.add(instr)
                progressed = True
            else:
                remaining.append(instr)
        pending = remaining
        if not progressed:  # pragma: no cover - SSA has no operand cycles
            ordered.extend(pending)
            break
    return ordered


def _get_or_create_preheader(func, loop):
    """The unique out-of-loop predecessor of the header, creating one if
    several exist.  Returns None when the header is the function entry."""
    header = loop.header
    preds = func.predecessors()[header]
    outside = [p for p in preds if p not in loop.body]
    if not outside:
        return None
    if len(outside) == 1 and len(set(outside[0].successors())) == 1:
        return outside[0]

    preheader = func.insert_block_after(outside[0], f"{header.name}.preheader")
    preheader.append(Br(header))
    for pred in outside:
        pred.terminator().replace_successor(header, preheader)
    # Re-route phi inputs: outside incomings merge in the preheader.
    for phi in header.phis():
        outside_pairs = [
            (value, pred) for value, pred in phi.incomings() if pred in outside
        ]
        for _, pred in outside_pairs:
            phi.remove_incoming(pred)
        if len(outside_pairs) == 1:
            phi.add_incoming(outside_pairs[0][0], preheader)
        else:
            merged = Phi()
            merged.name = func.unique_name(f"{phi.name}.ph")
            for value, pred in outside_pairs:
                merged.add_incoming(value, pred)
            preheader.insert(0, merged)
            phi.add_incoming(merged, preheader)
    return preheader
