"""Critical edge splitting.

An edge P -> B is *critical* when P has multiple successors and B multiple
predecessors.  The STRAIGHT backend appends distance-refreshing RMOVs "at the
tail of merging basic blocks" (paper §IV-C2); that placement is only
unconditionally correct when each predecessor of a merge reaches *only* that
merge, so the backend runs this pass first.  (LLVM does the same before phi
lowering.)
"""

from repro.ir.instructions import Br


def split_critical_edges(func):
    """Split every critical edge in ``func``; returns the number split."""
    count = 0
    while True:
        edge = _find_critical_edge(func)
        if edge is None:
            return count
        pred, succ = edge
        middle = func.insert_block_after(pred, f"{pred.name}.split")
        middle.append(Br(succ))
        pred.terminator().replace_successor(succ, middle)
        for phi in succ.phis():
            phi.set_incoming_block(pred, middle)
        count += 1


def _find_critical_edge(func):
    preds = func.predecessors()
    for block in func.blocks:
        succs = block.successors()
        if len(set(succs)) < 2:
            continue
        for succ in succs:
            if len(preds[succ]) >= 2:
                return block, succ
    return None
