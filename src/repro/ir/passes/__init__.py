"""IR-to-IR transformation passes and the pass manager."""

from repro.ir.passes.mem2reg import promote_allocas
from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.passes.cse import eliminate_common_subexpressions
from repro.ir.passes.licm import hoist_loop_invariants
from repro.ir.passes.split_critical_edges import split_critical_edges
from repro.ir.passes.pass_manager import PassManager, default_pipeline

__all__ = [
    "promote_allocas",
    "fold_constants",
    "eliminate_dead_code",
    "simplify_cfg",
    "eliminate_common_subexpressions",
    "hoist_loop_invariants",
    "split_critical_edges",
    "PassManager",
    "default_pipeline",
]
