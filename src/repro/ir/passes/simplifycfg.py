"""CFG simplification.

Performs, to a fixed point:

* folding of conditional branches on constants,
* removal of unreachable blocks (with phi-incoming cleanup),
* merging of a block into its unique predecessor when that predecessor has a
  unique successor,
* collapsing of trivial phis (all incomings identical or self-references).

These matter for STRAIGHT code quality: every surviving merge point costs
RMOVs, so removing pointless merges is a genuine code-size/performance lever.
"""

from repro.ir.values import ConstantInt
from repro.ir.instructions import Instruction, Br, CondBr, Phi
from repro.ir.analysis.cfg import reachable_blocks


def simplify_cfg(func):
    """Simplify ``func``'s CFG; returns the number of rewrites performed."""
    total = 0
    while True:
        changed = (
            _fold_constant_branches(func)
            + _remove_unreachable(func)
            + _collapse_trivial_phis(func)
            + _merge_straightline_pairs(func)
        )
        total += changed
        if changed == 0:
            return total


def _fold_constant_branches(func):
    count = 0
    for block in func.blocks:
        term = block.terminator()
        if isinstance(term, CondBr) and isinstance(term.cond, ConstantInt):
            taken = term.iftrue if term.cond.value != 0 else term.iffalse
            not_taken = term.iffalse if term.cond.value != 0 else term.iftrue
            block.remove(term)
            block.append(Br(taken))
            if not_taken is not taken:
                for phi in not_taken.phis():
                    phi.remove_incoming(block)
            count += 1
        elif isinstance(term, CondBr) and term.iftrue is term.iffalse:
            target = term.iftrue
            block.remove(term)
            block.append(Br(target))
            count += 1
    return count


def _remove_unreachable(func):
    reachable = reachable_blocks(func)
    dead = [b for b in func.blocks if b not in reachable]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in func.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming(pred)
    for block in dead:
        func.remove_block(block)
    return len(dead)


def _collapse_trivial_phis(func):
    replacements = {}
    count = 0
    for block in func.blocks:
        for phi in list(block.phis()):
            distinct = {v for v in phi.operands if v is not phi}
            if len(distinct) == 1:
                replacements[phi] = distinct.pop()
                block.remove(phi)
                count += 1
    if replacements:
        def resolve(value):
            seen = set()
            while value in replacements and value not in seen:
                seen.add(value)
                value = replacements[value]
            return value

        for block in func.blocks:
            for instr in block.instructions:
                instr.operands = [resolve(op) for op in instr.operands]
    return count


def _merge_straightline_pairs(func):
    preds = func.predecessors()
    count = 0
    for block in list(func.blocks):
        if block is func.entry:
            continue
        block_preds = preds.get(block)
        if block_preds is None or len(block_preds) != 1:
            continue
        pred = block_preds[0]
        if pred is block or len(pred.successors()) != 1:
            continue
        if block.phis():
            continue  # trivial-phi collapse will clear these first
        # Splice block's instructions into pred, replacing pred's terminator.
        term = pred.terminator()
        pred.remove(term)
        for instr in list(block.instructions):
            block.remove(instr)
            pred.append(instr)
        for succ in pred.successors():
            for phi in succ.phis():
                phi.set_incoming_block(block, pred)
        func.remove_block(block)
        preds = func.predecessors()
        count += 1
    return count
