"""A small pass manager running function passes over a module."""

from repro.ir.verifier import verify_function
from repro.ir.passes.mem2reg import promote_allocas
from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.passes.cse import eliminate_common_subexpressions
from repro.ir.passes.licm import hoist_loop_invariants


class PassManager:
    """Runs a sequence of ``func -> int`` passes over every module function."""

    def __init__(self, passes=(), verify_each=True, max_rounds=8):
        self.passes = list(passes)
        self.verify_each = verify_each
        self.max_rounds = max_rounds

    def add(self, pass_fn):
        self.passes.append(pass_fn)
        return self

    def run(self, module):
        """Run the pipeline to a fixed point (bounded); returns total rewrites."""
        total = 0
        for func in module.functions.values():
            for _ in range(self.max_rounds):
                round_changes = 0
                for pass_fn in self.passes:
                    round_changes += pass_fn(func)
                    if self.verify_each:
                        verify_function(func)
                total += round_changes
                if round_changes == 0:
                    break
        return total


def default_pipeline(verify_each=True, licm=True):
    """The standard -O2-like pipeline used ahead of both backends."""
    passes = [
        promote_allocas,
        fold_constants,
        eliminate_common_subexpressions,
        eliminate_dead_code,
        simplify_cfg,
    ]
    if licm:
        passes.append(hoist_loop_invariants)
    return PassManager(passes, verify_each=verify_each)
