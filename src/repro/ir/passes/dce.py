"""Dead code elimination.

Removes value-producing instructions with no transitive side-effecting users.
Works backwards to a fixed point so whole dead chains disappear in one call.
"""

from repro.ir.instructions import Instruction


def eliminate_dead_code(func):
    """Remove dead instructions from ``func``; returns the number removed."""
    removed_total = 0
    while True:
        used = set()
        for block in func.blocks:
            for instr in block.instructions:
                for op in instr.operands:
                    if isinstance(op, Instruction):
                        used.add(op)
        removed = 0
        for block in func.blocks:
            for instr in list(block.instructions):
                if instr.is_terminator() or instr.has_side_effects():
                    continue
                if instr not in used:
                    block.remove(instr)
                    removed += 1
        removed_total += removed
        if removed == 0:
            return removed_total
