"""Constant folding and trivial algebraic simplification.

Folds BinOp/ICmp/Select over :class:`ConstantInt` operands using the exact
32-bit semantics of the target machines (shared with both functional
simulators through :mod:`repro.common.bitops`), plus a few identities
(x+0, x*1, x*0, x-x, ...).
"""

from repro.common.bitops import wrap32, to_signed
from repro.ir.values import ConstantInt
from repro.ir.instructions import BinOp, ICmp, Select


def eval_binop(op, a, b):
    """Evaluate ``op`` on unsigned 32-bit words ``a``, ``b``; returns a word.

    Division semantics follow RV32IM: divide by zero yields all-ones (div)
    or the dividend (rem); overflow ``INT_MIN / -1`` yields ``INT_MIN``.
    """
    sa, sb = to_signed(a), to_signed(b)
    if op == "add":
        return wrap32(a + b)
    if op == "sub":
        return wrap32(a - b)
    if op == "mul":
        return wrap32(a * b)
    if op == "sdiv":
        if b == 0:
            return 0xFFFF_FFFF
        if sa == -(2**31) and sb == -1:
            return 0x8000_0000
        return wrap32(int(sa / sb))  # trunc toward zero
    if op == "udiv":
        if b == 0:
            return 0xFFFF_FFFF
        return wrap32(a // b)
    if op == "srem":
        if b == 0:
            return a
        if sa == -(2**31) and sb == -1:
            return 0
        return wrap32(sa - int(sa / sb) * sb)
    if op == "urem":
        if b == 0:
            return a
        return wrap32(a % b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return wrap32(a << (b & 31))
    if op == "lshr":
        return a >> (b & 31)
    if op == "ashr":
        return wrap32(sa >> (b & 31))
    raise ValueError(f"unknown binop {op!r}")


def eval_icmp(pred, a, b):
    """Evaluate comparison ``pred`` on words ``a``, ``b``; returns 0 or 1."""
    sa, sb = to_signed(a), to_signed(b)
    table = {
        "eq": a == b,
        "ne": a != b,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
    }
    return 1 if table[pred] else 0


def fold_constants(func):
    """One folding sweep over ``func``; returns the number of folds."""
    folded = {}

    def resolve(value):
        return folded.get(value, value)

    count = 0
    for block in func.blocks:
        for instr in list(block.instructions):
            instr.operands = [resolve(op) for op in instr.operands]
            replacement = _try_fold(instr)
            if replacement is not None:
                folded[instr] = replacement
                block.remove(instr)
                count += 1
    if folded:
        for block in func.blocks:
            for instr in block.instructions:
                instr.operands = [resolve(op) for op in instr.operands]
    return count


def _try_fold(instr):
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        lc = isinstance(lhs, ConstantInt)
        rc = isinstance(rhs, ConstantInt)
        if lc and rc:
            return ConstantInt(eval_binop(instr.opcode, lhs.value, rhs.value))
        return _algebraic_identity(instr, lhs, rhs, lc, rc)
    if isinstance(instr, ICmp):
        if isinstance(instr.lhs, ConstantInt) and isinstance(
            instr.rhs, ConstantInt
        ):
            return ConstantInt(
                eval_icmp(instr.pred, instr.lhs.value, instr.rhs.value)
            )
        return None
    if isinstance(instr, Select) and isinstance(instr.cond, ConstantInt):
        return instr.operands[1] if instr.cond.value != 0 else instr.operands[2]
    return None


def _algebraic_identity(instr, lhs, rhs, lc, rc):
    op = instr.opcode
    if rc:
        r = rhs.value
        if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and r == 0:
            return lhs
        if op == "mul" and r == 1:
            return lhs
        if op == "mul" and r == 0:
            return ConstantInt(0)
        if op == "and" and r == 0xFFFF_FFFF:
            return lhs
        if op == "and" and r == 0:
            return ConstantInt(0)
    if lc:
        l = lhs.value
        if op == "add" and l == 0:
            return rhs
        if op == "mul" and l == 1:
            return rhs
        if op == "mul" and l == 0:
            return ConstantInt(0)
        if op in ("and", "or") and l == 0:
            return ConstantInt(0) if op == "and" else rhs
    if op == "sub" and lhs is rhs:
        return ConstantInt(0)
    if op == "xor" and lhs is rhs:
        return ConstantInt(0)
    return None
