"""IR type system.

The target machines are 32-bit word machines, so the type system is small:
``i32`` (which doubles as the boolean 0/1 produced by comparisons), ``ptr``
(a 32-bit byte address), and ``void`` for value-less instructions.  Types are
singletons compared by identity.
"""


class Type:
    """Base class for IR types."""

    name = "type"

    def __repr__(self):
        return self.name

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_int(self):
        return isinstance(self, IntType)

    def is_void(self):
        return isinstance(self, VoidType)


class IntType(Type):
    """A 32-bit integer (signedness is a property of operations, not types)."""

    name = "i32"


class PointerType(Type):
    """A 32-bit byte address.  Pointees are untyped words."""

    name = "ptr"


class VoidType(Type):
    """The type of value-less instructions (stores, branches, void calls)."""

    name = "void"


I32 = IntType()
PTR = PointerType()
VOID = VoidType()
