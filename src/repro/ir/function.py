"""IR functions: CFGs of basic blocks plus formal parameters."""

from repro.common.errors import IRError
from repro.ir.types import I32, VOID
from repro.ir.values import Argument
from repro.ir.basicblock import BasicBlock


class Function:
    """A function: named, with i32 parameters and an i32-or-void return.

    The first block in ``self.blocks`` is the entry block.  Block and value
    names are uniqued per-function via :meth:`unique_name`.
    """

    def __init__(self, name, param_names=(), returns_value=True):
        self.name = name
        self.params = [
            Argument(p, I32, index=i) for i, p in enumerate(param_names)
        ]
        self.return_type = I32 if returns_value else VOID
        self.blocks = []
        self._name_counts = {}

    # -- block management ----------------------------------------------------

    def add_block(self, name):
        block = BasicBlock(self.unique_name(name), parent=self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, after, name):
        block = BasicBlock(self.unique_name(name), parent=self)
        self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block):
        self.blocks.remove(block)

    @property
    def entry(self):
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    # -- naming ----------------------------------------------------------------

    def unique_name(self, base):
        """Return ``base`` or ``base.N`` so names never collide in a function."""
        count = self._name_counts.get(base)
        if count is None:
            self._name_counts[base] = 1
            return base
        self._name_counts[base] = count + 1
        return f"{base}.{count}"

    # -- traversal ---------------------------------------------------------------

    def instructions(self):
        """Iterate every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self):
        """Map block -> list of predecessor blocks (in block order)."""
        preds = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def __repr__(self):
        params = ", ".join(f"%{p.name}" for p in self.params)
        head = f"def @{self.name}({params}) -> {self.return_type!r}"
        body = "\n".join(repr(block) for block in self.blocks)
        return f"{head} {{\n{body}\n}}"
