"""Textual IR parser: reads the exact format ``repr(Module)`` prints.

Round-tripping IR through text makes golden tests readable and lets tools
accept IR directly.  Two-pass: instructions are created with symbolic
operand names first (phis may reference values defined later in a loop),
then every operand is resolved.

Grammar by example::

    ; module demo
    @table: [4 x i32] = [1, 2, 3, 4]

    def @sum(%arr, %n) -> i32 {
    entry:
      br %loop
    loop:
      %i = phi [0, %entry], [%i.next, %body]
      %cmp = icmp.slt %i, %n
      condbr %cmp, %body, %done
    body:
      %addr = gep %arr, %i
      %v = load %addr
      %i.next = add %i, 1
      br %loop
    done:
      ret %i
    }
"""

from repro.common.errors import IRError
from repro.ir.module import Module
from repro.ir.values import ConstantInt, UndefValue
from repro.ir.instructions import (
    BinOp,
    ICmp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Call,
    Ret,
    Br,
    CondBr,
    Phi,
    Output,
    Select,
    BINOP_OPCODES,
    ICMP_PREDICATES,
)

_VOID_RESULT_OPS = {"store", "output", "ret", "br", "condbr", "call"}


class _FunctionParser:
    def __init__(self, module, header, body_lines):
        self.module = module
        self.header = header
        self.body_lines = body_lines
        self.blocks = {}
        self.values = {}  # %name -> Value
        self.pending = []  # (instr, operand_index, token) to resolve

    def parse(self):
        name, params, returns_value = self._parse_header(self.header)
        func = self.module.add_function(name, params, returns_value)
        for param in func.params:
            self.values[param.name] = param

        # Pre-register every block label so forward branches resolve.
        for raw in self.body_lines:
            line = raw.strip()
            if line.endswith(":") and not line.startswith(";"):
                label = line[:-1]
                block = func.add_block(label)
                if block.name != label:
                    raise IRError(f"duplicate block label {label!r}")
                self.blocks[label] = block

        current = None
        staged = []
        for raw in self.body_lines:
            line = raw.strip()
            if not line or line.startswith(";"):
                continue
            if line.endswith(":"):
                current = self.blocks[line[:-1]]
                continue
            if current is None:
                raise IRError(f"instruction before any block label: {line!r}")
            staged.append((current, line))

        for block, line in staged:
            block.append(self._parse_instruction(line))
        self._resolve_pending()
        return func

    @staticmethod
    def _parse_header(header):
        # def @name(%a, %b) -> i32 {
        body = header[len("def @"):].rstrip("{").strip()
        name, _, rest = body.partition("(")
        params_text, _, ret_text = rest.partition(")")
        params = [
            token.strip().lstrip("%")
            for token in params_text.split(",")
            if token.strip()
        ]
        returns_value = "void" not in ret_text
        return name.strip(), params, returns_value

    # -- operand handling -----------------------------------------------------

    def _operand(self, token):
        """Resolve now if possible; otherwise return a placeholder token."""
        token = token.strip()
        if token == "undef":
            return UndefValue()
        if token.startswith("@"):
            name = token[1:]
            if name not in self.module.globals:
                raise IRError(f"unknown global {token}")
            return self.module.globals[name]
        if token.startswith("%"):
            return ("unresolved", token[1:])
        try:
            return ConstantInt(int(token, 0))
        except ValueError:
            raise IRError(f"bad operand {token!r}") from None

    def _register(self, instr):
        for index, op in enumerate(instr.operands):
            if isinstance(op, tuple) and op and op[0] == "unresolved":
                self.pending.append((instr, index, op[1]))
        return instr

    def _resolve_pending(self):
        for instr, index, name in self.pending:
            value = self.values.get(name)
            if value is None:
                raise IRError(f"use of undefined value %{name}")
            instr.operands[index] = value

    def _define(self, name, instr):
        if name in self.values:
            raise IRError(f"redefinition of %{name}")
        instr.name = name
        self.values[name] = instr
        return instr

    # -- instruction forms -----------------------------------------------------

    def _parse_instruction(self, line):
        result_name = None
        if line.startswith("%"):
            lhs, _, rhs = line.partition("=")
            if not rhs:
                raise IRError(f"bad instruction {line!r}")
            result_name = lhs.strip().lstrip("%")
            line = rhs.strip()
        opcode, _, rest = line.partition(" ")
        rest = rest.strip()

        instr = self._build(opcode, rest, has_result=result_name is not None)
        if result_name is not None:
            self._define(result_name, instr)
        return self._register(instr)

    def _split_operands(self, text):
        """Split on commas not inside brackets/parens."""
        parts = []
        depth = 0
        current = ""
        for ch in text:
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append(current.strip())
                current = ""
            else:
                current += ch
        if current.strip():
            parts.append(current.strip())
        return parts

    def _build(self, opcode, rest, has_result=False):
        operands = self._split_operands(rest) if rest else []

        if opcode in BINOP_OPCODES:
            instr = BinOp(opcode, *self._two(operands, opcode))
            return instr
        if opcode.startswith("icmp."):
            pred = opcode.split(".", 1)[1]
            if pred not in ICMP_PREDICATES:
                raise IRError(f"bad icmp predicate {pred!r}")
            return ICmp(pred, *self._two(operands, opcode))
        if opcode == "select":
            if len(operands) != 3:
                raise IRError("select takes 3 operands")
            return Select(*(self._operand(op) for op in operands))
        if opcode == "load":
            return Load(self._one(operands, opcode))
        if opcode == "store":
            return Store(*self._two(operands, opcode))
        if opcode == "alloca":
            return Alloca(int(self._single_token(operands, opcode), 0))
        if opcode == "gep":
            return GetElementPtr(*self._two(operands, opcode))
        if opcode == "output":
            return Output(self._one(operands, opcode))
        if opcode == "call":
            return self._build_call(rest, returns_value=has_result)
        if opcode == "ret":
            if not operands:
                return Ret()
            return Ret(self._one(operands, opcode))
        if opcode == "br":
            return Br(self._block_ref(self._single_token(operands, opcode)))
        if opcode == "condbr":
            if len(operands) != 3:
                raise IRError("condbr takes 3 operands")
            return CondBr(
                self._operand(operands[0]),
                self._block_ref(operands[1]),
                self._block_ref(operands[2]),
            )
        if opcode == "phi":
            return self._build_phi(operands)
        raise IRError(f"unknown opcode {opcode!r}")

    def _build_call(self, rest, returns_value):
        # call @name(arg, arg, ...)
        if not rest.startswith("@"):
            raise IRError(f"bad call {rest!r}")
        name, _, args_text = rest[1:].partition("(")
        args_text = args_text.rstrip(")")
        args = [
            self._operand(token)
            for token in self._split_operands(args_text)
            if token
        ]
        return Call(name.strip(), args, returns_value=returns_value)

    def _build_phi(self, operands):
        phi = Phi()
        for pair in operands:
            pair = pair.strip()
            if not (pair.startswith("[") and pair.endswith("]")):
                raise IRError(f"bad phi incoming {pair!r}")
            value_text, _, block_text = pair[1:-1].partition(",")
            phi.add_incoming(
                self._operand(value_text), self._block_ref(block_text.strip())
            )
        return phi

    def _block_ref(self, token):
        token = token.strip().lstrip("%")
        block = self.blocks.get(token)
        if block is None:
            raise IRError(f"branch to unknown block %{token}")
        return block

    def _one(self, operands, opcode):
        if len(operands) != 1:
            raise IRError(f"{opcode} takes 1 operand")
        return self._operand(operands[0])

    def _two(self, operands, opcode):
        if len(operands) != 2:
            raise IRError(f"{opcode} takes 2 operands")
        return self._operand(operands[0]), self._operand(operands[1])

    @staticmethod
    def _single_token(operands, opcode):
        if len(operands) != 1:
            raise IRError(f"{opcode} takes 1 operand")
        return operands[0]


def parse_module(text, name="parsed"):
    """Parse textual IR into a verified :class:`Module`."""
    from repro.ir.verifier import verify_module

    module = Module(name)
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith(";"):
            continue
        if line.startswith("@"):
            _parse_global(module, line)
            continue
        if line.startswith("def @"):
            body = []
            while index < len(lines):
                inner = lines[index].strip()
                index += 1
                if inner == "}":
                    break
                body.append(inner)
            else:
                raise IRError("unterminated function body")
            _FunctionParser(module, line, body).parse()
            continue
        raise IRError(f"unexpected top-level line {line!r}")
    verify_module(module)
    return module


def _parse_global(module, line):
    # @name: [N x i32] = [1, 2]     (initializer optional)
    head, _, init_text = line.partition("=")
    name_part, _, size_part = head.partition(":")
    name = name_part.strip().lstrip("@")
    size_text = size_part.strip()
    if not (size_text.startswith("[") and "x i32" in size_text):
        raise IRError(f"bad global declaration {line!r}")
    size = int(size_text[1:].split("x")[0].strip())
    initializer = None
    init_text = init_text.strip()
    if init_text:
        if not (init_text.startswith("[") and init_text.endswith("]")):
            raise IRError(f"bad global initializer {line!r}")
        body = init_text[1:-1].strip()
        initializer = (
            [int(tok.strip(), 0) for tok in body.split(",")] if body else []
        )
    module.add_global(name, size, initializer)
