"""Top-down stall attribution: charge every issue slot of every cycle.

The accountant is the subsystem's quantitative sink: each simulated cycle it
charges each of the machine's ``issue_width`` slots to **exactly one**
bucket, so the buckets sum bit-exactly to ``issue_slots × cycles`` over any
run (the conservation law the :class:`~repro.guardrails.checkers.
StallAttributionChecker` guardrail re-verifies cycle by cycle).

Bucket taxonomy (a trace-driven adaptation of top-down analysis [Yasin,
ISPASS 2014], with one STRAIGHT-specific bucket):

* ``slots_retiring`` — slots that issued useful work this cycle;
* ``slots_rmov_overhead`` — slots that issued an RMOV: architecturally
  required distance-relaying on STRAIGHT, pure ISA overhead the RE+ pass
  exists to remove (identically zero on SS);
* ``slots_bad_speculation`` — idle slots while a mispredict recovery is in
  progress: fetch parked on an unresolved branch, or dispatch blocked by
  the front-end model's recovery cost (SS's RMT-restoring ROB walk vs
  STRAIGHT's one ROB-entry read — the Fig. 13 mechanism);
* ``slots_backend_memory`` — idle slots while the oldest uncompleted
  instruction is a load/store (cache miss, forwarding wait, memory
  dependence);
* ``slots_backend_core`` — idle slots blamed on execution resources: the
  oldest uncompleted instruction is a non-memory op still executing, or
  ready instructions lost the port/width race;
* ``slots_frontend_latency`` — idle slots with nothing in flight to blame:
  the front end (I-cache stalls, fetch/decode pipe refill) failed to
  supply.

Idle-slot blame is single-cause by design — one bucket per cycle's idle
slots, chosen by the priority recovery > backend > frontend — because the
buckets must stay additive.  See DESIGN.md §10 for the taxonomy's edge
cases.
"""

from repro.obs.events import PipelineSink

#: Bucket field names in declaration (reporting) order; these are also
#: contributed to the :class:`~repro.uarch.stats.StatsRegistry` so every
#: ``SimStats`` carries them (zero unless an accountant was attached).
ATTRIBUTION_BUCKETS = (
    "slots_retiring",
    "slots_rmov_overhead",
    "slots_frontend_latency",
    "slots_bad_speculation",
    "slots_backend_memory",
    "slots_backend_core",
)


class StallAttributionAccountant(PipelineSink):
    """Cycle-granular sink implementing the bucket taxonomy above."""

    name = "attribution"
    cycle_granular = True
    STAT_FIELDS = ATTRIBUTION_BUCKETS

    def __init__(self):
        self.buckets = {bucket: 0 for bucket in ATTRIBUTION_BUCKETS}
        self.cycles_observed = 0
        self.issue_width = 0
        #: Charges of the most recently accounted cycle (checker surface).
        self.last_cycle_charges = {}
        self._issued_useful = 0
        self._issued_rmov = 0
        self._state = None

    # -- event intake --------------------------------------------------------

    def begin_run(self, core, state, sched):
        self.issue_width = core.config.issue_width
        self._state = state
        self.buckets = {bucket: 0 for bucket in ATTRIBUTION_BUCKETS}
        self.cycles_observed = 0
        self.last_cycle_charges = {}
        self._issued_useful = 0
        self._issued_rmov = 0

    def on_issue(self, seq, entry, cycle, done_at):
        if entry.is_rmov:
            self._issued_rmov += 1
        else:
            self._issued_useful += 1

    def on_cycle_end(self, cycle):
        state = self._state
        useful = self._issued_useful
        rmov = self._issued_rmov
        self._issued_useful = 0
        self._issued_rmov = 0
        idle = self.issue_width - useful - rmov
        charges = {
            "slots_retiring": useful,
            "slots_rmov_overhead": rmov,
        }
        if idle > 0:
            charges[self._idle_bucket(state, cycle)] = idle
        buckets = self.buckets
        for bucket, slots in charges.items():
            buckets[bucket] += slots
        self.cycles_observed += 1
        self.last_cycle_charges = charges

    def _idle_bucket(self, state, cycle):
        """The single bucket this cycle's idle slots are charged to."""
        if state.awaiting_branch is not None or cycle < state.rename_blocked_until:
            return "slots_bad_speculation"
        rob = state.rob
        if rob:
            head = rob[0]
            if not head.done:
                if head.entry.op_class in ("load", "store"):
                    return "slots_backend_memory"
                return "slots_backend_core"
            if state.iq_count > 0:
                # Oldest work is finished but younger ready instructions
                # still lost the port/width race.
                return "slots_backend_core"
        if state.iq_count > 0:
            return "slots_backend_core"
        return "slots_frontend_latency"

    def end_run(self, stats):
        for bucket, slots in self.buckets.items():
            setattr(stats, bucket, slots)

    # -- reporting -----------------------------------------------------------

    @property
    def total_charged(self):
        return sum(self.buckets.values())

    def conserved(self):
        """True iff every observed slot was charged exactly once."""
        return self.total_charged == self.issue_width * self.cycles_observed

    def report(self):
        """JSON-friendly summary with fractions and the conservation check."""
        total = self.total_charged
        return {
            "issue_width": self.issue_width,
            "cycles": self.cycles_observed,
            "slots_total": self.issue_width * self.cycles_observed,
            "slots_charged": total,
            "conserved": self.conserved(),
            "buckets": dict(self.buckets),
            "fractions": {
                bucket: (round(slots / total, 6) if total else 0.0)
                for bucket, slots in self.buckets.items()
            },
        }

    def text(self):
        """Human-readable bucket breakdown."""
        report = self.report()
        lines = [
            f"issue slots: {report['slots_total']} "
            f"({report['issue_width']}-wide x {report['cycles']} cycles), "
            f"charged {report['slots_charged']} "
            f"[{'conserved' if report['conserved'] else 'NOT CONSERVED'}]"
        ]
        for bucket in ATTRIBUTION_BUCKETS:
            slots = report["buckets"][bucket]
            frac = report["fractions"][bucket]
            bar = "#" * int(round(frac * 40))
            lines.append(f"  {bucket:<24} {slots:>12}  {frac:>7.2%}  {bar}")
        return "\n".join(lines)
