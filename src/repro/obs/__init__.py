"""repro.obs — cycle-level observability for the timing engine.

The subsystem has three layers (see DESIGN.md §10):

* the **event bus** (:mod:`repro.obs.events`): stages publish
  per-instruction lifecycle events into an :class:`ObserverBus`; off by
  default and dropped from the hot path entirely when no sink is attached;
* **sinks**: the Kanata pipeline-visualizer log writer
  (:mod:`repro.obs.kanata`), the top-down stall-attribution accountant
  (:mod:`repro.obs.attribution`), and the PC-indexed hot-region profiler
  (:mod:`repro.obs.profile`);
* **surfacing**: ``straight trace`` / ``straight profile`` CLI
  subcommands, attribution buckets in ``SimStats``, and sweep/cache
  persistence of attribution payloads.
"""

from repro.obs.attribution import ATTRIBUTION_BUCKETS, StallAttributionAccountant
from repro.obs.events import EVENT_KINDS, ObserverBus, PipelineSink, RecordingSink
from repro.obs.kanata import KanataWriter, parse_kanata
from repro.obs.profile import HotRegionProfiler

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "EVENT_KINDS",
    "HotRegionProfiler",
    "KanataWriter",
    "ObserverBus",
    "PipelineSink",
    "RecordingSink",
    "StallAttributionAccountant",
    "parse_kanata",
]
