"""Kanata pipeline-visualizer log writer and round-trip parser.

The Kanata format is the text log consumed by the Konata pipeline viewer
(also emitted by Onikiri 2): a ``Kanata\\t0004`` header followed by
tab-separated records where ``C=``/``C`` move the clock, ``I`` opens an
instruction, ``L`` attaches labels, ``S``/``E`` begin and end a stage in a
lane, ``W`` records a wakeup dependency, and ``R`` retires (or flushes) the
instruction.  :class:`KanataWriter` is an instruction-granular
:class:`~repro.obs.events.PipelineSink` that buffers lifecycle events per
instruction and renders the log at the end of the run; :func:`parse_kanata`
reads such a log back into the same canonical record structure the writer
can produce (:meth:`KanataWriter.canonical_records`), which is what the
round-trip tests compare — write → parse → identical event stream.

Stage lanes (lane 0, pipeline order)::

    F  [fetch,    fetch+1)    front-end pipe entry
    D  [fetch+1,  dispatch)   decode / in front-end pipe
    I  [dispatch, issue)      waiting in the issue queue
    X  [issue,    complete)   executing
    C  [complete, commit)     done, waiting at/behind ROB head

Instructions that never enter the issue queue (nops and, on SS,
zero-latency ops the dispatch stage completes in place) skip I/X and wait
in C from dispatch.  Memory-order replay squashes are rendered as mouseover
labels rather than flush-retires: the trace-driven simulator re-executes
the violating load in place, so the instruction still commits.
"""

from repro.obs.events import PipelineSink

STAGE_LANE = 0
LABEL_TEXT = 0        # left-pane label
LABEL_MOUSEOVER = 1   # hover detail
RETIRE_COMMIT = 0
RETIRE_FLUSH = 1

# Per-instruction ordering of record kinds within one cycle.  Stage S/E
# records get explicit order numbers from their pipeline position (S before
# its own E), so zero-length stages still render start-before-end.
_ORDER_I = 0
_ORDER_L = 1
_ORDER_STAGE = 10   # + 2*stage_index (S) / + 2*stage_index + 1 (E)
_ORDER_W = 40
_ORDER_R = 50


class _Insn:
    __slots__ = ("seq", "pc", "mnemonic", "fetch", "dispatch", "tags",
                 "issue", "complete", "commit", "notes")

    def __init__(self, seq, pc, mnemonic, fetch):
        self.seq = seq
        self.pc = pc
        self.mnemonic = mnemonic
        self.fetch = fetch
        self.dispatch = None
        self.tags = ()
        self.issue = None
        self.complete = None
        self.commit = None
        self.notes = []


class KanataWriter(PipelineSink):
    """Buffers lifecycle events and renders a Kanata 0004 log.

    ``path`` (optional) is written at ``end_run``; :meth:`render` returns
    the log text either way.  ``max_insns`` caps the buffered window so
    logging a long run cannot exhaust memory — instructions past the cap
    are counted but not rendered (Konata itself struggles past ~1M rows).
    """

    name = "kanata"

    def __init__(self, path=None, max_insns=200_000):
        self.path = path
        self.max_insns = max_insns
        self._insns = {}      # seq -> _Insn, insertion (= fetch) order
        self._ids = {}        # seq -> file-local instruction id
        self.dropped = 0
        self.final_cycle = 0

    # -- event intake --------------------------------------------------------

    def on_fetch(self, seq, entry, cycle):
        if len(self._insns) >= self.max_insns:
            self.dropped += 1
            return
        self._ids[seq] = len(self._ids)
        self._insns[seq] = _Insn(seq, entry.pc, entry.mnemonic, cycle)

    def on_mispredict(self, seq, entry, cycle):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.notes.append(f"mispredicted @{cycle}")

    def on_dispatch(self, seq, entry, cycle, tags):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.dispatch = cycle
            insn.tags = tuple(tags)

    def on_issue(self, seq, entry, cycle, done_at):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.issue = cycle

    def on_complete(self, seq, cycle):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.complete = cycle

    def on_recovery(self, seq, entry, cycle, blocked_until):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.notes.append(f"recovery {cycle}..{blocked_until}")

    def on_squash(self, seq, cycle, cause):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.notes.append(f"replay:{cause} @{cycle}")

    def on_commit(self, seq, entry, cycle):
        insn = self._insns.get(seq)
        if insn is not None:
            insn.commit = cycle
        self.final_cycle = cycle

    def end_run(self, stats):
        if self.path is not None:
            with open(self.path, "w") as fh:
                fh.write(self.render())

    # -- rendering -----------------------------------------------------------

    def _end(self, insn):
        """Cycle an instruction's window closes at (commit, or end of run —
        never before its own fetch, so flush records stay well-ordered)."""
        if insn.commit is not None:
            return insn.commit
        return max(self.final_cycle, insn.fetch + 1)

    def _stages(self, insn):
        """Stage intervals for one instruction: list of (stage, start, end)."""
        end = self._end(insn)
        stages = [("F", insn.fetch, insn.fetch + 1)]
        if insn.dispatch is not None:
            stages.append(("D", insn.fetch + 1, insn.dispatch))
            if insn.issue is not None:
                stages.append(("I", insn.dispatch, insn.issue))
                done = insn.complete if insn.complete is not None else end
                stages.append(("X", insn.issue, done))
                stages.append(("C", done, end))
            else:
                stages.append(("C", insn.dispatch, end))
        else:
            stages.append(("D", insn.fetch + 1, end))
        # Clamp zero/negative spans to a one-record S+E pair at the start.
        return [(name, start, max(start, stop)) for name, start, stop in stages]

    def _events(self):
        """All log records as (cycle, insn_id, kind_order, line) tuples."""
        events = []
        retire_id = 0
        for insn in self._insns.values():
            iid = self._ids[insn.seq]

            def add(cyc, order, line, _iid=iid):
                events.append((cyc, _iid, order, line))

            add(insn.fetch, _ORDER_I, f"I\t{iid}\t{insn.seq}\t0")
            add(insn.fetch, _ORDER_L,
                f"L\t{iid}\t{LABEL_TEXT}\t{insn.pc:#x}: {insn.mnemonic}")
            for note in insn.notes:
                add(insn.fetch, _ORDER_L,
                    f"L\t{iid}\t{LABEL_MOUSEOVER}\t{note}")
            for index, (stage, start, stop) in enumerate(self._stages(insn)):
                add(start, _ORDER_STAGE + 2 * index,
                    f"S\t{iid}\t{STAGE_LANE}\t{stage}")
                add(stop, _ORDER_STAGE + 2 * index + 1,
                    f"E\t{iid}\t{STAGE_LANE}\t{stage}")
            if insn.dispatch is not None:
                for tag in insn.tags:
                    pid = self._ids.get(tag)
                    if pid is not None:
                        add(insn.dispatch, _ORDER_W, f"W\t{iid}\t{pid}\t0")
            if insn.commit is not None:
                add(insn.commit, _ORDER_R,
                    f"R\t{iid}\t{retire_id}\t{RETIRE_COMMIT}")
            else:
                add(self._end(insn), _ORDER_R,
                    f"R\t{iid}\t{retire_id}\t{RETIRE_FLUSH}")
            retire_id += 1
        events.sort(key=lambda ev: (ev[0], ev[1], ev[2]))
        return events

    def render(self):
        lines = ["Kanata\t0004"]
        cycle = None
        for at, _iid, _order, line in self._events():
            if cycle is None:
                lines.append(f"C=\t{at}")
            elif at != cycle:
                lines.append(f"C\t{at - cycle}")
            cycle = at
            lines.append(line)
        return "\n".join(lines) + "\n"

    def canonical_records(self):
        """The event stream in the comparison form :func:`parse_kanata` emits."""
        records = {}
        retire_id = 0
        for insn in self._insns.values():
            iid = self._ids[insn.seq]
            labels = [(LABEL_TEXT, f"{insn.pc:#x}: {insn.mnemonic}")]
            labels += [(LABEL_MOUSEOVER, note) for note in insn.notes]
            stages = {}
            for stage, start, stop in self._stages(insn):
                stages[(STAGE_LANE, stage)] = (start, max(start, stop))
            deps = []
            if insn.dispatch is not None:
                deps = [(self._ids[t], 0) for t in insn.tags if t in self._ids]
            if insn.commit is not None:
                retire = (insn.commit, retire_id, RETIRE_COMMIT)
            else:
                retire = (self._end(insn), retire_id, RETIRE_FLUSH)
            retire_id += 1
            records[iid] = {
                "sim_seq": insn.seq,
                "labels": labels,
                "stages": stages,
                "deps": deps,
                "retire": retire,
            }
        return records


def parse_kanata(text):
    """Parse a Kanata log back into canonical per-instruction records.

    Returns ``{insn_id: {"sim_seq", "labels", "stages", "deps", "retire"}}``
    where ``stages`` maps ``(lane, stage_name) -> (start_cycle, end_cycle)``
    — the same structure as :meth:`KanataWriter.canonical_records`, so
    equality between the two is the round-trip test.  Raises ``ValueError``
    on a malformed log (bad header, records before ``C=``, unknown ids,
    unterminated stages).
    """
    lines = text.splitlines()
    if not lines or lines[0].split("\t")[0] != "Kanata":
        raise ValueError("not a Kanata log: missing 'Kanata' header")
    records = {}
    open_stages = {}
    cycle = None
    for lineno, raw in enumerate(lines[1:], start=2):
        if not raw.strip():
            continue
        parts = raw.split("\t")
        kind = parts[0]
        if kind == "C=":
            cycle = int(parts[1])
            continue
        if kind == "C":
            if cycle is None:
                raise ValueError(f"line {lineno}: 'C' before 'C='")
            cycle += int(parts[1])
            continue
        if cycle is None:
            raise ValueError(f"line {lineno}: record before 'C='")
        if kind == "I":
            iid = int(parts[1])
            records[iid] = {
                "sim_seq": int(parts[2]),
                "labels": [],
                "stages": {},
                "deps": [],
                "retire": None,
            }
        elif kind == "L":
            iid = int(parts[1])
            _require(records, iid, lineno)
            records[iid]["labels"].append((int(parts[2]), parts[3]))
        elif kind == "S":
            iid, lane, stage = int(parts[1]), int(parts[2]), parts[3]
            _require(records, iid, lineno)
            open_stages[(iid, lane, stage)] = cycle
        elif kind == "E":
            iid, lane, stage = int(parts[1]), int(parts[2]), parts[3]
            _require(records, iid, lineno)
            start = open_stages.pop((iid, lane, stage), None)
            if start is None:
                raise ValueError(
                    f"line {lineno}: 'E' for stage {stage!r} never started")
            records[iid]["stages"][(lane, stage)] = (start, cycle)
        elif kind == "W":
            iid, pid, dep_type = int(parts[1]), int(parts[2]), int(parts[3])
            _require(records, iid, lineno)
            _require(records, pid, lineno)
            records[iid]["deps"].append((pid, dep_type))
        elif kind == "R":
            iid = int(parts[1])
            _require(records, iid, lineno)
            records[iid]["retire"] = (cycle, int(parts[2]), int(parts[3]))
        else:
            raise ValueError(f"line {lineno}: unknown record kind {kind!r}")
    if open_stages:
        iid, lane, stage = next(iter(open_stages))
        raise ValueError(f"unterminated stage {stage!r} for instruction {iid}")
    return records


def _require(records, iid, lineno):
    if iid not in records:
        raise ValueError(f"line {lineno}: instruction {iid} not opened by 'I'")
