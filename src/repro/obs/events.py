"""The pipeline event bus: per-instruction lifecycle events for observers.

The timing engine (:mod:`repro.uarch.pipeline`) publishes one event per
lifecycle transition of every in-flight instruction — fetch, dispatch,
issue, completion, commit, plus mispredict / recovery / replay-squash cause
events — into an :class:`ObserverBus` that fans them out to attached
:class:`PipelineSink` instances.  The bus follows the guardrail suite's
contract exactly: the engine only calls it when one was attached *and* it
has at least one sink (``bus.active``), so the default path — no observer —
executes the seed's exact instruction stream with zero added work beyond
the existing ``is None`` checks.

Two observation granularities exist:

* **instruction-granular** sinks (the Kanata writer, the hot-region
  profiler) consume lifecycle events only.  Lifecycle events can, by the
  idle-skip invariant, only fire on executed cycles, so these sinks are
  compatible with event-driven cycle skipping and timing stays
  bit-identical with skipping enabled;
* **cycle-granular** sinks (the top-down stall accountant) additionally
  receive :meth:`PipelineSink.on_cycle_end` for *every* simulated cycle.
  Attaching one force-disables idle-cycle skipping for that run — same
  mechanism as guardrails — so every cycle is observed and per-cycle
  accounting is conservative.  Cycle counts are still bit-identical
  (skipping never changes timing, only wall-clock).
"""

#: Lifecycle event kinds, in pipeline order.  Sinks that record generic
#: event streams (tests, ad-hoc tooling) use these tags; the built-in sinks
#: get one method per kind instead so the engine's hot path stays cheap.
EVENT_KINDS = (
    "fetch",
    "mispredict",
    "dispatch",
    "issue",
    "complete",
    "recovery",
    "commit",
    "squash",
)


class PipelineSink:
    """Base class for event consumers; override only what you need.

    ``cycle_granular = True`` declares that the sink needs
    :meth:`on_cycle_end` for every simulated cycle; attaching such a sink
    force-disables event-driven cycle skipping for the run (the engine
    otherwise jumps over provably-idle cycles and the sink would observe a
    compressed cycle stream).
    """

    name = "sink"
    cycle_granular = False

    def begin_run(self, core, state, sched):
        """Called once before the first cycle with the live engine state."""

    def on_fetch(self, seq, entry, cycle):
        """Instruction ``seq`` entered the front-end pipe this cycle."""

    def on_mispredict(self, seq, entry, cycle):
        """Fetch stalled on a mispredicted branch/return at ``seq``."""

    def on_dispatch(self, seq, entry, cycle, tags):
        """``seq`` was renamed/operand-determined and entered ROB (+IQ).

        ``tags`` are the producer trace-sequence numbers the instruction
        waits on (the dependence edges, both ISAs normalized to seqs).
        """

    def on_issue(self, seq, entry, cycle, done_at):
        """``seq`` left the issue queue; its result arrives at ``done_at``."""

    def on_complete(self, seq, cycle):
        """``seq``'s completion event fired (result available)."""

    def on_recovery(self, seq, entry, cycle, blocked_until):
        """The awaited mispredicted branch ``seq`` resolved this cycle;
        dispatch stays blocked until ``blocked_until`` (front-end model's
        recovery cost: SS RMT-restoring ROB walk vs STRAIGHT's one read)."""

    def on_squash(self, seq, cycle, cause):
        """``seq`` must replay (e.g. a memory-order violation victim)."""

    def on_commit(self, seq, entry, cycle):
        """``seq`` retired."""

    def on_cycle_end(self, cycle):
        """End of one simulated cycle (cycle-granular sinks only)."""

    def end_run(self, stats):
        """Called once after the run with the final :class:`SimStats`."""


class ObserverBus:
    """Fans pipeline events out to attached sinks.

    The bus is deliberately dumb: it owns no policy, only sink lists.  The
    per-kind fan-out lists are precomputed at attach time (mirroring the
    guardrail suite's hook filtering) so a sink that ignores an event kind
    costs nothing at that site, and ``on_cycle_end`` — the only per-cycle
    call — touches cycle-granular sinks alone.
    """

    def __init__(self, sinks=()):
        self.sinks = []
        self._rebuild()
        for sink in sinks:
            self.attach(sink)

    def attach(self, sink):
        """Add one sink; returns the bus for chaining."""
        self.sinks.append(sink)
        self._rebuild()
        return self

    def _rebuild(self):
        base = PipelineSink
        by_kind = {}
        for hook in ("on_fetch", "on_mispredict", "on_dispatch", "on_issue",
                     "on_complete", "on_recovery", "on_squash", "on_commit",
                     "on_cycle_end"):
            by_kind[hook] = [s for s in self.sinks
                             if getattr(type(s), hook) is not getattr(base, hook)]
        self._fetch = by_kind["on_fetch"]
        self._mispredict = by_kind["on_mispredict"]
        self._dispatch = by_kind["on_dispatch"]
        self._issue = by_kind["on_issue"]
        self._complete = by_kind["on_complete"]
        self._recovery = by_kind["on_recovery"]
        self._squash = by_kind["on_squash"]
        self._commit = by_kind["on_commit"]
        self._cycle = by_kind["on_cycle_end"]

    @property
    def active(self):
        """False for an empty bus — the engine then drops it entirely."""
        return bool(self.sinks)

    @property
    def cycle_granular(self):
        """True when any sink needs every cycle (disables idle skipping)."""
        return any(sink.cycle_granular for sink in self.sinks)

    # -- engine-facing hooks -------------------------------------------------

    def begin_run(self, core, state, sched):
        for sink in self.sinks:
            sink.begin_run(core, state, sched)

    def on_fetch(self, seq, entry, cycle):
        for sink in self._fetch:
            sink.on_fetch(seq, entry, cycle)

    def on_mispredict(self, seq, entry, cycle):
        for sink in self._mispredict:
            sink.on_mispredict(seq, entry, cycle)

    def on_dispatch(self, seq, entry, cycle, tags):
        for sink in self._dispatch:
            sink.on_dispatch(seq, entry, cycle, tags)

    def on_issue(self, seq, entry, cycle, done_at):
        for sink in self._issue:
            sink.on_issue(seq, entry, cycle, done_at)

    def on_complete(self, seq, cycle):
        for sink in self._complete:
            sink.on_complete(seq, cycle)

    def on_recovery(self, seq, entry, cycle, blocked_until):
        for sink in self._recovery:
            sink.on_recovery(seq, entry, cycle, blocked_until)

    def on_squash(self, seq, cycle, cause):
        for sink in self._squash:
            sink.on_squash(seq, cycle, cause)

    def on_commit(self, seq, entry, cycle):
        for sink in self._commit:
            sink.on_commit(seq, entry, cycle)

    def on_cycle_end(self, cycle):
        for sink in self._cycle:
            sink.on_cycle_end(cycle)

    def end_run(self, stats):
        for sink in self.sinks:
            sink.end_run(stats)

    def __repr__(self):
        names = ", ".join(sink.name for sink in self.sinks)
        return f"ObserverBus([{names}])"


class RecordingSink(PipelineSink):
    """Appends every event as a tuple — test scaffolding and ad-hoc tools.

    ``records`` is a list of ``(kind, cycle, seq, detail)`` tuples in
    emission order; ``detail`` is the kind-specific extra (producer tags at
    dispatch, completion cycle at issue, cause at squash, ...).
    """

    name = "recording"

    def __init__(self):
        self.records = []

    def on_fetch(self, seq, entry, cycle):
        self.records.append(("fetch", cycle, seq, entry.mnemonic))

    def on_mispredict(self, seq, entry, cycle):
        self.records.append(("mispredict", cycle, seq, entry.mnemonic))

    def on_dispatch(self, seq, entry, cycle, tags):
        self.records.append(("dispatch", cycle, seq, tuple(tags)))

    def on_issue(self, seq, entry, cycle, done_at):
        self.records.append(("issue", cycle, seq, done_at))

    def on_complete(self, seq, cycle):
        self.records.append(("complete", cycle, seq, None))

    def on_recovery(self, seq, entry, cycle, blocked_until):
        self.records.append(("recovery", cycle, seq, blocked_until))

    def on_squash(self, seq, cycle, cause):
        self.records.append(("squash", cycle, seq, cause))

    def on_commit(self, seq, entry, cycle):
        self.records.append(("commit", cycle, seq, None))

    def of_kind(self, kind):
        return [r for r in self.records if r[0] == kind]
