"""PC-indexed hot-region profiler: where do the committed cycles go?

An instruction-granular sink that counts commits and fetch→commit latency
per program counter, then maps each PC back through the linked program —
``labels`` give the enclosing region (nearest preceding label, i.e. the
function or loop the assembler named), ``AsmUnit.origins`` give the source
line when the program carries them (STRAIGHT binaries do; RISC-V programs
without origins degrade gracefully to PC/label only).

Unlike the attribution accountant this sink is compatible with idle-cycle
skipping: it only consumes lifecycle events, so profiling adds no
simulated-cycle cost.
"""

from bisect import bisect_right

from repro.obs.events import PipelineSink


class HotRegionProfiler(PipelineSink):
    """Per-PC commit counts and latencies, aggregated into labeled regions.

    ``program`` is the linked binary being simulated (``StraightProgram``
    or ``RiscvProgram``); without one the profiler still reports per-PC
    counts, just without region/source mapping.
    """

    name = "profile"

    def __init__(self, program=None):
        self.program = program
        self.commits = {}        # pc -> committed instruction count
        self.latency = {}        # pc -> summed fetch->commit cycles
        self.rmov_commits = {}   # pc -> committed RMOVs (STRAIGHT overhead)
        self.mispredicts = {}    # pc -> fetch stalls blamed on this branch
        self.mnemonics = {}      # pc -> mnemonic (last seen)
        self._fetched_at = {}    # in-flight seq -> fetch cycle
        self.total_commits = 0
        self._region_index = None

    # -- event intake --------------------------------------------------------

    def on_fetch(self, seq, entry, cycle):
        self._fetched_at[seq] = cycle

    def on_mispredict(self, seq, entry, cycle):
        self.mispredicts[entry.pc] = self.mispredicts.get(entry.pc, 0) + 1

    def on_squash(self, seq, cycle, cause):
        self._fetched_at.pop(seq, None)

    def on_commit(self, seq, entry, cycle):
        pc = entry.pc
        self.commits[pc] = self.commits.get(pc, 0) + 1
        self.total_commits += 1
        self.mnemonics[pc] = entry.mnemonic
        if entry.is_rmov:
            self.rmov_commits[pc] = self.rmov_commits.get(pc, 0) + 1
        fetched = self._fetched_at.pop(seq, None)
        if fetched is not None:
            self.latency[pc] = self.latency.get(pc, 0) + (cycle - fetched)

    # -- region / source mapping ---------------------------------------------

    def _regions(self):
        """Sorted (instruction_index, label) pairs for bisect lookup."""
        if self._region_index is None:
            labels = getattr(self.program, "labels", None) or {}
            pairs = sorted((index, label) for label, index in labels.items())
            self._region_index = (
                [index for index, _ in pairs],
                [label for _, label in pairs],
            )
        return self._region_index

    def locate(self, pc):
        """Map a PC to (instruction_index, region_label, source_line)."""
        if self.program is None:
            return None, None, None
        index = self.program.index_of_pc(pc)
        starts, names = self._regions()
        pos = bisect_right(starts, index) - 1
        region = names[pos] if pos >= 0 else None
        origins = getattr(self.program, "origins", None)
        line = origins[index] if origins and 0 <= index < len(origins) else None
        return index, region, line

    # -- reporting -----------------------------------------------------------

    def report(self, top=10):
        """JSON-friendly summary: hottest PCs and per-region rollup."""
        rows = []
        for pc, count in self.commits.items():
            _, region, line = self.locate(pc)
            avg = self.latency.get(pc, 0) / count if count else 0.0
            rows.append({
                "pc": pc,
                "mnemonic": self.mnemonics.get(pc, "?"),
                "region": region,
                "source_line": line,
                "commits": count,
                "share": round(count / self.total_commits, 6)
                if self.total_commits else 0.0,
                "avg_latency": round(avg, 2),
                "rmov_commits": self.rmov_commits.get(pc, 0),
                "mispredicts": self.mispredicts.get(pc, 0),
            })
        rows.sort(key=lambda row: (-row["commits"], row["pc"]))
        regions = {}
        for row in rows:
            name = row["region"] or "<unmapped>"
            agg = regions.setdefault(
                name, {"commits": 0, "rmov_commits": 0, "mispredicts": 0})
            agg["commits"] += row["commits"]
            agg["rmov_commits"] += row["rmov_commits"]
            agg["mispredicts"] += row["mispredicts"]
        region_rows = [
            {"region": name, "share": round(
                agg["commits"] / self.total_commits, 6)
                if self.total_commits else 0.0, **agg}
            for name, agg in regions.items()
        ]
        region_rows.sort(key=lambda row: (-row["commits"], row["region"]))
        return {
            "total_commits": self.total_commits,
            "hot_pcs": rows[:top],
            "regions": region_rows,
        }

    def text(self, top=10):
        """Human-readable hot-region table."""
        report = self.report(top=top)
        lines = [f"committed instructions: {report['total_commits']}",
                 "", "hot regions:"]
        for row in report["regions"]:
            lines.append(
                f"  {row['region']:<24} {row['commits']:>10} commits "
                f"({row['share']:.2%})  rmov={row['rmov_commits']}  "
                f"mispredicts={row['mispredicts']}")
        lines += ["", f"hottest {len(report['hot_pcs'])} PCs:"]
        for row in report["hot_pcs"]:
            where = row["region"] or "?"
            if row["source_line"] is not None:
                where += f":{row['source_line']}"
            lines.append(
                f"  {row['pc']:#010x} {row['mnemonic']:<12} {where:<28} "
                f"{row['commits']:>8} commits  avg f->c "
                f"{row['avg_latency']:>6.1f} cyc")
        return "\n".join(lines)
