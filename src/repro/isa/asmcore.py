"""ISA-neutral assembler/linker skeleton.

Both per-ISA assemblers are the same machine: split lines, strip comments,
collect ``label:`` markers and hand instruction lines to an ISA-specific
parser.  Both linkers start the same way: merge units, assign instruction
indices, collect label positions.  This module carries that shared shape;
``repro/straight/assembler.py`` and ``repro/riscv/assembler.py`` contribute
only their instruction-line grammars, and the linkers call
:func:`collect_labels`.
"""

from repro.common.errors import AsmError, LinkError


class AsmUnit:
    """A parsed assembly unit: ordered labels and instructions.

    ``origins`` (parallel to :meth:`instructions`) maps each instruction to
    its 1-based source line when the unit was parsed from text, else None.
    ``verify_manifest`` optionally carries the compiler's producer manifest
    (see :mod:`repro.analysis`) through assembly and linking.
    """

    def __init__(self, items=None, origins=None):
        self.items = list(items or [])  # ('label', name) | ('instr', instr)
        self.origins = list(origins or [])
        self.verify_manifest = None

    def add_label(self, name):
        self.items.append(("label", name))

    def add_instr(self, instr, origin=None):
        self.items.append(("instr", instr))
        self.origins.append(origin)

    def instructions(self):
        return [item for kind, item in self.items if kind == "instr"]

    def instruction_origins(self):
        """Per-instruction source lines, padded to the instruction count."""
        instrs = self.instructions()
        origins = list(self.origins[: len(instrs)])
        origins.extend([None] * (len(instrs) - len(origins)))
        return origins

    def to_text(self):
        lines = []
        for kind, item in self.items:
            if kind == "label":
                lines.append(f"{item}:")
            else:
                lines.append(f"    {item.to_asm()}")
        return "\n".join(lines) + "\n"


def is_symbol(text):
    """True for a well-formed label/symbol name."""
    return bool(text) and (text[0].isalpha() or text[0] in "_.") and all(
        c.isalnum() or c in "_.$" for c in text
    )


def parse_assembly_text(text, parse_instr_line, validate_labels=False):
    """The shared assembler driver.

    ``parse_instr_line(line, lineno)`` is the ISA's instruction grammar;
    ``validate_labels`` additionally enforces symbol syntax and uniqueness
    (the STRAIGHT assembler's stricter contract).
    """
    unit = AsmUnit()
    seen_labels = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if validate_labels:
                if not label or not is_symbol(label):
                    raise AsmError(f"bad label {line!r}", line=lineno)
                if label in seen_labels:
                    raise AsmError(f"duplicate label {label!r}", line=lineno)
                seen_labels.add(label)
            unit.add_label(label)
            continue
        unit.add_instr(parse_instr_line(line, lineno), origin=lineno)
    return unit


def merge_units(units):
    """One merged :class:`AsmUnit` (items + origins) from many."""
    merged = AsmUnit()
    for unit in units:
        merged.items.extend(unit.items)
        merged.origins.extend(unit.instruction_origins())
    return merged


def collect_labels(items):
    """Label name -> instruction index over merged unit items.

    Raises :class:`~repro.common.errors.LinkError` on duplicates — the
    common first half of every linker.
    """
    labels = {}
    index = 0
    for kind, item in items:
        if kind == "label":
            if item in labels:
                raise LinkError(f"duplicate label {item!r}")
            labels[item] = index
        else:
            index += 1
    return labels
