"""The ISA registry: ``repro.isa.get("straight" | "riscv" | "bb")``.

Every layer of the stack that used to branch on ISA name strings now asks
the registry for an :class:`~repro.isa.descriptor.IsaDescriptor` and calls
its hooks.  Built-in ISAs register lazily on first lookup (importing this
package stays cheap and cycle-free); third-party descriptors register via
:func:`register`.

Unknown names raise :class:`~repro.common.errors.UnknownIsaError`, which
lists the registered names — no silent fallback.
"""

from repro.common.errors import UnknownIsaError
from repro.isa.descriptor import IsaDescriptor
from repro.isa.predecode import DecodedOp, decode_program

#: Registered descriptors by name, in registration order.
_REGISTRY = {}

#: Built-in descriptors, loaded on first lookup.  The module import runs
#: the ``register()`` call as a side effect.
_BUILTIN = {
    "straight": "repro.straight.descriptor",
    "riscv": "repro.riscv.descriptor",
    "bb": "repro.bb.descriptor",
}


def register(descriptor):
    """Register ``descriptor`` (an :class:`IsaDescriptor`) by its name."""
    _REGISTRY[descriptor.name] = descriptor
    return descriptor


def _ensure_builtin(name=None):
    import importlib

    wanted = _BUILTIN if name is None else {name: _BUILTIN[name]}
    for isa_name, module in wanted.items():
        if isa_name not in _REGISTRY:
            importlib.import_module(module)


def get(name):
    """The descriptor registered under ``name``.

    Raises :class:`~repro.common.errors.UnknownIsaError` (listing every
    registered name) for unknown ISAs.
    """
    descriptor = _REGISTRY.get(name)
    if descriptor is None and name in _BUILTIN:
        _ensure_builtin(name)
        descriptor = _REGISTRY.get(name)
    if descriptor is None:
        raise UnknownIsaError(name, names())
    return descriptor


def names():
    """Every registered ISA name, built-ins first, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY)


def descriptors():
    """Every registered descriptor, in :func:`names` order."""
    return tuple(_REGISTRY[name] for name in names())


def target_map():
    """CLI target name -> (descriptor, backend opts) across all ISAs."""
    mapping = {}
    for descriptor in descriptors():
        for target, opts in descriptor.targets.items():
            mapping[target] = (descriptor, opts)
    return mapping


def resolve_target(target):
    """(descriptor, backend opts) for one CLI target name.

    Accepts both plain ISA names and per-ISA variant targets (e.g.
    ``straight-raw``); raises :class:`UnknownIsaError` listing every valid
    choice otherwise.
    """
    mapping = target_map()
    entry = mapping.get(target)
    if entry is None:
        raise UnknownIsaError(target, mapping)
    return entry


def for_frontend(frontend):
    """The descriptor whose cores use timing front-end model ``frontend``."""
    for descriptor in descriptors():
        if descriptor.frontend == frontend:
            return descriptor
    raise UnknownIsaError(frontend, [d.frontend for d in descriptors()])


def for_config(config):
    """The descriptor a :class:`~repro.uarch.config.CoreConfig` simulates."""
    return for_frontend(config.frontend_model)


__all__ = [
    "IsaDescriptor",
    "DecodedOp",
    "decode_program",
    "UnknownIsaError",
    "register",
    "get",
    "names",
    "descriptors",
    "target_map",
    "resolve_target",
    "for_frontend",
    "for_config",
]
