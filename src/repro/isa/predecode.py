"""Generic pre-decoded instruction machinery, shared by every ISA.

The functional simulators used to re-derive everything about an instruction
on every dynamic execution: mnemonic-table membership tests, opcode-class
lookups, immediate normalization, branch-target arithmetic.  Lockstep
co-simulation pays that cost *twice* (the primary interpreter plus the
golden shadow machine).  This module provides the ISA-neutral half of the
fix: an immutable :class:`DecodedOp` record — one per static instruction,
with the dispatch kind resolved to a small int, evaluators pre-bound,
immediates pre-wrapped and branch/jump targets pre-resolved to instruction
indices — plus :func:`decode_program`, which decodes a linked binary's text
segment exactly once and memoizes the array on the program object, so every
interpreter over the same binary (primary, golden, fault campaigns) shares
one decode.

Each ISA contributes only a ``decode_one(index, instr, text_base)`` hook
(see ``repro/straight/predecode.py`` and ``repro/riscv/predecode.py``) that
maps its instruction objects onto its own dense kind space.  Decoding is
purely static: a :class:`DecodedOp` never holds run state, so sharing
across interpreter instances (and threads) is safe.
"""


class DecodedOp:
    """One statically-decoded instruction (immutable after construction)."""

    __slots__ = (
        "index",      # text-segment instruction index
        "pc",         # absolute PC of this instruction
        "kind",       # one of the ISA's dense dispatch ints
        "mnemonic",
        "op_class",
        "srcs",       # source operands (distances or register numbers)
        "dest",       # destination register (gpr ISAs; None elsewhere)
        "imm",        # raw immediate (or None)
        "operand",    # kind-specific precomputation (evaluators, wrapped imms)
        "target_index",  # branch/jump destination instruction index
        "target_pc",  # branch/jump destination PC
        "instr",      # the original ISA instruction (error paths, tools)
    )

    def __init__(self, index, pc, kind, instr, operand=None,
                 target_index=None, target_pc=None, srcs=None, dest=None):
        self.index = index
        self.pc = pc
        self.kind = kind
        self.mnemonic = instr.mnemonic
        self.op_class = instr.op_class
        self.srcs = getattr(instr, "srcs", ()) if srcs is None else srcs
        self.dest = dest
        self.imm = instr.imm
        self.operand = operand
        self.target_index = target_index
        self.target_pc = target_pc
        self.instr = instr

    def __repr__(self):
        return f"DecodedOp({self.index}, {self.mnemonic}, kind={self.kind})"


def decode_program(program, decode_one):
    """The immutable decoded-op array of ``program``, decoded exactly once.

    ``decode_one(index, instr, text_base)`` is the ISA's static decoder.
    The array is memoized on the program object; every interpreter instance
    over the same linked binary — including the lockstep golden machine —
    shares one array.
    """
    decoded = getattr(program, "_decoded_ops", None)
    if decoded is None or len(decoded) != len(program.instrs):
        decoded = tuple(
            decode_one(index, instr, program.text_base)
            for index, instr in enumerate(program.instrs)
        )
        program._decoded_ops = decoded
    return decoded
