"""Encoding-density report: payload bits per instruction, per registered ISA.

The STRAIGHT paper's §III argues the distance encoding fits comfortably in
32-bit words; BasicBlocker pays for hazard-free fetch with extra header
instructions.  This experiment quantifies both effects *from the descriptor
tables alone*: every registered ISA declares, per instruction format, the
encodable payload fields and their bit widths
(:attr:`~repro.isa.descriptor.IsaDescriptor.format_fields`), so the report
needs no per-ISA code — a new descriptor shows up in the table
automatically.

Two views per (ISA, workload) point:

* **static** — the linked text segment: instruction count, code bytes, and
  the mean encoded payload bits per instruction (payload bits / word bits
  is the format utilization);
* **dynamic** — the retired instruction stream of one functional run
  (served by the sweep engine's result cache): retired count and mean
  payload bits per *retired* instruction, which is what the fetch/decode
  bandwidth actually carries.

Code size is also reported relative to the RV32IM baseline of the same
workload, making the ``bb`` header overhead and STRAIGHT's RMOV overhead
directly comparable.
"""

from repro import isa as isa_registry

#: Workloads the standalone report covers (the paper's evaluation pair).
DEFAULT_WORKLOADS = ("dhrystone", "coremark")


def payload_bits_by_mnemonic(descriptor):
    """mnemonic -> encodable payload bits, straight from the format tables."""
    return {
        mnemonic: descriptor.format_payload_bits(spec.fmt)
        for mnemonic, spec in descriptor.opcodes.items()
    }


def _weighted_bits(counts, bits):
    total = sum(counts.values())
    if not total:
        return 0, 0.0
    weighted = sum(bits[mnemonic] * count for mnemonic, count in counts.items())
    return total, weighted / total


def static_mnemonic_counts(program):
    """Static mnemonic histogram of a linked program's text segment."""
    counts = {}
    for instr in program.instrs:
        counts[instr.mnemonic] = counts.get(instr.mnemonic, 0) + 1
    return counts


def density_rows(workloads=DEFAULT_WORKLOADS, isas=None, iterations=None):
    """One row per (workload, registered ISA): static + dynamic density."""
    from repro.harness.sweep import cached_functional_metrics
    from repro.workloads import build_workload

    names = tuple(isas) if isas else isa_registry.names()
    rows = []
    for workload in workloads:
        build = build_workload(workload, iterations)
        binaries = build.all()
        baseline_bytes = None
        for name in names:
            descriptor = isa_registry.get(name)
            binary = binaries[descriptor.default_label]
            bits = payload_bits_by_mnemonic(descriptor)
            static_counts = static_mnemonic_counts(binary.program)
            static_instrs, static_bits = _weighted_bits(static_counts, bits)
            metrics = cached_functional_metrics(binary)
            dynamic_counts = metrics["mnemonic_counts"]
            dynamic_instrs, dynamic_bits = _weighted_bits(dynamic_counts, bits)
            word_bits = descriptor.word_bits
            code_bytes = static_instrs * word_bits // 8
            if descriptor.name == "riscv":
                baseline_bytes = code_bytes
            rows.append(
                {
                    "workload": workload,
                    "isa": descriptor.name,
                    "binary": descriptor.default_label,
                    "static_instrs": static_instrs,
                    "code_bytes": code_bytes,
                    "static_bits_per_instr": round(static_bits, 2),
                    "utilization": round(static_bits / word_bits, 4),
                    "dynamic_instrs": dynamic_instrs,
                    "dynamic_bits_per_instr": round(dynamic_bits, 2),
                }
            )
        if baseline_bytes:
            for row in rows:
                if row["workload"] == workload:
                    row["code_size_vs_ss"] = round(
                        row["code_bytes"] / baseline_bytes, 4
                    )
    return rows


def density_report(workloads=DEFAULT_WORKLOADS, isas=None, iterations=None):
    """The encoding-density experiment: ``{"rows": ..., "text": ...}``."""
    from repro.harness.reporting import format_table

    rows = density_rows(workloads, isas=isas, iterations=iterations)
    columns = ["workload", "isa", "binary", "static_instrs", "code_bytes",
               "code_size_vs_ss", "static_bits_per_instr", "utilization",
               "dynamic_instrs", "dynamic_bits_per_instr"]
    return {
        "rows": rows,
        "text": format_table(
            rows,
            columns=columns,
            title="Encoding density by ISA (payload bits per 32-bit word)",
        ),
    }
