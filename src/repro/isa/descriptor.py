"""The ISA plugin abstraction: one descriptor per registered ISA.

An :class:`IsaDescriptor` bundles everything the toolchain, harness and
simulators need to know about one instruction set — opcode/format tables,
the register-model kind, encode/decode, assembler/linker entry points,
interpreter and compiler factories, timing-model hooks — so that every
layer above dispatches through the registry (:mod:`repro.isa`) instead of
comparing ISA name strings.

Adding an ISA means building one descriptor (usually in
``repro/<isa>/descriptor.py``) and registering it; see DESIGN.md §12 for
the walkthrough.
"""


class IsaDescriptor:
    """Everything the stack needs to know about one ISA.

    Required hooks (callables):

    * ``parse_assembly(text)`` -> AsmUnit
    * ``link(units, data_words=(), data_base=0, **kw)`` -> linked program
    * ``startup_stub()`` -> AsmUnit
    * ``encode(instr)`` / ``decode(word)`` -> 32-bit word / instruction
    * ``make_interpreter(program, collect_trace=False, **kw)`` -> ISS
    * ``compile_module(module, max_distance=..., **opts)`` -> compilation
      (an object with ``asm_text()`` and ``link()``)

    Optional hooks:

    * ``static_check(program, lint=False)`` -> diagnostic report — the
      ISA's static verifier (STRAIGHT's distance/write-once proof, the
      ``bb`` block-header structure check); ISAs without one leave it
      ``None``.  Reports duck-type ``has_errors()`` / ``text(max_items)`` /
      ``as_dict()``; severity policy (raise vs. warn) is the caller's.
    * ``predecode(program)`` -> tuple of DecodedOp — the decode-once hot
      path (see :mod:`repro.isa.predecode`).
    * ``analysis()`` -> IsaAnalysisSupport — the ISA's plug into the
      generic dataflow framework (:mod:`repro.analysis.framework`):
      control protocol (successors / calls / returns / terminators) and
      dataflow protocol (per-block dependence graphs, latencies) for the
      CFG reconstruction, the verifiers and the liveness / value-range /
      static-ILP passes.  ISAs without one leave it ``None`` and are
      skipped by `straight analyze`.

    Data fields:

    * ``register_model`` — ``'distance'`` (every instruction writes the
      next circular RP; operands name producers by distance) or ``'gpr'``
      (conventional named registers).
    * ``opcodes`` — mnemonic -> spec mapping (specs carry ``fmt`` and
      ``op_class``).
    * ``format_fields`` — format name -> {field name: bit width} for every
      encodable payload field (drives the encoding-density experiment).
    * ``binary_labels`` — harness label -> backend-option dict; the first
      entry is the ISA's default evaluation binary (e.g. ``SS`` for rv32im,
      ``STRAIGHT-RE+`` for straight, ``BB`` for bb).
    * ``targets`` — CLI target name -> backend-option dict (a superset of
      ``binary_labels`` values, e.g. ``straight-raw``).
    * ``frontend`` — name of the timing front-end model this ISA's cores
      use (see :data:`repro.uarch.frontend_models.FRONTEND_MODELS`).
    * ``config_factories`` — class name (``'2way'``/``'4way'``) -> CoreConfig
      factory for this ISA's evaluation cores.
    """

    def __init__(self, name, display_name, register_model, opcodes,
                 format_fields, parse_assembly, link, startup_stub,
                 encode, decode, make_interpreter, compile_module,
                 binary_labels, targets, frontend, config_factories,
                 static_check=None, predecode=None, analysis=None,
                 word_bits=32):
        self.name = name
        self.display_name = display_name
        self.register_model = register_model
        self.opcodes = opcodes
        self.format_fields = format_fields
        self.parse_assembly = parse_assembly
        self.link = link
        self.startup_stub = startup_stub
        self.encode = encode
        self.decode = decode
        self.make_interpreter = make_interpreter
        self.compile_module = compile_module
        self.binary_labels = dict(binary_labels)
        self.targets = dict(targets)
        self.frontend = frontend
        self.config_factories = dict(config_factories)
        self._static_check = static_check
        self.predecode = predecode
        self.analysis = analysis
        self.word_bits = word_bits

    @property
    def has_static_check(self):
        """Whether this ISA ships a static verifier."""
        return self._static_check is not None

    @property
    def default_label(self):
        """The ISA's primary evaluation-binary label (``SS``, ``BB``, ...)."""
        return next(iter(self.binary_labels))

    def static_check(self, program, lint=False):
        """Run the ISA's static verifier; ``None`` when it has none."""
        if self._static_check is None:
            return None
        return self._static_check(program, lint=lint)

    def label_for_config(self, config):
        """The evaluation-binary label a core of this ISA simulates."""
        return self.default_label

    def format_payload_bits(self, fmt):
        """Total encodable payload bits of one format (density experiment)."""
        return sum(self.format_fields[fmt].values())

    def __repr__(self):
        return f"IsaDescriptor({self.name!r})"
