"""Guardrail suite: the timing core's hook bus for checkers and injectors.

The timing engine (:mod:`repro.uarch.pipeline`) stays unaware of what runs
behind the guardrails: it calls ``begin_run`` / ``on_dispatch`` /
``on_commit`` / ``on_cycle`` / ``end_run`` on one :class:`GuardrailSuite`
*only when one was attached*, so the default (guardrails disabled) path
executes exactly the same instruction stream and reproduces its cycle counts
bit-for-bit.  Attaching a suite also disables event-driven cycle skipping,
so per-cycle hooks observe every cycle.

The suite exposes the engine's live :class:`~repro.uarch.pipeline.PipelineState`
to checkers through a :class:`GuardView` — shared structure references plus
live scalars read straight off the state and scheduler — and keeps a bounded
log of the most recently committed instructions so every raised guardrail
error carries a replayable window of the commit stream.
"""

from collections import deque

from repro.common.errors import GuardrailError


def _entry_summary(entry):
    """Compact JSON-friendly view of one committed TraceEntry."""
    summary = {
        "pc": entry.pc,
        "mnemonic": entry.mnemonic,
        "dest": entry.dest,
        "dest_value": entry.dest_value,
    }
    if entry.mem_addr is not None:
        summary["mem_addr"] = entry.mem_addr
    if entry.is_control:
        summary["taken"] = entry.taken
    return summary


class GuardView:
    """Window into one running :class:`~repro.uarch.core.OoOCore` instance.

    ``rob``/``rob_by_seq``/``pipe``/``reg_ready``/``lsq`` are the engine's
    own mutable structures (shared references, never copies); ``cycle``,
    ``committed``, ``iq_count`` and ``fetch_idx`` are properties reading the
    live :class:`~repro.uarch.pipeline.PipelineState` and scheduler, so
    every hook sees the current value without any per-cycle refresh.
    """

    __slots__ = (
        "core",
        "config",
        "trace",
        "rob",
        "rob_by_seq",
        "pipe",
        "reg_ready",
        "lsq",
        "_state",
        "_sched",
    )

    def __init__(self, core, state, sched):
        self.core = core
        self.config = core.config
        self.trace = state.trace
        self.rob = state.rob
        self.rob_by_seq = state.rob_by_seq
        self.pipe = state.pipe
        self.reg_ready = state.reg_ready
        self.lsq = core.lsq
        self._state = state
        self._sched = sched

    @property
    def cycle(self):
        return self._sched.cycle

    @property
    def committed(self):
        return self._state.committed

    @property
    def iq_count(self):
        return self._state.iq_count

    @property
    def fetch_idx(self):
        return self._state.fetch_idx

    def occupancy(self):
        """Per-structure occupancy snapshot (attached to guardrail errors)."""
        return {
            "cycle": self.cycle,
            "rob": len(self.rob),
            "iq": self.iq_count,
            "lsq_loads": len(self.lsq.loads),
            "lsq_stores": len(self.lsq.stores),
            "pipe": len(self.pipe),
            "fetched": self.fetch_idx,
            "committed": self.committed,
        }

    def head_pc(self):
        """PC of the oldest in-flight instruction, if any."""
        return self.rob[0].entry.pc if self.rob else None


class InvariantChecker:
    """Base class: checkers override the hooks they need.

    The suite inspects which hooks are overridden so that, e.g., a
    dispatch-only checker costs nothing at commit time.
    """

    name = "checker"

    def begin_run(self, view, config):
        pass

    def on_dispatch(self, view, seq, entry, cycle):
        pass

    def on_commit(self, view, rob_entry, cycle):
        pass

    def on_cycle(self, view):
        pass

    def end_run(self, view):
        pass


class GuardrailSuite:
    """Aggregates invariant checkers, a lockstep monitor and a fault injector."""

    def __init__(self, config, checkers=(), lockstep=None, injector=None,
                 window=32):
        self.config = config
        self.checkers = list(checkers)
        self.lockstep = lockstep
        self.injector = injector
        self.commit_log = deque(maxlen=window)
        self.view = None
        self.commits_seen = 0
        self._rebuild_hook_lists()

    def _rebuild_hook_lists(self):
        base = InvariantChecker
        self._dispatch_checkers = [
            c for c in self.checkers if type(c).on_dispatch is not base.on_dispatch
        ]
        self._commit_checkers = [
            c for c in self.checkers if type(c).on_commit is not base.on_commit
        ]
        self._cycle_checkers = [
            c for c in self.checkers if type(c).on_cycle is not base.on_cycle
        ]

    def add_checker(self, checker):
        """Attach one more checker (before the run starts); returns self."""
        self.checkers.append(checker)
        self._rebuild_hook_lists()
        return self

    # -- hooks called by the timing core ------------------------------------

    def begin_run(self, core, state, sched):
        self.view = GuardView(core, state, sched)
        for checker in self.checkers:
            checker.begin_run(self.view, self.config)
        if self.injector is not None:
            self.injector.begin_run(self.view)

    def on_dispatch(self, seq, entry, cycle):
        try:
            for checker in self._dispatch_checkers:
                checker.on_dispatch(self.view, seq, entry, cycle)
        except GuardrailError as exc:
            raise self._augment(exc)

    def on_commit(self, rob_entry, cycle):
        self.commits_seen += 1
        self.commit_log.append(rob_entry.entry)
        try:
            for checker in self._commit_checkers:
                checker.on_commit(self.view, rob_entry, cycle)
            if self.lockstep is not None:
                self.lockstep.on_commit(rob_entry.entry, cycle)
        except GuardrailError as exc:
            raise self._augment(exc)

    def on_cycle(self):
        view = self.view
        if self.injector is not None:
            self.injector.on_cycle(view)
        try:
            for checker in self._cycle_checkers:
                checker.on_cycle(view)
        except GuardrailError as exc:
            raise self._augment(exc)

    def end_run(self, stats):
        try:
            for checker in self.checkers:
                checker.end_run(self.view)
        except GuardrailError as exc:
            raise self._augment(exc)

    # -- reporting -----------------------------------------------------------

    def commit_window(self):
        """The last-K committed instructions as JSON-friendly dicts."""
        return [_entry_summary(entry) for entry in self.commit_log]

    def _augment(self, exc):
        """Attach the replay window and occupancy snapshot to a raised error."""
        exc.context.setdefault("commit_window", self.commit_window())
        if not exc.occupancy and self.view is not None:
            exc.occupancy = self.view.occupancy()
        return exc

    def finish(self, observed_output=None):
        """Post-run verdict; raises on a final-state divergence.

        Returns a report dict summarizing what was checked.  Called by
        :func:`repro.core.api.simulate` after the timing run returns.
        """
        report = {
            "commits_checked": self.commits_seen,
            "checkers": [checker.name for checker in self.checkers],
        }
        if self.lockstep is not None:
            report["lockstep"] = self.lockstep.finish(observed_output)
        if self.injector is not None:
            report["faults"] = self.injector.summary()
        return report
