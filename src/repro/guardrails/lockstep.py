"""Lockstep co-simulation: a golden functional run shadows the timing core.

The timing engine is trace-driven, so the commit stream it produces is the
trace the front-end interpreter generated.  The lockstep monitor re-executes
the *program* on a second, independent interpreter instance (the golden
machine) one instruction per commit and compares, at every commit:

* the committing PC against the golden PC,
* the architectural result (``dest_value``) against the golden write,
* the stored word for memory effects,
* the successor PC (control flow).

Any mismatch raises a :class:`~repro.common.errors.DivergenceError` naming
the first diverging commit, the field, expected/observed values, and a
replayable window (the program identity plus the commit-index range) so the
failure can be re-driven in isolation.  A final check compares the output
channels end-to-end.
"""

from repro.common.errors import DivergenceError


class LockstepMonitor:
    """Compares the timing core's commit stream against a golden re-execution."""

    name = "lockstep"

    def __init__(self, binary, window=32):
        self.binary = binary
        self.isa = binary.isa
        from repro import isa as isa_registry

        #: 'distance' (every instruction writes the next circular RP) or
        #: 'gpr' (named registers; writes only when ``dest`` is set).
        self.register_model = isa_registry.get(binary.isa).register_model
        self.golden = binary.interpreter(collect_trace=False)
        self.compared = 0
        self.window = window

    # -- per-commit comparison ----------------------------------------------

    def on_commit(self, entry, cycle):
        golden = self.golden
        if golden.halted:
            self._diverge("halt", "running golden machine", "halted", entry,
                          cycle)
        golden_pc = golden._pc()
        if golden_pc != entry.pc:
            self._diverge("pc", golden_pc, entry.pc, entry, cycle)
        decoded = getattr(golden, "decoded", None)
        if decoded is not None:
            # Step straight off the shared pre-decoded array (one decode
            # per binary, not per machine) — every built-in ISS has one.
            if not 0 <= golden.pc_index < len(decoded):
                self._diverge("pc_index", f"[0, {len(decoded)})",
                              golden.pc_index, entry, cycle)
            step_current = getattr(golden, "step_current", None)
            if step_current is not None:
                # Dispatches through the compiled per-op handlers when the
                # threaded-code fast path is active, so lockstep guards the
                # same generated code production runs execute.
                step_current()
            else:
                golden.step_op(decoded[golden.pc_index])
        else:
            instrs = golden.program.instrs
            if not 0 <= golden.pc_index < len(instrs):
                self._diverge("pc_index", f"[0, {len(instrs)})",
                              golden.pc_index, entry, cycle)
            golden.step(instrs[golden.pc_index])
        self._compare_result(entry, cycle)
        if entry.op_class == "store" and entry.mem_addr is not None:
            stored = golden.memory.get(entry.mem_addr // 4)
            if entry.dest_value is not None and stored != entry.dest_value:
                self._diverge("mem_value", stored, entry.dest_value, entry,
                              cycle)
        if not golden.halted and entry.next_pc is not None:
            next_pc = golden._pc()
            if next_pc != entry.next_pc:
                self._diverge("next_pc", next_pc, entry.next_pc, entry, cycle)
        self.compared += 1

    def _compare_result(self, entry, cycle):
        golden = self.golden
        if self.register_model == "distance":
            # Every distance-ISA instruction writes; seq was bumped by step().
            value = golden.regs[(golden.seq - 1) % golden.max_rp]
            if value != entry.dest_value:
                self._diverge("dest_value", value, entry.dest_value, entry,
                              cycle)
        elif entry.dest is not None:
            value = golden.regs[entry.dest]
            if value != entry.dest_value:
                self._diverge("dest_value", value, entry.dest_value, entry,
                              cycle)

    # -- final state ---------------------------------------------------------

    def finish(self, observed_output=None):
        """End-of-run verdict; raises if the output channels disagree."""
        if observed_output is not None:
            golden_out = list(self.golden.output)
            observed = list(observed_output)
            if golden_out != observed:
                raise DivergenceError(
                    "output channel diverged from the golden run",
                    context={
                        "checker": self.name,
                        "expected": golden_out[:64],
                        "observed": observed[:64],
                        "commits_compared": self.compared,
                    },
                )
        return {
            "commits_compared": self.compared,
            "golden_halted": self.golden.halted,
        }

    def _diverge(self, field, expected, observed, entry, cycle):
        start = max(0, self.compared - self.window)
        raise DivergenceError(
            f"lockstep divergence at commit #{self.compared}: {field} "
            f"expected {expected!r}, observed {observed!r}",
            cycle=cycle,
            pc=entry.pc,
            context={
                "checker": self.name,
                "field": field,
                "expected": expected,
                "observed": observed,
                "commit_index": self.compared,
                "replay_window": {
                    "isa": self.isa,
                    "first_commit": start,
                    "last_commit": self.compared,
                },
            },
        )
