"""Crash dumps: machine-readable post-mortems for failed simulation runs.

A dump is one JSON file in a diagnostics directory holding the structured
error (type, message, cycle, PC, per-structure occupancy), the replayable
commit window when the guardrail suite attached one, and whatever extra
context the caller supplies (config name, workload, experiment id).  The
hardened harness writes one per failed run plus a sweep-level error manifest.
"""

import json
import os
import time

from repro.common.errors import SimulationError

_counter = 0


def _error_payload(exc):
    if isinstance(exc, SimulationError):
        return exc.as_dict()
    return {"type": type(exc).__name__, "message": str(exc)}


def write_crash_dump(directory, label, exc, extra=None):
    """Serialize one failure; returns the dump's path."""
    global _counter
    os.makedirs(directory, exist_ok=True)
    _counter += 1
    payload = {
        "label": label,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "error": _error_payload(exc),
    }
    if extra:
        payload["extra"] = dict(extra)
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    path = os.path.join(
        directory, f"crash-{safe}-{os.getpid()}-{_counter:03d}.json"
    )
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=repr)
    return path


def write_manifest(directory, manifest):
    """Write the sweep-level error manifest; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "manifest.json")
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, default=repr)
    return path
