"""Crash dumps: machine-readable post-mortems for failed simulation runs.

A dump is one JSON file in a diagnostics directory holding the structured
error (type, message, cycle, PC, per-structure occupancy), the replayable
commit window when the guardrail suite attached one, and whatever extra
context the caller supplies (config name, workload, experiment id).  The
hardened harness writes one per failed run plus a sweep-level error manifest.

Dumps are **capped and rotated** per directory: once a directory holds
``max_dumps`` crash files, writing a new one evicts the oldest first, so a
pathologically failing sweep (thousands of grid points, every one crashing)
cannot fill the disk.  The cap is configurable per call or process-wide
(``straight sweep --max-crash-dumps`` sets it for a whole run).
"""

import glob
import json
import os
import time

from repro.common.errors import SimulationError

_counter = 0

#: Default per-directory crash dump cap; ``configure_rotation`` overrides.
DEFAULT_MAX_DUMPS = 200
_max_dumps = DEFAULT_MAX_DUMPS


def configure_rotation(max_dumps):
    """Set the process-wide per-directory dump cap; returns the previous one.

    ``max_dumps`` must be >= 1 (a cap of zero would make every dump vanish
    the moment it is written, silently destroying the evidence the dump
    exists to preserve).
    """
    global _max_dumps
    if max_dumps < 1:
        raise ValueError("max_dumps must be >= 1")
    previous = _max_dumps
    _max_dumps = int(max_dumps)
    return previous


def _rotate(directory, cap):
    """Evict oldest crash dumps until at most ``cap - 1`` remain."""
    dumps = glob.glob(os.path.join(directory, "crash-*.json"))
    if len(dumps) < cap:
        return []

    def age(path):
        try:
            return (os.path.getmtime(path), path)
        except OSError:
            return (0.0, path)
    evicted = []
    for path in sorted(dumps, key=age)[:len(dumps) - cap + 1]:
        try:
            os.remove(path)
            evicted.append(path)
        except OSError:
            pass
    return evicted


def _error_payload(exc):
    if isinstance(exc, SimulationError):
        return exc.as_dict()
    return {"type": type(exc).__name__, "message": str(exc)}


def write_crash_dump(directory, label, exc, extra=None, max_dumps=None):
    """Serialize one failure; returns the dump's path.

    ``max_dumps`` caps how many ``crash-*.json`` files the directory may
    hold (default: the process-wide cap); the oldest dumps are evicted to
    make room, newest-first retention.
    """
    global _counter
    os.makedirs(directory, exist_ok=True)
    _rotate(directory, max_dumps if max_dumps is not None else _max_dumps)
    _counter += 1
    payload = {
        "label": label,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "error": _error_payload(exc),
    }
    if extra:
        payload["extra"] = dict(extra)
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    path = os.path.join(
        directory, f"crash-{safe}-{os.getpid()}-{_counter:03d}.json"
    )
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=repr)
    return path


def write_manifest(directory, manifest):
    """Write the sweep-level error manifest; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "manifest.json")
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, default=repr)
    return path
