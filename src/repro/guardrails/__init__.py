"""Simulation guardrails: invariant checkers, lockstep co-simulation, fault
injection, and crash dumps.

The subsystem is strictly opt-in: the timing core only pays for it when a
:class:`~repro.guardrails.suite.GuardrailSuite` is attached (``guardrails=True``
on :func:`repro.core.api.simulate`, the ``CoreConfig.guardrails`` knob, or the
CLI's ``--guardrails`` flag).  With no suite attached, the engine executes the
seed's exact fast path and cycle counts are unchanged.
"""

from repro.guardrails.suite import GuardrailSuite, GuardView, InvariantChecker
from repro.guardrails.checkers import (
    CommitSanityChecker,
    DistanceBoundChecker,
    FreelistChecker,
    OccupancyChecker,
    PredictorStateChecker,
    StallAttributionChecker,
    Watchdog,
    WriteOnceChecker,
)
from repro.guardrails.lockstep import LockstepMonitor
from repro.guardrails.faultinject import (
    DEFAULT_CAMPAIGN_SOURCE,
    CampaignReport,
    FaultSpec,
    TimingFaultInjector,
    run_campaign,
    run_functional_with_fault,
)
from repro.guardrails.crashdump import write_crash_dump, write_manifest


def static_precheck(binary, strict=True, lint=False):
    """Static verification pre-pass over a binary, via its ISA descriptor.

    The cheap front half of the guarded pipeline: before any dynamic
    lockstep run, prove the ISA's static discipline over every CFG path —
    STRAIGHT's distance/write-once/SP proof (:mod:`repro.analysis`), the
    ``bb`` block-header structure proof (:mod:`repro.bb.verify`) — so
    dynamic checking starts from a binary already known to be structurally
    sound on the paths the run won't take.  Returns the diagnostic report,
    or ``None`` for ISAs without a static verifier; with ``strict``
    (default) error diagnostics raise
    :class:`~repro.common.errors.GuardrailError`.
    """
    isa_name = getattr(binary, "isa", None)
    if isa_name is None:
        return None
    from repro import isa as isa_registry

    report = isa_registry.get(isa_name).static_check(binary.program, lint=lint)
    if report is None:
        return None
    if strict and report.has_errors():
        from repro.common.errors import GuardrailError

        raise GuardrailError(
            "static verification failed before the dynamic run:\n"
            + report.text(max_items=10)
        )
    return report


def build_guardrails(config, binary=None, lockstep=True, injector=None,
                     window=32):
    """Standard suite for one run: full checker set plus optional lockstep.

    ``binary`` enables lockstep co-simulation (a golden interpreter needs the
    program) and lets the distance/write-once checkers use the *binary's*
    compiled distance bound, which experiment sweeps may set wider than the
    core's Table-I default.
    """
    if binary is not None and not getattr(binary.program, "_static_verified", False):
        static_precheck(binary)
        binary.program._static_verified = True
    watchdog_cycles = getattr(config, "watchdog_cycles", 50_000)
    deep_interval = getattr(config, "deep_check_interval", 64)
    predictor_interval = getattr(config, "predictor_check_interval", 4_096)
    checkers = [
        OccupancyChecker(deep_interval=deep_interval),
        CommitSanityChecker(),
        Watchdog(limit=watchdog_cycles),
        PredictorStateChecker(interval=predictor_interval),
    ]
    if config.is_straight:
        bound = config.max_distance
        if binary is not None:
            bound = max(bound, getattr(binary.program, "max_distance", bound))
        checkers.append(WriteOnceChecker(max_rp=bound + config.rob_entries))
        checkers.append(DistanceBoundChecker(bound))
    else:
        checkers.append(FreelistChecker(interval=deep_interval))
    monitor = None
    if lockstep and binary is not None:
        monitor = LockstepMonitor(binary, window=window)
    return GuardrailSuite(config, checkers, lockstep=monitor,
                          injector=injector, window=window)


__all__ = [
    "GuardrailSuite",
    "GuardView",
    "InvariantChecker",
    "build_guardrails",
    "static_precheck",
    "CommitSanityChecker",
    "DistanceBoundChecker",
    "FreelistChecker",
    "OccupancyChecker",
    "PredictorStateChecker",
    "StallAttributionChecker",
    "Watchdog",
    "WriteOnceChecker",
    "LockstepMonitor",
    "DEFAULT_CAMPAIGN_SOURCE",
    "CampaignReport",
    "FaultSpec",
    "TimingFaultInjector",
    "run_campaign",
    "run_functional_with_fault",
    "write_crash_dump",
    "write_manifest",
]
