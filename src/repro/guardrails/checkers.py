"""Invariant checkers for the timing core.

Each checker enforces one structural property STRAIGHT's correctness argument
(or the SS baseline's) rests on:

* :class:`WriteOnceChecker` — a physical register is written exactly once per
  allocation: no two in-flight instructions may map to the same RP slot, and
  commit-time accounting must return the slot its dispatcher claimed;
* :class:`DistanceBoundChecker` — no dispatched instruction names a source
  further away than the binary's ``max_distance``;
* :class:`FreelistChecker` — SS free-list conservation: free + in-flight
  destinations always equals the physical registers not pinned by the RMT;
* :class:`OccupancyChecker` — ROB/IQ/LSQ occupancy stays within configured
  capacity and the ROB's seq index stays consistent with its entries;
* :class:`CommitSanityChecker` — an instruction only commits after its
  completion event fired (catches corrupted ``done`` flags);
* :class:`PredictorStateChecker` — branch-predictor SRAM contents stay within
  their encodable ranges (2-bit/3-bit counters, bounded history);
* :class:`Watchdog` — forward progress: some instruction must commit every N
  cycles or the run dies with a :class:`~repro.common.errors.DeadlockError`
  carrying a full occupancy snapshot.

Checkers raise immediately on the first violation; the suite decorates the
error with the commit-window replay context.
"""

from repro.common.errors import DeadlockError, InvariantViolation
from repro.guardrails.suite import InvariantChecker


class WriteOnceChecker(InvariantChecker):
    """Write-once physical-register enforcement for STRAIGHT cores."""

    name = "write-once"

    def __init__(self, max_rp):
        self.max_rp = max_rp
        self.inflight = {}

    def begin_run(self, view, config):
        self.inflight = {}

    def on_dispatch(self, view, seq, entry, cycle):
        reg = seq % self.max_rp
        owner = self.inflight.get(reg)
        if owner is not None:
            raise InvariantViolation(
                f"write-once violation: RP slot {reg} claimed by in-flight "
                f"instruction #{owner} is re-written by #{seq}",
                cycle=cycle,
                pc=entry.pc,
                context={"checker": self.name, "reg": reg, "owner": owner,
                         "writer": seq},
            )
        self.inflight[reg] = seq

    def on_commit(self, view, rob_entry, cycle):
        reg = rob_entry.seq % self.max_rp
        owner = self.inflight.pop(reg, None)
        if owner != rob_entry.seq:
            raise InvariantViolation(
                f"RP accounting mismatch at commit: slot {reg} was claimed by "
                f"#{owner}, committing instruction is #{rob_entry.seq}",
                cycle=cycle,
                pc=rob_entry.entry.pc,
                context={"checker": self.name, "reg": reg, "owner": owner,
                         "committing": rob_entry.seq},
            )


class DistanceBoundChecker(InvariantChecker):
    """Every STRAIGHT source distance must respect the binary's bound."""

    name = "distance-bound"

    def __init__(self, max_distance):
        self.max_distance = max_distance

    def on_dispatch(self, view, seq, entry, cycle):
        for distance in entry.src_distances:
            if distance > self.max_distance:
                raise InvariantViolation(
                    f"source distance {distance} exceeds max_distance "
                    f"{self.max_distance}",
                    cycle=cycle,
                    pc=entry.pc,
                    context={"checker": self.name, "seq": seq,
                             "distance": distance,
                             "max_distance": self.max_distance},
                )


class FreelistChecker(InvariantChecker):
    """SS rename free-list conservation (free + in-flight dests == capacity)."""

    name = "freelist"

    def __init__(self, interval=64):
        self.interval = interval

    def on_cycle(self, view):
        if view.cycle % self.interval:
            return
        frontend = view.core.frontend
        capacity = view.config.phys_regs - 32
        free = frontend.free_regs
        if not 0 <= free <= capacity:
            raise InvariantViolation(
                f"free list out of range: {free} not in [0, {capacity}]",
                cycle=view.cycle,
                occupancy=view.occupancy(),
                context={"checker": self.name},
            )
        used = sum(1 for e in view.rob if e.entry.dest is not None)
        if free + used != capacity:
            raise InvariantViolation(
                f"free-list leak: free={free} + in-flight dests={used} != "
                f"capacity={capacity}",
                cycle=view.cycle,
                occupancy=view.occupancy(),
                context={"checker": self.name, "free": free, "used": used},
            )


class OccupancyChecker(InvariantChecker):
    """ROB/IQ/LSQ occupancy bounds plus ROB index consistency."""

    name = "occupancy"

    def __init__(self, deep_interval=64):
        self.deep_interval = deep_interval

    def on_cycle(self, view):
        cfg = view.config
        if len(view.rob) > cfg.rob_entries:
            self._fail(view, f"ROB occupancy {len(view.rob)} > {cfg.rob_entries}")
        if not 0 <= view.iq_count <= cfg.iq_entries:
            self._fail(view, f"IQ occupancy {view.iq_count} out of "
                             f"[0, {cfg.iq_entries}]")
        lsq = view.lsq
        if len(lsq.loads) > lsq.load_entries:
            self._fail(view, f"LQ occupancy {len(lsq.loads)} > {lsq.load_entries}")
        if len(lsq.stores) > lsq.store_entries:
            self._fail(view, f"SQ occupancy {len(lsq.stores)} > {lsq.store_entries}")
        if len(view.rob_by_seq) != len(view.rob):
            self._fail(view, f"ROB index holds {len(view.rob_by_seq)} entries "
                             f"for a {len(view.rob)}-entry ROB")
        if view.cycle % self.deep_interval == 0:
            self._deep_scan(view)

    def _deep_scan(self, view):
        previous = -1
        for rob_entry in view.rob:
            if view.rob_by_seq.get(rob_entry.seq) is not rob_entry:
                self._fail(view, f"ROB index inconsistent for seq "
                                 f"#{rob_entry.seq}")
            if rob_entry.seq <= previous:
                self._fail(view, f"ROB order corrupted: #{rob_entry.seq} "
                                 f"follows #{previous}")
            previous = rob_entry.seq

    def end_run(self, view):
        self._deep_scan(view)

    def _fail(self, view, message):
        raise InvariantViolation(
            message,
            cycle=view.cycle,
            pc=view.head_pc(),
            occupancy=view.occupancy(),
            context={"checker": self.name},
        )


class CommitSanityChecker(InvariantChecker):
    """Only completed, correctly-indexed instructions may commit."""

    name = "commit-sanity"

    def on_commit(self, view, rob_entry, cycle):
        if view.rob_by_seq.get(rob_entry.seq) is not rob_entry:
            raise InvariantViolation(
                f"committing instruction #{rob_entry.seq} is not the entry "
                "the ROB index holds for that seq",
                cycle=cycle,
                pc=rob_entry.entry.pc,
                occupancy=view.occupancy(),
                context={"checker": self.name, "seq": rob_entry.seq},
            )
        if not rob_entry.done:
            raise InvariantViolation(
                f"instruction #{rob_entry.seq} committing without done flag",
                cycle=cycle,
                pc=rob_entry.entry.pc,
                context={"checker": self.name, "seq": rob_entry.seq},
            )
        if rob_entry.entry.op_class != "nop":
            ready = view.reg_ready.get(rob_entry.seq)
            if ready is None or ready > cycle:
                raise InvariantViolation(
                    f"instruction #{rob_entry.seq} commits at cycle {cycle} "
                    f"but its completion is recorded at {ready!r}",
                    cycle=cycle,
                    pc=rob_entry.entry.pc,
                    occupancy=view.occupancy(),
                    context={"checker": self.name, "seq": rob_entry.seq,
                             "ready": ready},
                )


class PredictorStateChecker(InvariantChecker):
    """Branch-predictor storage must stay within encodable ranges."""

    name = "predictor-state"

    def __init__(self, interval=4096):
        self.interval = interval

    def on_cycle(self, view):
        if view.cycle % self.interval == 0:
            self.sweep(view)

    def end_run(self, view):
        self.sweep(view)

    def sweep(self, view):
        predictor = view.core.predictor
        table = getattr(predictor, "table", None)
        if table is not None:  # gshare
            self._check_counters(view, table, 0, 3, "gshare counter")
            if predictor.history & ~predictor.history_mask:
                self._fail(view, f"gshare history {predictor.history:#x} "
                                 "exceeds its mask")
            return
        bimodal = getattr(predictor, "bimodal", None)
        if bimodal is not None:  # tage
            self._check_counters(view, bimodal, 0, 3, "TAGE bimodal counter")
            for i, tagged in enumerate(predictor.tables):
                self._check_counters(view, tagged.counters, -4, 3,
                                     f"TAGE T{i} counter")
                self._check_counters(view, tagged.useful, 0, 3,
                                     f"TAGE T{i} useful bit")

    def _check_counters(self, view, counters, low, high, label):
        for index, counter in enumerate(counters):
            if not low <= counter <= high:
                self._fail(view, f"{label}[{index}] = {counter} outside "
                                 f"[{low}, {high}]")

    def _fail(self, view, message):
        raise InvariantViolation(
            message,
            cycle=view.cycle,
            context={"checker": self.name},
        )


class Watchdog(InvariantChecker):
    """Forward progress: no commit for N cycles means the core is wedged."""

    name = "watchdog"

    def __init__(self, limit=50_000):
        self.limit = limit
        self.last_committed = 0
        self.last_commit_cycle = 0

    def begin_run(self, view, config):
        self.last_committed = 0
        self.last_commit_cycle = 0

    def on_cycle(self, view):
        if view.committed != self.last_committed:
            self.last_committed = view.committed
            self.last_commit_cycle = view.cycle
        elif view.cycle - self.last_commit_cycle > self.limit:
            raise DeadlockError(
                f"no instruction committed for {self.limit} cycles "
                f"({view.committed}/{len(view.trace)} committed)",
                cycle=view.cycle,
                pc=view.head_pc(),
                occupancy=view.occupancy(),
                context={"checker": self.name,
                         "last_commit_cycle": self.last_commit_cycle},
            )


class StallAttributionChecker(InvariantChecker):
    """Top-down attribution conservation: every issue slot, exactly one bucket.

    Wraps a live :class:`~repro.obs.attribution.StallAttributionAccountant`
    and re-verifies, on every simulated cycle, that the accountant charged
    that cycle's ``issue_width`` slots to buckets summing exactly to the
    width — and at end of run, that the lifetime totals equal
    ``issue_width × cycles_observed``.  A mismatch means the attribution
    data is unsound (double- or under-charged slots) and the run fails
    rather than report misleading stall breakdowns.
    """

    name = "stall-attribution"

    def __init__(self, accountant):
        self.accountant = accountant

    def on_cycle(self, view):
        accountant = self.accountant
        charges = accountant.last_cycle_charges
        total = sum(charges.values())
        if total != accountant.issue_width:
            raise InvariantViolation(
                f"attribution not conserved at cycle {view.cycle}: charges "
                f"{charges} sum to {total}, machine has "
                f"{accountant.issue_width} issue slots",
                cycle=view.cycle,
                occupancy=view.occupancy(),
                context={"checker": self.name, "charges": dict(charges)},
            )
        for bucket, slots in charges.items():
            if slots < 0:
                raise InvariantViolation(
                    f"negative attribution charge at cycle {view.cycle}: "
                    f"{bucket} = {slots}",
                    cycle=view.cycle,
                    context={"checker": self.name, "charges": dict(charges)},
                )

    def end_run(self, view):
        accountant = self.accountant
        if not accountant.conserved():
            raise InvariantViolation(
                "attribution totals not conserved: charged "
                f"{accountant.total_charged} slots over "
                f"{accountant.cycles_observed} cycles on a "
                f"{accountant.issue_width}-wide machine "
                f"(expected {accountant.issue_width * accountant.cycles_observed})",
                context={"checker": self.name,
                         "buckets": dict(accountant.buckets)},
            )
