"""Seeded fault injection: prove the checkers catch real corruption.

Flips bits in simulator state on a deterministic, seeded schedule and runs
the corrupted machine under full guardrails (checkers + lockstep).  Targets:

* ``regfile`` — flip one bit of the most recently produced live value in the
  functional interpreter's register file (detected by lockstep value/PC
  comparison or, if the program stops terminating, the step budget);
* ``written_seq`` — corrupt the RP bookkeeping that backs the interpreter's
  dynamic distance validation (detected by the stale-operand check);
* ``rob_done_set`` — prematurely mark an incomplete ROB entry done (detected
  by the commit-sanity checker);
* ``rob_done_clear`` — clear a completed entry's done flag (the entry wedges
  at the ROB head; detected by the forward-progress watchdog);
* ``rob_seq`` — flip a bit of an in-flight ROB entry's sequence number
  (detected by the occupancy/commit-sanity index consistency checks);
* ``predictor`` — flip a stored-counter bit outside its encodable range
  (detected by the predictor state sweep).

:func:`run_campaign` executes N seeded faults against a small workload and
reports detected vs. escaped faults, classifying escapes as *benign* (the
flip was architecturally dead: golden output and memory unchanged) or
*silent* (state corrupted but nothing noticed — a real checker gap).
"""

import random

from repro.common.errors import (
    GuardrailError,
    ReproError,
    RunTimeoutError,
    SimulationError,
)
from repro.guardrails.lockstep import LockstepMonitor

#: Instruction classes whose results are likely consumed later; functional
#: register-file faults aim at these so the corruption is live, not dead.
_VALUE_PRODUCERS = ("alu", "mul", "div", "load")

#: (target, weight) mix of one campaign; weighted toward the state whose
#: corruption must never escape.
DEFAULT_MIX = (
    ("regfile", 25),
    ("written_seq", 20),
    ("rob_done_set", 10),
    ("rob_done_clear", 15),
    ("rob_seq", 15),
    ("predictor", 15),
)

#: Compact campaign workload: loops, calls, arrays and data-dependent
#: branches in a few thousand dynamic instructions.
DEFAULT_CAMPAIGN_SOURCE = """
int buf[16];

int mix(int a, int b) { return (a * 17 + b) ^ (b >> 2); }

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int acc = 1;
    for (int i = 0; i < 16; i++) buf[i] = mix(i, acc);
    for (int round = 0; round < 6; round++) {
        for (int i = 0; i < 16; i++) {
            if (buf[i] & 1) acc += buf[i];
            else acc ^= buf[i] + round;
            buf[i] = mix(buf[i], acc);
        }
        __out(acc);
    }
    __out(fib(9));
    for (int i = 0; i < 16; i += 3) __out(buf[i]);
    return 0;
}
"""


class FaultSpec:
    """One scheduled bit flip."""

    __slots__ = ("target", "step", "cycle", "bit", "index")

    def __init__(self, target, step=None, cycle=None, bit=0, index=None):
        self.target = target
        self.step = step  # functional-run step for interpreter-state faults
        self.cycle = cycle  # timing-core cycle for structural faults
        self.bit = bit
        self.index = index  # target-specific selector (e.g. predictor row)

    def is_functional(self):
        return self.target in ("regfile", "written_seq")

    def as_dict(self):
        return {
            "target": self.target,
            "step": self.step,
            "cycle": self.cycle,
            "bit": self.bit,
            "index": self.index,
        }

    def __repr__(self):
        where = f"step={self.step}" if self.is_functional() else f"cycle={self.cycle}"
        return f"FaultSpec({self.target}, {where}, bit={self.bit})"


# ---------------------------------------------------------------- functional


def _live_register(interp):
    """RP slot of the most recent value-producing instruction, if any."""
    for entry in reversed(interp.trace[-24:]):
        if entry.op_class in _VALUE_PRODUCERS or entry.is_rmov:
            return entry.dest % interp.max_rp
    if interp.seq:
        return (interp.seq - 1) % interp.max_rp
    return None


def inject_functional(interp, spec):
    """Apply one interpreter-state fault; returns an event record or None."""
    reg = _live_register(interp)
    if reg is None:
        return None
    if spec.target == "regfile":
        interp.regs[reg] ^= 1 << (spec.bit % 32)
        return {"target": spec.target, "reg": reg, "bit": spec.bit % 32,
                "step": spec.step}
    if spec.target == "written_seq":
        previous = interp.written_seq[reg]
        interp.written_seq[reg] = (previous or 0) ^ (1 << (spec.bit % 10))
        return {"target": spec.target, "reg": reg, "was": previous,
                "step": spec.step}
    raise ValueError(f"not a functional fault target: {spec.target}")


def run_functional_with_fault(binary, spec, max_steps=2_000_000):
    """Trace-generating run with one scheduled interpreter-state flip.

    Returns ``(interp, status, event)`` where ``status`` is ``'halt'`` or
    ``'limit'`` and ``event`` records what was actually flipped.
    """
    interp = binary.interpreter(collect_trace=True)
    instrs = interp.program.instrs
    n_instrs = len(instrs)
    steps = 0
    event = None
    while not interp.halted and steps < max_steps:
        if steps == spec.step and event is None:
            event = inject_functional(interp, spec)
        if not 0 <= interp.pc_index < n_instrs:
            raise SimulationError(
                f"pc out of text segment after fault: index {interp.pc_index}"
            )
        interp.step(instrs[interp.pc_index])
        steps += 1
    return interp, ("halt" if interp.halted else "limit"), event


# ------------------------------------------------------------------- timing


class TimingFaultInjector:
    """Guard-suite component that corrupts core state at a scheduled cycle.

    Retries every cycle from ``spec.cycle`` until a suitable victim exists
    (e.g. an incomplete ROB entry for ``rob_done_set``), so short-lived
    structures don't let a scheduled fault silently evaporate.
    """

    def __init__(self, spec, seed=0):
        self.spec = spec
        self.rng = random.Random(seed)
        self.events = []
        self.done = False

    def begin_run(self, view):
        pass

    def on_cycle(self, view):
        if self.done or view.cycle < self.spec.cycle:
            return
        target = self.spec.target
        if target == "rob_done_set":
            # Flip the oldest incomplete entry, but only when its completion
            # is genuinely pending: if the real completion event lands before
            # the entry reaches the ROB head, the flip is architecturally
            # dead (the flag would have been set anyway).  Retry otherwise.
            for rob_entry in view.rob:
                if rob_entry.done:
                    continue
                ready = view.reg_ready.get(rob_entry.seq)
                if ready is None or ready > view.cycle + 2:
                    rob_entry.done = True
                    self._record(view, seq=rob_entry.seq)
                return
        elif target == "rob_done_clear":
            for rob_entry in view.rob:
                if rob_entry.done and rob_entry.entry.op_class != "nop":
                    rob_entry.done = False
                    self._record(view, seq=rob_entry.seq)
                    return
        elif target == "rob_seq":
            if view.rob:
                victim = view.rob[self.rng.randrange(len(view.rob))]
                victim.seq ^= 1 << (self.spec.bit % 8)
                self._record(view, seq=victim.seq)
        elif target == "predictor":
            self._inject_predictor(view)
        else:
            raise ValueError(f"unknown timing fault target: {target}")

    def _inject_predictor(self, view):
        predictor = view.core.predictor
        table = getattr(predictor, "table", None)
        if table is None:
            table = getattr(predictor, "bimodal", None)
        if not table:
            return
        index = (self.spec.index or 0) % len(table)
        # Counters are 2-bit; flipping bit 2..7 models a stuck/flipped cell in
        # the wider SRAM word and must land outside the encodable range.
        table[index] ^= 1 << (2 + self.spec.bit % 6)
        self._record(view, index=index)

    def _record(self, view, **detail):
        self.done = True
        event = dict(self.spec.as_dict())
        event["injected_cycle"] = view.cycle
        event.update(detail)
        self.events.append(event)

    def summary(self):
        return {"injected": self.done, "events": list(self.events)}


# ----------------------------------------------------------------- campaign


class CampaignReport:
    """Aggregated outcome of one fault-injection campaign."""

    def __init__(self, seed, records):
        self.seed = seed
        self.records = records
        self.total = len(records)
        self.detected = sum(1 for r in records if r["outcome"] == "detected")
        self.escaped_benign = sum(
            1 for r in records if r["outcome"] == "escaped_benign"
        )
        self.escaped_silent = sum(
            1 for r in records if r["outcome"] == "escaped_silent"
        )
        self.by_target = {}
        for record in records:
            bucket = self.by_target.setdefault(
                record["target"], {"detected": 0, "escaped_benign": 0,
                                   "escaped_silent": 0}
            )
            bucket[record["outcome"]] += 1

    @property
    def detection_rate(self):
        return self.detected / self.total if self.total else 1.0

    @property
    def harmful_detection_rate(self):
        """Detection rate over faults that actually corrupted state."""
        harmful = self.detected + self.escaped_silent
        return self.detected / harmful if harmful else 1.0

    def as_dict(self):
        return {
            "seed": self.seed,
            "total": self.total,
            "detected": self.detected,
            "escaped_benign": self.escaped_benign,
            "escaped_silent": self.escaped_silent,
            "detection_rate": round(self.detection_rate, 4),
            "harmful_detection_rate": round(self.harmful_detection_rate, 4),
            "by_target": self.by_target,
        }

    def text(self):
        lines = [
            f"fault-injection campaign: seed={self.seed} faults={self.total}",
            f"  detected        {self.detected:4d}  "
            f"({self.detection_rate:.1%})",
            f"  escaped benign  {self.escaped_benign:4d}",
            f"  escaped SILENT  {self.escaped_silent:4d}",
        ]
        for target, bucket in sorted(self.by_target.items()):
            lines.append(
                f"    {target:15s} detected={bucket['detected']} "
                f"benign={bucket['escaped_benign']} "
                f"silent={bucket['escaped_silent']}"
            )
        return "\n".join(lines)


def _weighted_choice(rng, mix):
    total = sum(weight for _, weight in mix)
    roll = rng.randrange(total)
    acc = 0
    for name, weight in mix:
        acc += weight
        if roll < acc:
            return name
    return mix[-1][0]


def _campaign_config(config):
    from repro.core.configs import straight_2way

    if config is None:
        config = straight_2way(name="STRAIGHT-2way-guarded")
    return config.copy(
        guardrails=True,
        watchdog_cycles=2_000,
        deep_check_interval=16,
        predictor_check_interval=1_024,
    )


def _build_suite(config, binary, spec=None, seed=0, window=32):
    from repro.guardrails import build_guardrails

    injector = None
    if spec is not None and not spec.is_functional():
        injector = TimingFaultInjector(spec, seed=seed)
    return build_guardrails(config, binary=binary, injector=injector,
                            window=window)


def _run_one(binary, config, spec, golden, max_steps, seed):
    """Run one faulted simulation; returns (outcome, detail)."""
    from repro.uarch.core import OoOCore

    golden_output, golden_memory = golden
    try:
        if spec.is_functional():
            interp, status, event = run_functional_with_fault(
                binary, spec, max_steps=max_steps
            )
            if status == "limit":
                return "detected", {"how": "step-budget",
                                    "event": event}
            suite = _build_suite(config, binary, spec)
        else:
            interp = binary.interpreter(collect_trace=True)
            status = interp.run(max_steps).status
            if status == "limit":
                raise SimulationError("clean functional run hit step budget")
            suite = _build_suite(config, binary, spec, seed=seed)
        core = OoOCore(config, guardrails=suite)
        core.run(interp.trace)
        suite.finish(interp.output)
    except RunTimeoutError:
        # A campaign-level wall-clock budget is not a fault detection;
        # let it abort the whole campaign.
        raise
    except GuardrailError as exc:
        return "detected", {"how": type(exc).__name__,
                            "checker": exc.context.get("checker"),
                            "error": str(exc)[:160]}
    except ReproError as exc:
        return "detected", {"how": type(exc).__name__,
                            "error": str(exc)[:160]}
    except (KeyError, IndexError, ValueError) as exc:
        # A raw crash is still a loud failure, but it names a checker gap.
        return "detected", {"how": f"crash:{type(exc).__name__}",
                            "error": str(exc)[:160]}
    if interp.output != golden_output or interp.memory != golden_memory:
        return "escaped_silent", {"how": "state diverged, nothing raised"}
    return "escaped_benign", {"how": "fault was architecturally dead"}


def run_campaign(source=None, binary=None, config=None, n_faults=100,
                 seed=20260805, max_steps=2_000_000, mix=DEFAULT_MIX):
    """Seeded fault-injection campaign; returns a :class:`CampaignReport`."""
    if binary is None:
        from repro.core.api import build

        binary = build(source or DEFAULT_CAMPAIGN_SOURCE).straight_re
    config = _campaign_config(config)

    # Static pre-pass: the campaign's golden binary must verify cleanly
    # before any dynamic fault is injected (see repro.analysis).
    from repro.guardrails import static_precheck

    static_precheck(binary)

    # Golden references: functional state and the clean guarded timing run
    # (which also proves checkers are quiet on an uncorrupted machine).
    from repro.uarch.core import OoOCore

    golden_interp = binary.interpreter(collect_trace=True)
    golden_status = golden_interp.run(max_steps).status
    if golden_status != "halt":
        raise SimulationError("campaign workload did not halt cleanly")
    golden = (list(golden_interp.output), dict(golden_interp.memory))
    n_steps = len(golden_interp.trace)
    clean_suite = _build_suite(config, binary)
    clean_core = OoOCore(config, guardrails=clean_suite)
    clean_stats = clean_core.run(golden_interp.trace)
    clean_suite.finish(golden_interp.output)
    n_cycles = clean_stats.cycles

    rng = random.Random(seed)
    records = []
    for i in range(n_faults):
        target = _weighted_choice(rng, mix)
        spec = FaultSpec(
            target,
            step=rng.randrange(n_steps // 10, (n_steps * 9) // 10),
            cycle=rng.randrange(max(1, n_cycles // 10),
                                max(2, (n_cycles * 9) // 10)),
            bit=rng.randrange(32),
            index=rng.randrange(1 << 16),
        )
        outcome, detail = _run_one(binary, config, spec, golden, max_steps,
                                   seed=seed + i)
        records.append({
            "fault": i,
            "target": target,
            "spec": spec.as_dict(),
            "outcome": outcome,
            "detail": detail,
        })
    return CampaignReport(seed, records)
