"""Per-module event-energy power model with V-f scaling.

Dynamic power of a module = (energy/event x events / cycles) x f x V(f)^2,
normalized so the baseline frequency has V = 1.  Raising the synthesis
frequency target raises the supply/effort voltage the synthesizer needs,
which is why the paper's Fig. 17 shows *super-linear* growth of every
module's power with the 1.0x / 2.5x / 4.0x clock targets.

Energy constants are in arbitrary units chosen for relative magnitudes:

* one RMT read/write port access costs several times a simple adder —
  the RMT is "one of the most multiported tables in the processor" (§II-A);
* STRAIGHT's operand determination is one small subtractor per operand
  (Fig. 3), orders of magnitude below a multiported RAM access;
* register file and execution energies are identical between the two
  architectures (the back ends are the same hardware).
"""


class EnergyParams:
    """Energy-per-event constants (arbitrary units) and leakage areas."""

    def __init__(
        self,
        rmt_read=6.0,
        rmt_write=8.0,
        freelist_op=2.0,
        opdet_op=0.25,
        regfile_read=3.0,
        regfile_write=4.0,
        iq_wakeup=2.0,
        iq_insert=1.5,
        rob_write=1.5,
        rob_walk_read=2.0,
        alu_op=5.0,
        mul_op=15.0,
        div_op=25.0,
        agu_op=4.0,
        leak_rename=0.8,
        leak_regfile=1.6,
        leak_other=6.0,
        voltage_slope=0.18,
    ):
        self.rmt_read = rmt_read
        self.rmt_write = rmt_write
        self.freelist_op = freelist_op
        self.opdet_op = opdet_op
        self.regfile_read = regfile_read
        self.regfile_write = regfile_write
        self.iq_wakeup = iq_wakeup
        self.iq_insert = iq_insert
        self.rob_write = rob_write
        self.rob_walk_read = rob_walk_read
        self.alu_op = alu_op
        self.mul_op = mul_op
        self.div_op = div_op
        self.agu_op = agu_op
        self.leak_rename = leak_rename
        self.leak_regfile = leak_regfile
        self.leak_other = leak_other
        #: dV per unit of relative frequency above baseline.
        self.voltage_slope = voltage_slope

    def voltage(self, rel_frequency):
        """Relative supply voltage needed for a synthesis target."""
        return 1.0 + self.voltage_slope * (rel_frequency - 1.0)


class ModulePower:
    """Dynamic + leakage power of one module at one frequency."""

    def __init__(self, name, dynamic, leakage):
        self.name = name
        self.dynamic = dynamic
        self.leakage = leakage

    @property
    def total(self):
        return self.dynamic + self.leakage

    def __repr__(self):
        return f"{self.name}: {self.total:.3f} (dyn {self.dynamic:.3f})"


class PowerReport:
    """Per-module power for one core running one workload at one frequency."""

    MODULES = ("rename", "regfile", "other")

    def __init__(self, core_name, rel_frequency, modules):
        self.core_name = core_name
        self.rel_frequency = rel_frequency
        self.modules = modules  # name -> ModulePower

    def total(self):
        return sum(m.total for m in self.modules.values())

    def __repr__(self):
        parts = ", ".join(f"{m!r}" for m in self.modules.values())
        return f"PowerReport({self.core_name} @{self.rel_frequency}x: {parts})"


def _events_per_cycle(stats, field):
    return getattr(stats, field) / stats.cycles if stats.cycles else 0.0


def analyze_power(stats, is_straight, rel_frequency=1.0, params=None, core_name=""):
    """Build a :class:`PowerReport` from timing-run statistics.

    ``stats`` is a :class:`repro.uarch.core.SimStats`; the event counters it
    accumulated during the run drive each module's activity factor.
    """
    params = params or EnergyParams()
    volts = params.voltage(rel_frequency)
    scale = rel_frequency * volts * volts  # P ~ a*C*V^2*f

    if is_straight:
        # Operand determination: one subtract per source operand; no RMT,
        # no free list, no walk.
        rename_energy = params.opdet_op * stats.opdet_ops
        rename_leak = params.leak_rename * 0.05  # a few adders vs. a RAM
    else:
        rename_energy = (
            params.rmt_read * stats.rename_src_reads
            + params.rmt_write * stats.rename_writes
            + params.freelist_op * stats.rename_writes
            + params.rob_walk_read * stats.rob_walk_cycles
        )
        rename_leak = params.leak_rename

    regfile_energy = (
        params.regfile_read * stats.regfile_reads
        + params.regfile_write * stats.regfile_writes
    )
    other_energy = (
        params.iq_wakeup * stats.iq_wakeups
        + params.iq_insert * stats.instructions
        + params.rob_write * stats.rob_writes
        + params.alu_op * stats.alu_ops
        + params.mul_op * stats.mul_ops
        + params.div_op * stats.div_ops
        + params.agu_op * (stats.loads + stats.stores)
    )

    cycles = max(stats.cycles, 1)
    modules = {
        "rename": ModulePower(
            "rename", rename_energy / cycles * scale, rename_leak * volts * volts
        ),
        "regfile": ModulePower(
            "regfile",
            regfile_energy / cycles * scale,
            params.leak_regfile * volts * volts,
        ),
        "other": ModulePower(
            "other", other_energy / cycles * scale, params.leak_other * volts * volts
        ),
    }
    return PowerReport(core_name, rel_frequency, modules)
