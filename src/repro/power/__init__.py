"""Event-based RTL power model (the reproduction's Cadence Joules substitute).

The paper's §V-B/VI-C analysis synthesizes 2-way RTL for several clock
targets and reports per-module power: rename logic, register file, "other
modules".  This package reproduces the *methodology shape*: per-module
energy-per-event constants x event counts from the timing simulation,
voltage-frequency scaling for synthesis targets, and leakage proportional
to module area.
"""

from repro.power.energy_model import (
    EnergyParams,
    ModulePower,
    PowerReport,
    analyze_power,
)

__all__ = ["EnergyParams", "ModulePower", "PowerReport", "analyze_power"]
