"""The job layer: single-flight dedup, event history, subscriber streams.

A *job* is one unit of server work, identified by the canonical key of
its request (:func:`repro.serve.protocol.canonical_request`).  The store
enforces the single-flight contract:

* a request whose key matches a *queued or running* job attaches to it —
  one execution, any number of waiters/subscribers (``served ==
  "inflight"``);
* a request whose key matches a *successfully finished* retained job is
  answered from the store without any execution (``served == "store"``);
* everything else creates a fresh job (``served == "fresh"``).  A fresh
  job's payload may still come from the persistent
  :class:`~repro.harness.cache.ResultCache` inside the sweep engine, in
  which case the executor stamps ``cache_status = "cache"``.

Failed jobs are never dedup targets — a retry of the same request gets a
fresh execution.

Every job carries an append-only, index-stamped event history.  SSE
subscribers replay the history from index 0 and then follow live
appends, so *every* subscriber — however late it attaches — observes the
same totally ordered stream; the terminal ``done``/``failed`` event
closes it.  All mutation happens on the owning event loop (the executor
marshals worker-thread callbacks via ``call_soon_threadsafe``), which is
what makes the lock-free history safe.
"""

import asyncio
import itertools
import time
from collections import OrderedDict

from repro.serve.protocol import canonical_request

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL = (DONE, FAILED)


class Job:
    """One deduplicated unit of work plus its ordered event history."""

    def __init__(self, job_id, kind, key, request):
        self.id = job_id
        self.kind = kind
        self.key = key
        self.request = request
        self.state = QUEUED
        self.served = "fresh"
        #: "cache" when the executor observed the payload being served by
        #: the persistent result cache rather than computed.
        self.cache_status = None
        self.created_s = time.monotonic()
        self.started_s = None
        self.finished_s = None
        self.result = None
        self.error = None
        self.attempts = 0
        self.events = []
        self._changed = asyncio.Event()
        self._done = asyncio.Event()
        self.publish("queued", {"kind": kind, "key": key[:16]})

    # -- event history -------------------------------------------------------

    def publish(self, event, data):
        """Append one event and wake every subscriber (loop thread only)."""
        self.events.append({
            "index": len(self.events),
            "event": event,
            "data": data,
        })
        waiter = self._changed
        self._changed = asyncio.Event()
        waiter.set()

    async def stream(self):
        """Async-iterate the full ordered event history, then live events.

        Terminates after yielding the terminal event.  Safe for any number
        of concurrent subscribers; a cancelled subscriber (client
        disconnect) leaves no state behind — the job and every other
        subscriber are unaffected.
        """
        index = 0
        while True:
            waiter = self._changed
            while index < len(self.events):
                record = self.events[index]
                index += 1
                yield record
            if self.state in TERMINAL:
                return
            await waiter.wait()

    # -- lifecycle -----------------------------------------------------------

    def mark_running(self, detail=None):
        self.state = RUNNING
        self.started_s = time.monotonic()
        self.attempts += 1
        self.publish("started", {"attempt": self.attempts,
                                 **(detail or {})})

    def finish(self, result, cache_status=None):
        self.result = result
        if cache_status:
            self.cache_status = cache_status
        self.state = DONE
        self.finished_s = time.monotonic()
        self.publish("done", {"wall_ms": self.wall_ms(),
                              "cache": self.cache_status})
        self._done.set()

    def fail(self, error_type, message, detail=None):
        self.error = {"type": error_type, "message": message}
        if detail:
            self.error.update(detail)
        self.state = FAILED
        self.finished_s = time.monotonic()
        self.publish("failed", dict(self.error))
        self._done.set()

    async def wait(self, timeout=None):
        """True once terminal; False if ``timeout`` elapsed first."""
        if self.state in TERMINAL:
            return True
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- views ---------------------------------------------------------------

    def wall_ms(self):
        if self.finished_s is None or self.started_s is None:
            return None
        return round((self.finished_s - self.started_s) * 1000.0, 3)

    def view(self, include_result=True):
        view = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "served": self.served,
            "cache": self.cache_status,
            "attempts": self.attempts,
            "events": len(self.events),
            "wall_ms": self.wall_ms(),
            "request": self.request,
            "links": {
                "self": f"/v1/jobs/{self.id}",
                "events": f"/v1/jobs/{self.id}/events",
                "result": f"/v1/jobs/{self.id}/result",
            },
        }
        if self.error is not None:
            view["error"] = self.error
        if include_result and self.state == DONE:
            view["result"] = self.result
        return view

    def __repr__(self):
        return f"Job({self.id}, {self.kind}, {self.state})"


class JobStore:
    """Bounded job registry enforcing the single-flight contract."""

    def __init__(self, max_jobs=4096):
        self.max_jobs = max_jobs
        self.jobs = OrderedDict()     # id -> Job, creation order
        self.by_key = {}              # key -> latest Job for that identity
        self._ids = itertools.count(1)
        self.counters = {
            "submitted": 0,
            "fresh": 0,
            "dedup_inflight": 0,
            "dedup_store": 0,
        }

    def submit(self, kind, payload):
        """``(job, created)`` for one request; dedups by canonical key.

        ``created`` is True only for a fresh job that the caller must hand
        to the executor; dedup'd submissions return the existing job with
        ``job.served`` reflecting how this *submission* was satisfied via
        the returned ``served`` tag on the view the server builds.
        """
        request, key = canonical_request(kind, payload)
        self.counters["submitted"] += 1
        existing = self.by_key.get(key)
        if existing is not None:
            if existing.state in (QUEUED, RUNNING):
                self.counters["dedup_inflight"] += 1
                return existing, False, "inflight"
            if existing.state == DONE:
                self.counters["dedup_store"] += 1
                return existing, False, "store"
            # FAILED: fall through — failures are not dedup targets.
        self.counters["fresh"] += 1
        job = Job(f"j{next(self._ids):06d}-{key[:12]}", kind, key, request)
        self.jobs[job.id] = job
        self.by_key[key] = job
        self._evict()
        return job, True, "fresh"

    def get(self, job_id):
        return self.jobs.get(job_id)

    def _evict(self):
        """Drop the oldest *terminal* jobs beyond the store bound."""
        if len(self.jobs) <= self.max_jobs:
            return
        for job_id in list(self.jobs):
            if len(self.jobs) <= self.max_jobs:
                break
            job = self.jobs[job_id]
            if job.state in TERMINAL:
                del self.jobs[job_id]
                if self.by_key.get(job.key) is job:
                    del self.by_key[job.key]

    def stats(self):
        by_state = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": len(self.jobs),
            "by_state": by_state,
            **self.counters,
        }
