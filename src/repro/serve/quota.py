"""Per-client token-bucket quotas for the serve tier.

Every job-creating request costs one token from its client's bucket
(client identity: the ``X-Client-Id`` header, falling back to the peer
address).  Buckets refill continuously at ``rate`` tokens/second up to a
``burst`` cap, so a client may spend a saved-up burst instantly but
sustained traffic is bounded by the refill rate — the classic shape for
an open compute endpoint backed by a process pool.

The clock is injectable (tests drive it deterministically) and the
registry is bounded: least-recently-seen idle buckets are evicted once
``max_clients`` distinct identities have appeared, so an address-spraying
client cannot grow server memory.
"""

import threading
import time
from collections import OrderedDict


class TokenBucket:
    """One client's budget: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "updated", "clock",
                 "rejections", "granted")

    def __init__(self, rate, burst, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()
        self.rejections = 0
        self.granted = 0

    def try_take(self, tokens=1.0):
        """Spend ``tokens`` if available; False (and counted) otherwise."""
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            self.granted += 1
            return True
        self.rejections += 1
        return False

    def retry_after_s(self, tokens=1.0):
        """Seconds until ``tokens`` will be available (``Retry-After``)."""
        deficit = tokens - self.tokens
        return max(0.0, deficit / self.rate)


class QuotaRegistry:
    """Thread-safe per-client bucket map with LRU eviction.

    ``rate=None`` disables quotas entirely (every take succeeds) — the
    in-process bench path uses that to measure pure serving overhead.
    """

    def __init__(self, rate=50.0, burst=200.0, max_clients=4096,
                 clock=time.monotonic):
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self.clock = clock
        self._buckets = OrderedDict()
        self._lock = threading.Lock()
        self.rejections = 0

    @property
    def enabled(self):
        return self.rate is not None

    def bucket(self, client):
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket

    def try_take(self, client, tokens=1.0):
        """``(granted, retry_after_s)`` for one request from ``client``."""
        if not self.enabled:
            return True, 0.0
        bucket = self.bucket(client)
        with self._lock:
            if bucket.try_take(tokens):
                return True, 0.0
            self.rejections += 1
            return False, bucket.retry_after_s(tokens)

    def stats(self):
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "rejections": self.rejections,
            }
