"""``repro.serve`` — simulation-as-a-service over the sweep engine.

The serving tier in front of the repo's compute tier: a stdlib-only
asyncio HTTP/JSON server (``straight serve``) that accepts compile /
simulate / sweep / compiler-explorer jobs, dedups identical requests both
in flight (single-flight futures) and against the persistent
content-addressed :mod:`repro.harness.cache`, batches compatible queued
tasks onto the :func:`repro.harness.sweep.run_sweep` process pool,
enforces per-client token-bucket quotas and per-job deadlines, and
streams job lifecycle + observability events over Server-Sent Events.

Layers (one module each):

* :mod:`repro.serve.protocol` — request canonicalization (the dedup
  identity) and SSE framing;
* :mod:`repro.serve.jobs` — the job store: single-flight dedup, ordered
  per-job event history, subscriber streaming;
* :mod:`repro.serve.executor` — execution: batching onto the sweep pool,
  thread-pool compile/explore jobs under the :func:`deadline` thread-timer
  fallback, transient-failure retry via
  :class:`repro.harness.supervisor.RetryPolicy`;
* :mod:`repro.serve.server` — the asyncio HTTP front end and routing;
* :mod:`repro.serve.loadgen` — the load-test harness behind
  ``BENCH_serve.json`` (p50/p99, throughput, dedup/cache hit-rates,
  quota rejections).
"""

from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    BadRequest,
    JOB_KINDS,
    canonical_request,
    parse_sse,
    sse_event,
)
from repro.serve.quota import QuotaRegistry, TokenBucket
from repro.serve.server import ServeApp, ServerHandle, run_server

__all__ = [
    "BadRequest",
    "JOB_KINDS",
    "Job",
    "JobStore",
    "QuotaRegistry",
    "ServeApp",
    "ServerHandle",
    "TokenBucket",
    "canonical_request",
    "parse_sse",
    "run_server",
    "sse_event",
]
