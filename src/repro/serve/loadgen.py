"""Load-test harness for the serve tier: ``python -m repro.serve.loadgen``.

Drives thousands of concurrent requests against a running server with a
minimal asyncio HTTP/1.1 client (keep-alive over a bounded connection
pool — stdlib only, same constraint as the server) and writes the
``BENCH_serve.json`` scorecard the CI ``serve-smoke`` job and ``straight
bench --serve`` gate on.

Four phases:

* **unique** — N distinct simulate requests (per-request source text, so
  no two share a dedup key): the cold path, exercising batching onto the
  process pool.
* **repeated** — M requests spread over a handful of distinct keys,
  launched concurrently: the dedup path.  The scorecard's
  ``saved_rate`` counts responses served without a fresh execution —
  in-flight single-flight attaches, job-store hits, and persistent
  result-cache hits — and the CI gate requires >= 90%.
* **explore** — one compiler-explorer request per registered ISA (asm +
  diagnostics + Kanata trace), the acceptance-criteria endpoint.
* **quota** — a burst from one dedicated client id sized to overrun its
  token bucket: measured 429s (which are 4xxs; the zero-5xx gate is
  separate).

Latency is measured per request (monotonic, send-to-parse) and
summarized as p50/p90/p99/mean plus overall request throughput.
"""

import argparse
import asyncio
import json
import sys
import time

from repro.serve.protocol import parse_sse

#: A distinct mini-C program per index: same shape, different constant, so
#: every unique-phase request compiles (and caches) independently.
_SOURCE_TEMPLATE = """
int main() {{
    int acc = 0;
    int i;
    for (i = 0; i < {iters}; ++i) {{
        acc = acc + i * {salt};
    }}
    __out(acc);
    return 0;
}}
"""


def phase_source(index):
    return _SOURCE_TEMPLATE.format(iters=8 + (index % 8), salt=index + 1)


# ---------------------------------------------------------------------------
# Minimal asyncio HTTP client (keep-alive, JSON, SSE)
# ---------------------------------------------------------------------------


class HttpClient:
    """Keep-alive connection pool against one host:port."""

    def __init__(self, host, port, pool_size=64):
        self.host = host
        self.port = port
        self._idle = []
        self._gate = asyncio.Semaphore(pool_size)

    async def _connect(self):
        return await asyncio.open_connection(self.host, self.port)

    async def request(self, method, path, body=None, headers=None):
        """``(status, headers, body_bytes)``; retries once on a stale
        keep-alive connection."""
        async with self._gate:
            for attempt in (0, 1):
                fresh = not self._idle
                reader, writer = (self._idle.pop() if self._idle
                                  else await self._connect())
                try:
                    return await self._roundtrip(
                        reader, writer, method, path, body, headers)
                except (ConnectionError, asyncio.IncompleteReadError):
                    writer.close()
                    if fresh or attempt:
                        raise
                    # Stale pooled connection: retry once on a fresh one.

    async def _roundtrip(self, reader, writer, method, path, body, headers):
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(payload)}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()
        blob = await reader.readuntil(b"\r\n\r\n")
        head = blob.decode("latin-1").split("\r\n")
        status = int(head[0].split(" ", 2)[1])
        response_headers = {}
        for line in head[1:]:
            if line:
                name, _, value = line.partition(":")
                response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0") or "0")
        data = await reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            writer.close()
        else:
            self._idle.append((reader, writer))
        return status, response_headers, data

    async def get_json(self, path, headers=None):
        status, _headers, data = await self.request("GET", path,
                                                    headers=headers)
        return status, json.loads(data) if data else {}

    async def post_json(self, path, body, headers=None):
        status, _headers, data = await self.request("POST", path, body=body,
                                                    headers=headers)
        return status, json.loads(data) if data else {}

    async def stream_events(self, path):
        """All SSE events of one stream (the server closes at terminal)."""
        reader, writer = await self._connect()
        writer.write((f"GET {path} HTTP/1.1\r\n"
                      f"Host: {self.host}:{self.port}\r\n\r\n")
                     .encode("latin-1"))
        await writer.drain()
        blob = await reader.read(-1)
        writer.close()
        header, _, body = blob.partition(b"\r\n\r\n")
        status = int(header.decode("latin-1").split(" ", 2)[1])
        return status, parse_sse(body.decode("utf-8"))

    def close(self):
        for _reader, writer in self._idle:
            writer.close()
        self._idle.clear()


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------


class Recorder:
    """Per-phase latency samples and response accounting."""

    def __init__(self):
        self.latencies_ms = []
        self.statuses = {}
        self.saved = 0
        self.failures = []

    def note(self, status, view, elapsed_s):
        self.latencies_ms.append(elapsed_s * 1000.0)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status in (200, 202):
            served = view.get("served")
            if served in ("inflight", "store") or view.get("cache") == "cache":
                self.saved += 1
            if view.get("state") == "failed":
                self.failures.append(view.get("error"))

    def summary(self):
        samples = sorted(self.latencies_ms)
        total = len(samples)

        def pct(p):
            if not samples:
                return None
            return round(samples[min(total - 1, int(p * total))], 3)

        return {
            "requests": total,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "saved": self.saved,
            "saved_rate": round(self.saved / total, 4) if total else None,
            "job_failures": len(self.failures),
            "latency_ms": {
                "p50": pct(0.50),
                "p90": pct(0.90),
                "p99": pct(0.99),
                "mean": (round(sum(samples) / total, 3) if total else None),
                "max": (round(samples[-1], 3) if samples else None),
            },
        }


async def _post_recorded(client, recorder, path, body, headers=None):
    started = time.monotonic()
    status, view = await client.post_json(path, body, headers=headers)
    recorder.note(status, view, time.monotonic() - started)
    return status, view


async def phase_unique(client, count, wait_s):
    """``count`` distinct simulate jobs, all launched concurrently."""
    recorder = Recorder()
    await asyncio.gather(*[
        _post_recorded(client, recorder, f"/v1/simulate?wait={wait_s}",
                       {"source": phase_source(i)},
                       headers={"X-Client-Id": f"unique-{i % 8}"})
        for i in range(count)
    ])
    return recorder


async def phase_repeated(client, count, distinct, wait_s):
    """``count`` requests over ``distinct`` keys; dedup must absorb them.

    The distinct keys are seeded (and allowed to finish) first so the
    concurrent storm hits the job store / result cache, not ``fresh``.
    """
    recorder = Recorder()
    seeds = [{"source": phase_source(10_000 + i)} for i in range(distinct)]
    for body in seeds:
        await _post_recorded(client, recorder, "/v1/simulate?wait=30", body,
                             headers={"X-Client-Id": "repeat-seed"})
    await asyncio.gather(*[
        _post_recorded(client, recorder, f"/v1/simulate?wait={wait_s}",
                       seeds[i % distinct],
                       headers={"X-Client-Id": f"repeat-{i % 8}"})
        for i in range(count - distinct)
    ])
    return recorder


async def phase_explore(client, wait_s):
    """One explorer request per registered ISA, trace on."""
    recorder = Recorder()
    status, inventory = await client.get_json("/v1/isas")
    isa_names = sorted(inventory.get("isas", {})) if status == 200 else []
    views = {}
    for name in isa_names:
        _status, view = await _post_recorded(
            client, recorder, f"/v1/explore?wait={wait_s}",
            {"source": phase_source(777), "isas": [name], "trace": True},
            headers={"X-Client-Id": "explore"})
        views[name] = view
    checks = {}
    for name, view in views.items():
        entry = (view.get("result") or {}).get("isas", {}).get(name, {})
        variant = next(iter(entry.get("variants", {}).values()), {})
        checks[name] = {
            "asm": bool(variant.get("asm")),
            "diagnostics": variant.get("diagnostics") is not None,
            "output": variant.get("output") is not None,
            "kanata": bool(entry.get("timing", {}).get("kanata")),
        }
    return recorder, checks


async def phase_quota(client, burst):
    """Overrun one client's token bucket; count the measured 429s."""
    recorder = Recorder()
    await asyncio.gather(*[
        _post_recorded(client, recorder, "/v1/simulate",
                       {"source": phase_source(99_000)},
                       headers={"X-Client-Id": "quota-hog"})
        for _ in range(burst)
    ])
    return recorder


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------

PROFILES = {
    # unique, repeated, distinct, wait_s
    "quick": {"unique": 120, "repeated": 240, "distinct": 4, "wait_s": 60},
    "full": {"unique": 600, "repeated": 500, "distinct": 4, "wait_s": 120},
}


async def run_loadgen(host, port, profile="quick", pool_size=64,
                      quota_burst=0):
    """Drive every phase; returns the scorecard dict."""
    params = PROFILES[profile]
    client = HttpClient(host, port, pool_size=pool_size)
    started = time.monotonic()
    try:
        status, health = await client.get_json("/v1/healthz")
        if status != 200 or not health.get("ok"):
            raise RuntimeError(f"server not healthy: {status} {health}")
        unique = await phase_unique(client, params["unique"],
                                    params["wait_s"])
        repeated = await phase_repeated(client, params["repeated"],
                                        params["distinct"], params["wait_s"])
        explore, explore_checks = await phase_explore(client,
                                                      params["wait_s"])
        quota = None
        if quota_burst:
            quota = await phase_quota(client, quota_burst)
        _status, stats = await client.get_json("/v1/stats")
    finally:
        client.close()
    wall_s = time.monotonic() - started

    phases = {
        "unique": unique.summary(),
        "repeated": repeated.summary(),
        "explore": explore.summary(),
    }
    if quota is not None:
        phases["quota"] = quota.summary()
    all_statuses = {}
    requests_total = 0
    for summary in phases.values():
        requests_total += summary["requests"]
        for code, count in summary["statuses"].items():
            all_statuses[code] = all_statuses.get(code, 0) + count
    errors_5xx = sum(count for code, count in all_statuses.items()
                     if code.startswith("5"))
    all_latencies = sorted(
        unique.latencies_ms + repeated.latencies_ms + explore.latencies_ms
        + (quota.latencies_ms if quota else []))

    def pct(p):
        if not all_latencies:
            return None
        return round(all_latencies[min(len(all_latencies) - 1,
                                       int(p * len(all_latencies)))], 3)

    return {
        "bench": "serve",
        "profile": profile,
        "requests_total": requests_total,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(requests_total / wall_s, 2) if wall_s else None,
        "statuses": all_statuses,
        "errors_5xx": errors_5xx,
        "latency_ms": {"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99)},
        "dedup": {
            "repeated_saved_rate": phases["repeated"]["saved_rate"],
            "quota_rejections": (phases.get("quota", {})
                                 .get("statuses", {}).get("429", 0)),
        },
        "explore_checks": explore_checks,
        "phases": phases,
        "server_stats": stats,
    }


def gate(scorecard, min_dedup_rate=None, max_p99_ms=None):
    """Human-readable gate failures (empty list == pass)."""
    failures = []
    if scorecard["errors_5xx"]:
        failures.append(f"{scorecard['errors_5xx']} 5xx responses "
                        "(gate: zero)")
    rate = scorecard["dedup"]["repeated_saved_rate"]
    if min_dedup_rate is not None and (rate is None or rate < min_dedup_rate):
        failures.append(f"repeated-phase saved rate {rate} < "
                        f"{min_dedup_rate}")
    p99 = scorecard["latency_ms"]["p99"]
    if max_p99_ms is not None and (p99 is None or p99 > max_p99_ms):
        failures.append(f"p99 latency {p99}ms > {max_p99_ms}ms")
    for isa, checks in scorecard["explore_checks"].items():
        missing = [field for field, present in checks.items() if not present]
        if missing:
            failures.append(f"explore[{isa}] missing: {', '.join(missing)}")
    return failures


def bench_serve(profile="quick", pool_jobs=None, cache_dir=None,
                quota_burst=400):
    """In-process serve bench: spin a server, run the loadgen, score it.

    The path behind ``straight bench --serve``; ``cache_dir`` isolates the
    persistent caches so the bench's cold phase is genuinely cold.  The
    quota is generous enough that only the dedicated ``quota-hog`` client
    (which fires ``quota_burst`` requests at a 200-token bucket) sees
    rejections.
    """
    from repro.harness import cache as cache_mod
    from repro.serve.server import ServerHandle

    if cache_dir is not None:
        cache_mod.configure(cache_dir, enabled=True)
    with ServerHandle(port=0, pool_jobs=pool_jobs,
                      quota_rate=200.0, quota_burst=200.0) as handle:
        scorecard = asyncio.run(run_loadgen(
            handle.host, handle.port, profile=profile,
            quota_burst=quota_burst))
    return scorecard


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="load-test a running repro.serve server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8712)
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="quick")
    parser.add_argument("--pool-size", type=int, default=64,
                        help="client connection-pool size")
    parser.add_argument("--quota-burst", type=int, default=0,
                        help="also fire this many requests from one client "
                             "to measure quota rejections")
    parser.add_argument("--json", default=None,
                        help="write the scorecard to this path")
    parser.add_argument("--min-dedup-rate", type=float, default=None,
                        help="gate: repeated-phase saved rate floor")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="gate: overall p99 latency ceiling")
    args = parser.parse_args(argv)

    scorecard = asyncio.run(run_loadgen(
        args.host, args.port, profile=args.profile,
        pool_size=args.pool_size, quota_burst=args.quota_burst))
    text = json.dumps(scorecard, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    failures = gate(scorecard, min_dedup_rate=args.min_dedup_rate,
                    max_p99_ms=args.max_p99_ms)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
