"""The serve execution layer: batching jobs onto the sweep engine.

Fresh jobs arrive from the HTTP front end and are executed one of two
ways:

* **Pool-batched** — ``simulate`` jobs queue up and a dispatcher
  coroutine collects everything that arrives within a short batch window
  into one :func:`repro.harness.sweep.run_sweep` call, so a burst of
  distinct requests shares a single process-pool spin-up (and the cache
  pre-pass serves warm tasks without touching the pool at all).  Small
  batches skip the pool and run inline inside a worker thread — where
  per-task deadlines are enforced by the :func:`repro.harness.runner
  .deadline` thread-timer fallback, since SIGALRM is main-thread-only.
  ``sweep`` jobs are grids and already batches by construction; each runs
  as its own ``run_sweep`` invocation.
* **Thread jobs** — ``compile`` and ``explore`` are latency-sensitive and
  pool-incompatible (they return assembly text and Kanata traces, not
  ``SimStats`` payloads), so they run directly on a thread pool under the
  same deadline fallback.

Failures reuse the supervisor's taxonomy: a structured error payload is
classified :data:`~repro.harness.supervisor.TRANSIENT` or
:data:`~repro.harness.supervisor.DETERMINISTIC` by
:func:`~repro.harness.supervisor.classify_failure`; transient failures
retry with the :class:`~repro.harness.supervisor.RetryPolicy` backoff
curve (awaited on the event loop, never blocking it) until the per-task
attempt cap, the sweep-wide retry budget, or the job's own wall-clock
budget runs out.  Deterministic failures fail the job immediately.

Threading contract: all ``Job`` mutation happens on the event loop; the
worker-thread ``run_sweep`` progress callback marshals through
``call_soon_threadsafe``.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.harness.runner import deadline
from repro.harness.supervisor import (
    RetryPolicy,
    TRANSIENT,
    classify_failure,
)
from repro.harness.sweep import SweepTask, compile_binary_cached, run_sweep
from repro.serve.protocol import BadRequest

#: Queue sentinel that stops the dispatcher.
_SHUTDOWN = object()


def _error_record(exc):
    return {"type": type(exc).__name__, "message": str(exc)}


class ServeExecutor:
    """Runs fresh jobs for a :class:`~repro.serve.jobs.JobStore`."""

    def __init__(self, pool_jobs=None, batch_window_s=0.02, batch_cap=256,
                 inline_threshold=2, thread_workers=4, retry_policy=None,
                 max_concurrent_batches=2):
        self.pool_jobs = pool_jobs
        self.batch_window_s = batch_window_s
        self.batch_cap = batch_cap
        #: Batches at or below this size skip the process pool and run
        #: inline in a worker thread (pool spin-up costs more than the
        #: work; the deadline thread-timer fallback covers enforcement).
        self.inline_threshold = inline_threshold
        self.retry = retry_policy or RetryPolicy()
        self._retry_budget = self.retry.retry_budget
        self._loop = None
        self._queue = None
        self._dispatcher = None
        self._threads = ThreadPoolExecutor(
            max_workers=thread_workers, thread_name_prefix="serve-job")
        self._batch_gate = None
        self._max_concurrent_batches = max_concurrent_batches
        self._tasks = set()
        self.counters = {
            "batches": 0,
            "inline_batches": 0,
            "batched_jobs": 0,
            "thread_jobs": 0,
            "retries": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self, loop=None):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._batch_gate = asyncio.Semaphore(self._max_concurrent_batches)
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        return self

    async def stop(self):
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._threads.shutdown(wait=False)

    def submit(self, job):
        """Hand one *fresh* job to the execution layer (loop thread only)."""
        if job.kind in ("simulate", "sweep"):
            self._queue.put_nowait(job)
        elif job.kind == "compile":
            self._spawn(self._run_thread_job(job, self._compile_sync))
        elif job.kind == "explore":
            self._spawn(self._run_thread_job(job, self._explore_sync))
        else:  # pragma: no cover - the protocol layer rejects unknown kinds
            job.fail("BadRequest", f"unroutable job kind {job.kind!r}")

    def _spawn(self, coro):
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def stats(self):
        return {
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "retry_budget_left": self._retry_budget,
            **self.counters,
        }

    # -- dispatcher ----------------------------------------------------------

    async def _dispatch_loop(self):
        """Collect queued jobs into batch windows; never blocks on a batch."""
        while True:
            job = await self._queue.get()
            if job is _SHUTDOWN:
                return
            batch = [job]
            horizon = self._loop.time() + self.batch_window_s
            while len(batch) < self.batch_cap:
                remaining = horizon - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    job = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if job is _SHUTDOWN:
                    await self._queue.put(_SHUTDOWN)
                    break
                batch.append(job)
            simulates = [j for j in batch if j.kind == "simulate"]
            sweeps = [j for j in batch if j.kind == "sweep"]
            if simulates:
                self._spawn(self._run_simulate_batch(simulates))
            for sweep_job in sweeps:
                self._spawn(self._run_sweep_job(sweep_job))

    # -- simulate batches ----------------------------------------------------

    def _simulate_task(self, job):
        """The spawn-safe :class:`SweepTask` for one simulate request."""
        from repro import isa as isa_registry
        from repro.core.configs import ALL_CORES

        req = job.request
        config = None
        if req["core"] is not None:
            config = ALL_CORES[req["core"]]()
        target = req["target"]
        if config is not None:
            core_isa = isa_registry.for_config(config).name
            if target is None:
                # The core determines the ISA; compile its default target.
                target = core_isa
            elif isa_registry.resolve_target(target)[0].name != core_isa:
                raise BadRequest(
                    f"target {target!r} is not runnable on core "
                    f"{req['core']!r} (a {core_isa} core)")
        compile_opts = {"target": target or "straight"}
        if req["source"] is not None:
            compile_opts["source_text"] = req["source"]
        return SweepTask(
            job.id,
            workload=req["workload"],
            config=config,
            iterations=req["iterations"],
            max_distance=req["max_distance"],
            compile_opts=compile_opts,
            kind="functional" if config is None else "timing",
            timeout_s=req["timeout_s"],
            attribution=req["attribution"],
            sampling=req["sampling"],
        )

    async def _run_simulate_batch(self, jobs):
        self.counters["batches"] += 1
        self.counters["batched_jobs"] += len(jobs)
        tasks = []
        by_id = {}
        for job in jobs:
            job.mark_running({"batch": len(jobs)})
            try:
                task = self._simulate_task(job)
            except Exception as exc:  # noqa: BLE001 - fail just this job
                job.fail(type(exc).__name__, str(exc),
                         {"classification": "deterministic"})
                continue
            tasks.append(task)
            by_id[job.id] = job
        if not tasks:
            return
        pool_jobs = self.pool_jobs
        if len(tasks) <= self.inline_threshold:
            self.counters["inline_batches"] += 1
            pool_jobs = 1

        loop = self._loop

        def progress(done, total, task_id, status, seconds):
            # Worker-thread callback: marshal onto the loop.
            loop.call_soon_threadsafe(
                self._on_progress, by_id, done, total, task_id, status,
                seconds)

        async with self._batch_gate:
            report = await loop.run_in_executor(
                self._threads,
                lambda: run_sweep(tasks, jobs=pool_jobs, progress=progress))
        for job in by_id.values():
            payload = report.results.get(job.id)
            if payload is None:  # pragma: no cover - run_sweep is total
                job.fail("ServeError", "sweep returned no payload")
            elif payload.get("kind") == "error":
                await self._maybe_retry(job, payload)
            else:
                job.finish(payload)

    def _on_progress(self, by_id, done, total, task_id, status, seconds):
        job = by_id.get(task_id)
        if job is None:
            return
        if status == "cache":
            job.cache_status = "cache"
        job.publish("progress", {"status": status,
                                 "seconds": round(seconds, 4)})

    async def _maybe_retry(self, job, payload):
        """Requeue a transiently-failed job, or fail it for good."""
        classification = classify_failure(payload)
        budget_left = (time.monotonic() - job.created_s
                       < job.request["timeout_s"])
        if (classification == TRANSIENT
                and job.attempts < self.retry.max_attempts
                and self._retry_budget > 0
                and budget_left):
            self._retry_budget -= 1
            self.counters["retries"] += 1
            backoff = self.retry.backoff_s(job.attempts)
            job.state = "queued"
            job.publish("retry", {
                "attempt": job.attempts,
                "backoff_s": backoff,
                "error": payload.get("type"),
            })
            await asyncio.sleep(backoff)
            if job.kind == "simulate":
                self._queue.put_nowait(job)
            else:
                self._spawn(self._run_sweep_job(job))
            return
        job.fail(payload.get("type", "Error"), payload.get("message", ""),
                 {"classification": classification,
                  "traceback": payload.get("traceback")})

    # -- sweep jobs ----------------------------------------------------------

    async def _run_sweep_job(self, job):
        from repro.harness.experiments import grid_tasks

        req = job.request
        tasks = grid_tasks(req["experiments"])
        job.mark_running({"tasks": len(tasks)})
        if not tasks:
            job.finish({"experiments": req["experiments"], "tasks": 0,
                        "manifest": None})
            return
        loop = self._loop
        stride = max(1, len(tasks) // 20)

        def progress(done, total, task_id, status, seconds):
            if done % stride and done != total:
                return
            loop.call_soon_threadsafe(
                job.publish, "progress",
                {"done": done, "total": total, "status": status})

        async with self._batch_gate:
            report = await loop.run_in_executor(
                self._threads,
                lambda: run_sweep(tasks, jobs=self.pool_jobs,
                                  progress=progress))
        # Partial failure is the sweep contract: the grid completes around
        # failed points and the manifest names them, so the job finishes
        # DONE with the failure list rather than retrying the whole grid.
        result = {
            "experiments": req["experiments"],
            "tasks": len(tasks),
            "completed": len(report.manifest["completed"]),
            "failed": report.manifest["failed"],
            "cache_served": report.manifest["cache_served"],
            "cache_hit_rate": round(report.result_hit_rate(), 4),
            "wall_s": report.wall_s,
        }
        if req["full_results"]:
            result["results"] = report.results
        if report.manifest["cache_served"] == len(tasks):
            job.cache_status = "cache"
        job.finish(result)

    # -- thread jobs (compile / explore) -------------------------------------

    async def _run_thread_job(self, job, fn):
        self.counters["thread_jobs"] += 1
        job.mark_running()
        loop = self._loop
        while True:
            try:
                result = await loop.run_in_executor(
                    self._threads, fn, job.request, job.id)
            except Exception as exc:  # noqa: BLE001 - classify and retry
                payload = _error_record(exc)
                classification = classify_failure(payload)
                budget_left = (time.monotonic() - job.created_s
                               < job.request["timeout_s"])
                if (classification == TRANSIENT
                        and job.attempts < self.retry.max_attempts
                        and self._retry_budget > 0
                        and budget_left):
                    self._retry_budget -= 1
                    self.counters["retries"] += 1
                    backoff = self.retry.backoff_s(job.attempts)
                    job.publish("retry", {"attempt": job.attempts,
                                          "backoff_s": backoff,
                                          "error": payload["type"]})
                    await asyncio.sleep(backoff)
                    job.attempts += 1
                    continue
                job.fail(payload["type"], payload["message"],
                         {"classification": classification})
                return
            else:
                job.finish(result)
                return

    @staticmethod
    def _compile_sync(request, job_id):
        """Compile one source (artifact-cached) and report asm + diagnostics.

        Runs in a worker thread: the deadline auto-selects the thread-timer
        fallback.
        """
        with deadline(request["timeout_s"], label=job_id):
            binary = compile_binary_cached(
                request["source"], target=request["target"],
                max_distance=request["max_distance"])
            result = {
                "target": request["target"],
                "isa": binary.isa,
                "asm": binary.compilation.asm_text(),
            }
            if request["verify"]:
                result["diagnostics"] = _diagnostics(
                    binary.descriptor, binary.program)
            return result

    @staticmethod
    def _explore_sync(request, job_id):
        """The compiler-explorer job: every ISA's pipeline for one source.

        Per ISA: the assembly of every linked variant, the static
        verifier's diagnostics, the functional output — plus (``trace``) a
        Kanata pipeline log and cycles/IPC from the ISA's 2-way core, and
        (``sampled``) a SMARTS-style sampled timing estimate.
        """
        from repro import isa as isa_registry
        from repro.core.api import Binary, simulate
        from repro.frontend import compile_source

        with deadline(request["timeout_s"], label=job_id):
            module = compile_source(request["source"])
            isas = {}
            for name in request["isas"]:
                descriptor = isa_registry.get(name)
                variants = {}
                default_binary = None
                for label, opts in descriptor.binary_labels.items():
                    compilation = descriptor.compile_module(
                        module, max_distance=request["max_distance"], **opts)
                    program = compilation.link()
                    report = descriptor.static_check(program)
                    interp = descriptor.make_interpreter(program)
                    run = interp.run(1_000_000)
                    variants[label] = {
                        "asm": compilation.asm_text(),
                        "diagnostics": _report_view(report),
                        "output": list(run.output),
                        "steps": run.steps,
                        "status": run.status,
                    }
                    if default_binary is None:
                        default_binary = Binary(descriptor.name, program,
                                                compilation)
                entry = {
                    "display_name": descriptor.display_name,
                    "default_variant": next(iter(descriptor.binary_labels)),
                    "variants": variants,
                }
                config = descriptor.config_factories["2way"]()
                if request["trace"]:
                    from repro.obs import ObserverBus
                    from repro.obs.kanata import KanataWriter

                    writer = KanataWriter(path=None,
                                          max_insns=request["max_insns"])
                    result = simulate(default_binary, config,
                                      warm_caches=True,
                                      observer=ObserverBus([writer]))
                    entry["timing"] = {
                        "core": config.name,
                        "cycles": result.cycles,
                        "ipc": round(result.ipc, 4),
                        "kanata": writer.render(),
                    }
                if request["sampled"]:
                    from repro.harness.sampling import (
                        SamplingParams,
                        simulate_sampled,
                    )

                    sampled = simulate_sampled(default_binary, config,
                                               SamplingParams(),
                                               warm_caches=True)
                    entry["sampled"] = {
                        "core": config.name,
                        "cycles": sampled.cycles,
                        "ipc": round(sampled.ipc, 4),
                    }
                isas[name] = entry
            return {"isas": isas}


def _diagnostics(descriptor, program):
    """Static-verifier diagnostics for one linked program, or ``None``."""
    return _report_view(descriptor.static_check(program))


def _report_view(report):
    if report is None:
        return None
    view = {"summary": report.summary(), "ok": not report.has_errors()}
    as_dict = getattr(report, "as_dict", None)
    if as_dict is not None:
        view["report"] = as_dict()
    return view
