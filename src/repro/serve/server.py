"""The asyncio HTTP/JSON front end: ``straight serve``.

A deliberately small stdlib-only HTTP/1.1 server over ``asyncio`` streams
(no aiohttp in the image, and the endpoint surface is tiny).  Supported:
keep-alive, Content-Length bodies, Server-Sent Events responses.  Not
supported (rejected cleanly): chunked request bodies, TLS, HTTP/2.

Routes::

    POST /v1/compile             compile job  (asm + verifier diagnostics)
    POST /v1/simulate            functional or timing simulation job
    POST /v1/sweep               experiment-grid job
    POST /v1/explore             compiler-explorer job (multi-ISA)
    GET  /v1/jobs/<id>           job view (state, served, events, result)
    GET  /v1/jobs/<id>/events    the job's ordered event stream, as SSE
    GET  /v1/jobs/<id>/result    just the result (404 until done)
    GET  /v1/healthz             liveness + readiness
    GET  /v1/stats               job store / quota / executor / cache stats
    GET  /v1/isas                registered ISAs, targets, cores, workloads

``POST`` responses carry ``served``: ``fresh`` (new execution),
``inflight`` (attached to a running identical job) or ``store`` (answered
from a finished one); ``?wait=<seconds>`` blocks up to that long for the
terminal state (``202`` with the current view on timeout — never a 5xx).
Quota rejections are ``429`` with ``Retry-After``.

:class:`ServerHandle` runs the whole app on a background thread with its
own event loop — the shape the tests, the loadgen, and ``straight bench
--serve`` use; :func:`run_server` is the blocking CLI entry.
"""

import asyncio
import json
import threading

from repro.serve.jobs import DONE, JobStore
from repro.serve.protocol import BadRequest, sse_event
from repro.serve.quota import QuotaRegistry
from repro.serve.executor import ServeExecutor

#: Request-line + headers cap and body cap (the explorer accepts source
#: text, not object files; see protocol.MAX_SOURCE_BYTES for the field cap).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status, message, headers=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class ServeApp:
    """Routing + job orchestration, independent of the socket layer."""

    def __init__(self, pool_jobs=None, quota_rate=50.0, quota_burst=200.0,
                 max_jobs=4096, retry_policy=None):
        self.store = JobStore(max_jobs=max_jobs)
        self.executor = ServeExecutor(pool_jobs=pool_jobs,
                                      retry_policy=retry_policy)
        self.quota = QuotaRegistry(rate=quota_rate, burst=quota_burst)
        self.requests = 0
        self.errors_5xx = 0

    def start(self, loop=None):
        self.executor.start(loop)
        return self

    async def stop(self):
        await self.executor.stop()

    # -- request handling ----------------------------------------------------

    async def handle(self, reader, writer):
        """One keep-alive connection."""
        peer = writer.get_extra_info("peername")
        client_addr = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    return
                method, path, query, headers, body = request
                self.requests += 1
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    handled = await self._route(
                        method, path, query, headers, body, writer,
                        client_addr)
                except _HttpError as exc:
                    _write_json(writer, exc.status,
                                {"error": exc.message},
                                keep_alive=keep_alive,
                                extra_headers=exc.headers)
                except BadRequest as exc:
                    _write_json(writer, 400, {"error": str(exc)},
                                keep_alive=keep_alive)
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    self.errors_5xx += 1
                    _write_json(
                        writer, 500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        keep_alive=keep_alive)
                else:
                    if handled == "stream":
                        # SSE responses own the connection to its end.
                        return
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        except asyncio.IncompleteReadError:
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels idle keep-alive handlers; close
            # quietly instead of letting asyncio log the cancellation.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(self, method, path, query, headers, body, writer,
                     client_addr):
        keep_alive = headers.get("connection", "").lower() != "close"
        parts = [p for p in path.split("/") if p]
        if len(parts) < 2 or parts[0] != "v1":
            raise _HttpError(404, f"no such route: {path}")
        head = parts[1]

        if method == "POST":
            from repro.serve.protocol import JOB_KINDS

            if len(parts) != 2 or head not in JOB_KINDS:
                raise _HttpError(404, f"no such route: POST {path}")
            client = headers.get("x-client-id", client_addr)
            granted, retry_after = self.quota.try_take(client)
            if not granted:
                raise _HttpError(
                    429, f"quota exceeded for client {client!r}",
                    headers={"Retry-After": f"{retry_after:.3f}"})
            payload = _json_body(body)
            job, created, served = self.store.submit(head, payload)
            if created:
                self.executor.submit(job)
            wait_s = _wait_of(query)
            status = 200
            if wait_s:
                finished = await job.wait(wait_s)
                if not finished:
                    status = 202
            elif job.state != DONE and served != "store":
                status = 202
            view = job.view()
            view["served"] = served
            _write_json(writer, status, view, keep_alive=keep_alive)
            return "response"

        if method != "GET":
            raise _HttpError(405, f"method {method} not allowed")

        if head == "healthz":
            _write_json(writer, 200, {"ok": True, "jobs": len(self.store.jobs)},
                        keep_alive=keep_alive)
            return "response"
        if head == "stats":
            _write_json(writer, 200, self.stats(), keep_alive=keep_alive)
            return "response"
        if head == "isas":
            _write_json(writer, 200, _isa_inventory(), keep_alive=keep_alive)
            return "response"
        if head == "jobs" and len(parts) >= 3:
            job = self.store.get(parts[2])
            if job is None:
                raise _HttpError(404, f"no such job: {parts[2]}")
            if len(parts) == 3:
                _write_json(writer, 200, job.view(), keep_alive=keep_alive)
                return "response"
            if parts[3] == "result":
                if job.state != DONE:
                    raise _HttpError(404, f"job {job.id} is {job.state}")
                _write_json(writer, 200, {"job": job.id,
                                          "result": job.result},
                            keep_alive=keep_alive)
                return "response"
            if parts[3] == "events":
                await self._stream_events(writer, job)
                return "stream"
        raise _HttpError(404, f"no such route: {path}")

    async def _stream_events(self, writer, job):
        """SSE: replay the job's history, then follow it to the terminal
        event.  A disconnected subscriber just stops iterating — the job
        and every other subscriber are unaffected."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n")
        await writer.drain()
        async for record in job.stream():
            writer.write(sse_event(record["data"], event=record["event"],
                                   id=record["index"]))
            await writer.drain()

    def stats(self):
        from repro.harness import cache as cache_mod

        return {
            "requests": self.requests,
            "errors_5xx": self.errors_5xx,
            "store": self.store.stats(),
            "executor": self.executor.stats(),
            "quota": self.quota.stats(),
            "cache": cache_mod.cache_report(),
        }


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------


async def _read_request(reader):
    """``(method, path, query, headers, body)`` or ``None`` at EOF."""
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    if len(header_blob) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request headers too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}") from None
    path, _, query_text = target.partition("?")
    query = {}
    for pair in query_text.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise _HttpError(400, "chunked request bodies are not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, query, headers, body


def _json_body(body):
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


def _wait_of(query):
    raw = query.get("wait")
    if raw is None or raw == "":
        return None
    try:
        wait_s = float(raw)
    except ValueError:
        raise BadRequest(f"wait must be a number, got {raw!r}") from None
    if wait_s <= 0:
        return None
    return min(wait_s, 600.0)


def _write_json(writer, status, payload, keep_alive=True, extra_headers=None):
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)


def _isa_inventory():
    from repro import isa as isa_registry
    from repro.core.configs import ALL_CORES
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.workloads.common import WORKLOADS

    isas = {}
    for descriptor in isa_registry.descriptors():
        isas[descriptor.name] = {
            "display_name": descriptor.display_name,
            "register_model": descriptor.register_model,
            "targets": sorted(descriptor.targets),
            "binary_labels": list(descriptor.binary_labels),
            "static_check": descriptor.has_static_check,
        }
    return {
        "isas": isas,
        "cores": sorted(ALL_CORES),
        "workloads": sorted(WORKLOADS),
        "experiments": sorted(ALL_EXPERIMENTS),
    }


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


async def serve_forever(app, host="127.0.0.1", port=8712, ready=None):
    """Run ``app`` on ``(host, port)`` until cancelled."""
    app.start(asyncio.get_running_loop())
    server = await asyncio.start_server(app.handle, host, port,
                                        limit=MAX_HEADER_BYTES + MAX_BODY_BYTES)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    try:
        async with server:
            await server.serve_forever()
    finally:
        await app.stop()


def run_server(host="127.0.0.1", port=8712, pool_jobs=None, quota_rate=50.0,
               quota_burst=200.0, announce=print):
    """Blocking CLI entry (``straight serve``)."""
    app = ServeApp(pool_jobs=pool_jobs, quota_rate=quota_rate,
                   quota_burst=quota_burst)

    def ready(bound_host, bound_port):
        if announce is not None:
            announce(f"serving on http://{bound_host}:{bound_port} "
                     f"(pool_jobs={pool_jobs or 'auto'}, "
                     f"quota={quota_rate}/s burst {quota_burst})")

    try:
        asyncio.run(serve_forever(app, host, port, ready=ready))
    except KeyboardInterrupt:
        pass
    return app


class ServerHandle:
    """An in-process server on a background thread (tests, bench, loadgen).

    ::

        with ServerHandle(port=0) as handle:
            ...  # http://{handle.host}:{handle.port}
    """

    def __init__(self, host="127.0.0.1", port=0, **app_kwargs):
        self.app = ServeApp(**app_kwargs)
        self._host = host
        self._port = port
        self.host = None
        self.port = None
        self._loop = None
        self._thread = None
        self._ready = threading.Event()
        self._stopped = threading.Event()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def start(self, timeout=10.0):
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="serve-http")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not become ready in time")
        return self

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        def ready(host, port):
            self.host, self.port = host, port
            self._ready.set()

        try:
            self._loop.run_until_complete(
                serve_forever(self.app, self._host, self._port, ready=ready))
        except asyncio.CancelledError:
            pass
        finally:
            try:
                self._loop.run_until_complete(
                    self._loop.shutdown_asyncgens())
            finally:
                self._loop.close()
                self._stopped.set()

    def stop(self, timeout=10.0):
        if self._loop is None or not self._thread.is_alive():
            return

        def _cancel():
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(_cancel)
        self._stopped.wait(timeout)
        self._thread.join(timeout)
