"""Request canonicalization and SSE framing for the serve tier.

Canonicalization is the server's dedup identity: every job-creating
request is normalized — defaults filled in, fields validated against the
live registries (ISA targets, Table I cores, workloads), unknown fields
rejected — and the normalized form is hashed with the same
:func:`repro.harness.cache.canonical_key` machinery the persistent caches
use, folding in the toolchain tag and schema version.  Two requests that
differ only in field order, omitted defaults, or non-identity knobs
(client id, wait behaviour, timeout budget) therefore land on the same
job key, which is what makes single-flight dedup and store-serving safe:
a key collision *is* a semantic match.

SSE framing follows the WHATWG EventSource wire format: ``id:`` /
``event:`` / one ``data:`` line per payload line, terminated by a blank
line.  :func:`parse_sse` is the bundled round-trip parser (tests and the
loadgen both consume it).
"""

import json

from repro.common.errors import ReproError
from repro.harness import cache as cache_mod

#: Job kinds the server accepts, in route order.
JOB_KINDS = ("compile", "simulate", "sweep", "explore")

#: Hard cap on submitted source text (the compiler-explorer is an open
#: endpoint; a 256 KiB mini-C program is already absurd).
MAX_SOURCE_BYTES = 256 * 1024

#: Per-job wall-clock budget bounds (seconds).  Requests may lower the
#: default but never exceed the max; the budget is enforcement policy,
#: not result identity, so it stays out of the dedup key.
DEFAULT_TIMEOUT_S = 120.0
MAX_TIMEOUT_S = 600.0

#: Cap on the Kanata trace window an explore job renders.
MAX_TRACE_INSNS = 50_000


class BadRequest(ReproError):
    """A request failed validation; maps to HTTP 400."""


def _require(condition, message):
    if not condition:
        raise BadRequest(message)


def _as_bool(payload, field, default=False):
    value = payload.get(field, default)
    _require(isinstance(value, bool), f"{field} must be a boolean")
    return value


def _as_int(payload, field, default, low, high):
    value = payload.get(field, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{field} must be an integer")
    _require(low <= value <= high,
             f"{field} must be within [{low}, {high}]")
    return value


def _timeout_of(payload):
    value = payload.get("timeout_s", None)
    if value is None:
        return DEFAULT_TIMEOUT_S
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             "timeout_s must be a number")
    _require(value > 0, "timeout_s must be positive")
    return min(float(value), MAX_TIMEOUT_S)


def _source_of(payload, required=True):
    source = payload.get("source")
    if source is None and not required:
        return None
    _require(isinstance(source, str) and source.strip(),
             "source must be a non-empty string")
    _require(len(source.encode("utf-8")) <= MAX_SOURCE_BYTES,
             f"source exceeds {MAX_SOURCE_BYTES} bytes")
    return source


def _check_fields(payload, allowed, kind):
    _require(isinstance(payload, dict), f"{kind} request body must be a "
             "JSON object")
    unknown = sorted(set(payload) - set(allowed))
    _require(not unknown,
             f"unknown {kind} field(s): {', '.join(unknown)}; "
             f"allowed: {', '.join(sorted(allowed))}")


def _valid_targets():
    from repro import isa as isa_registry

    return tuple(isa_registry.target_map())


def _valid_cores():
    from repro.core.configs import ALL_CORES

    return ALL_CORES


def normalize_compile(payload):
    _check_fields(payload, ("source", "target", "max_distance", "verify",
                            "timeout_s"), "compile")
    targets = _valid_targets()
    target = payload.get("target", "straight")
    _require(target in targets,
             f"unknown target {target!r}; choose from {', '.join(targets)}")
    return {
        "source": _source_of(payload),
        "target": target,
        "max_distance": _as_int(payload, "max_distance", 1023, 1, 1 << 20),
        "verify": _as_bool(payload, "verify", True),
    }


#: Sampling-schedule fields a simulate request may carry, with bounds
#: (mirrors :class:`repro.harness.sampling.SamplingParams`).
_SAMPLING_FIELDS = {
    "period": (1, 10_000_000),
    "window": (1, 1_000_000),
    "warmup": (0, 1_000_000),
    "cooldown": (0, 1_000_000),
    "seed": (0, 1 << 62),
}


def _sampling_of(payload):
    sampling = payload.get("sampling")
    if sampling is None:
        return None
    _check_fields(sampling, tuple(_SAMPLING_FIELDS), "sampling")
    for field, (low, high) in _SAMPLING_FIELDS.items():
        if field in sampling:
            _as_int(sampling, field, None, low, high)
    from repro.harness.sampling import SamplingParams

    try:
        params = SamplingParams(**sampling)
    except ValueError as exc:
        raise BadRequest(f"invalid sampling schedule: {exc}") from None
    return params.as_dict()


def normalize_simulate(payload):
    _check_fields(payload, ("source", "workload", "target", "core",
                            "iterations", "max_distance", "attribution",
                            "sampling", "timeout_s"), "simulate")
    source = _source_of(payload, required=False)
    workload = payload.get("workload")
    _require((source is None) != (workload is None),
             "pass exactly one of source / workload")
    if workload is not None:
        from repro.workloads.common import WORKLOADS

        _require(workload in WORKLOADS,
                 f"unknown workload {workload!r}; choose from "
                 f"{', '.join(sorted(WORKLOADS))}")
    core = payload.get("core")
    if core is not None:
        cores = _valid_cores()
        _require(core in cores,
                 f"unknown core {core!r}; choose from "
                 f"{', '.join(sorted(cores))}")
    attribution = _as_bool(payload, "attribution", False)
    sampling = _sampling_of(payload)
    _require(not (attribution and sampling),
             "attribution needs every committed instruction; it cannot be "
             "combined with sampled simulation")
    _require(core is not None or not (attribution or sampling),
             "functional runs (no core) take neither attribution nor "
             "sampling")
    target = payload.get("target")
    if target is not None:
        targets = _valid_targets()
        _require(target in targets,
                 f"unknown target {target!r}; choose from "
                 f"{', '.join(targets)}")
    iterations = payload.get("iterations")
    if iterations is not None:
        iterations = _as_int(payload, "iterations", None, 1, 1_000_000)
    return {
        "source": source,
        "workload": workload,
        "target": target,
        "core": core,
        "iterations": iterations,
        "max_distance": _as_int(payload, "max_distance", 1023, 1, 1 << 20),
        "attribution": attribution,
        "sampling": sampling,
    }


def normalize_sweep(payload):
    _check_fields(payload, ("experiments", "full_results", "timeout_s"),
                  "sweep")
    experiments = payload.get("experiments")
    _require(isinstance(experiments, (list, tuple)) and experiments,
             "experiments must be a non-empty list of grid names")
    _require(all(isinstance(name, str) for name in experiments),
             "experiments entries must be strings")
    from repro.harness.experiments import ALL_EXPERIMENTS

    unknown = sorted(set(experiments) - set(ALL_EXPERIMENTS))
    _require(not unknown,
             f"unknown experiment(s): {', '.join(unknown)}; choose from "
             f"{', '.join(sorted(ALL_EXPERIMENTS))}")
    # Order-insensitive identity: the grid is deduplicated downstream.
    return {
        "experiments": sorted(set(experiments)),
        "full_results": _as_bool(payload, "full_results", False),
    }


def normalize_explore(payload):
    _check_fields(payload, ("source", "isas", "trace", "sampled",
                            "max_insns", "max_distance", "timeout_s"),
                  "explore")
    from repro import isa as isa_registry

    known = isa_registry.names()
    isas = payload.get("isas")
    if isas is None:
        isas = list(known)
    _require(isinstance(isas, (list, tuple)) and isas,
             "isas must be a non-empty list of ISA names")
    unknown = sorted(set(isas) - set(known))
    _require(not unknown,
             f"unknown ISA(s): {', '.join(unknown)}; choose from "
             f"{', '.join(known)}")
    return {
        "source": _source_of(payload),
        "isas": sorted(set(isas)),
        "trace": _as_bool(payload, "trace", True),
        "sampled": _as_bool(payload, "sampled", False),
        "max_insns": _as_int(payload, "max_insns", 10_000, 1,
                             MAX_TRACE_INSNS),
        "max_distance": _as_int(payload, "max_distance", 1023, 1, 1 << 20),
    }


_NORMALIZERS = {
    "compile": normalize_compile,
    "simulate": normalize_simulate,
    "sweep": normalize_sweep,
    "explore": normalize_explore,
}


def canonical_request(kind, payload):
    """``(request, key)`` — the normalized request and its dedup identity.

    ``request`` has every identity-bearing field present and validated;
    ``key`` is the SHA-256 canonical-JSON digest over ``(kind, request,
    toolchain tag, cache schema version)``.  The wall-clock budget
    (``timeout_s``) is normalized separately (``request_timeout``) and
    deliberately excluded from the key: two callers asking for the same
    result with different patience must share one execution.
    """
    _require(kind in _NORMALIZERS,
             f"unknown job kind {kind!r}; choose from {', '.join(JOB_KINDS)}")
    _require(isinstance(payload, dict), "request body must be a JSON object")
    request = _NORMALIZERS[kind](payload)
    key = cache_mod.canonical_key({
        "kind": kind,
        "request": request,
        "tag": cache_mod.TOOLCHAIN_TAG,
        "schema": cache_mod.SCHEMA_VERSION,
    })
    request["timeout_s"] = _timeout_of(payload)
    return request, key


# ---------------------------------------------------------------------------
# Server-Sent Events framing
# ---------------------------------------------------------------------------


def sse_event(data, event=None, id=None):
    """One SSE frame as bytes (``id:``/``event:``/``data:`` + blank line).

    ``data`` may be a string (sent verbatim, multi-line safe) or any
    JSON-safe object (dumped canonically, sorted keys — byte-stable so two
    subscribers to one job see identical streams).
    """
    lines = []
    if id is not None:
        lines.append(f"id: {id}")
    if event is not None:
        lines.append(f"event: {event}")
    text = data if isinstance(data, str) else json.dumps(
        data, sort_keys=True, separators=(",", ":"))
    for line in text.split("\n") or [""]:
        lines.append(f"data: {line}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_sse(text):
    """Parse an SSE stream back into ``[{"id", "event", "data"}, ...]``.

    The inverse of :func:`sse_event` for the framing subset the server
    emits (no retry fields, no comments except ``:`` keep-alives, which
    are skipped).  Multi-line ``data:`` payloads are rejoined with
    newlines, per the EventSource algorithm.
    """
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    events = []
    current = {"id": None, "event": None, "data": []}
    saw_field = False
    for line in text.split("\n"):
        if line == "":
            if saw_field:
                events.append({
                    "id": current["id"],
                    "event": current["event"],
                    "data": "\n".join(current["data"]),
                })
            current = {"id": None, "event": None, "data": []}
            saw_field = False
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "id":
            current["id"] = value
            saw_field = True
        elif field == "event":
            current["event"] = value
            saw_field = True
        elif field == "data":
            current["data"].append(value)
            saw_field = True
    return events
