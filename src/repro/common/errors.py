"""Exception hierarchy for the reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without masking genuine programming errors.

Simulation-side errors carry *structured context* (cycle, PC, per-structure
occupancy, free-form detail) so that the harness can write machine-readable
crash dumps and so that a failure inside a long sweep pinpoints the exact
machine state instead of just a message.  Plain single-message construction
keeps working everywhere.
"""


class ReproError(Exception):
    """Base class of every error raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: verifier failures, invalid builder usage."""


class CompileError(ReproError):
    """Front-end or back-end compilation failure (has source context)."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class AsmError(ReproError):
    """Assembler failure: unknown mnemonic, out-of-range field, bad label.

    ``line`` (when known) is the 1-based source line of the offending item so
    tools can report structured positions instead of free-text prefixes.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """Linker failure: duplicate or undefined symbols."""


class SimulationError(ReproError):
    """Functional or timing simulation failure (bad memory access, etc.).

    Optional keyword-only context:

    * ``cycle`` — timing-model cycle at which the failure was observed;
    * ``pc`` — program counter of the implicated instruction;
    * ``occupancy`` — per-structure occupancy snapshot (``rob``, ``iq``, ...);
    * ``context`` — free-form extra detail (checker name, expected/observed
      values, replay window, ...).
    """

    def __init__(self, message, *, cycle=None, pc=None, occupancy=None,
                 context=None):
        self.message = message
        self.cycle = cycle
        self.pc = pc
        self.occupancy = dict(occupancy) if occupancy else {}
        self.context = dict(context) if context else {}
        super().__init__(message)

    def __str__(self):
        parts = [self.message]
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.pc is not None:
            parts.append(f"pc={self.pc:#x}")
        if self.occupancy:
            occ = ", ".join(f"{k}={v}" for k, v in sorted(self.occupancy.items()))
            parts.append(f"occupancy[{occ}]")
        if len(parts) == 1:
            return self.message
        return parts[0] + " [" + "; ".join(parts[1:]) + "]"

    def as_dict(self):
        """JSON-serializable view used by crash dumps."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "cycle": self.cycle,
            "pc": self.pc,
            "occupancy": dict(self.occupancy),
            "context": {k: v for k, v in self.context.items()},
        }


class GuardrailError(SimulationError):
    """Base class of every failure raised by the guardrails subsystem."""


class InvariantViolation(GuardrailError):
    """A structural invariant checker observed an impossible machine state."""


class DeadlockError(GuardrailError):
    """The forward-progress watchdog saw no commit for too many cycles."""


class DivergenceError(GuardrailError):
    """Lockstep co-simulation: timing commit stream left the golden path."""


class FaultEscapeError(GuardrailError):
    """A fault-injection campaign found corruption the checkers missed."""


class RunTimeoutError(SimulationError):
    """A hardened-harness run exceeded its wall-clock budget."""


class UnknownIsaError(ReproError):
    """A name was looked up in the ISA registry and nothing answers to it.

    Carries the offending ``name`` and the tuple of ``registered`` names so
    harness layers can render structured diagnostics instead of a silent
    fallback to some default ISA.
    """

    def __init__(self, name, registered):
        self.name = name
        self.registered = tuple(registered)
        super().__init__(
            f"unknown ISA {name!r}; registered ISAs: "
            + ", ".join(self.registered)
        )
