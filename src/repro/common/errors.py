"""Exception hierarchy for the reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without masking genuine programming errors.
"""


class ReproError(Exception):
    """Base class of every error raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: verifier failures, invalid builder usage."""


class CompileError(ReproError):
    """Front-end or back-end compilation failure (has source context)."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class AsmError(ReproError):
    """Assembler failure: unknown mnemonic, out-of-range field, bad label."""


class LinkError(ReproError):
    """Linker failure: duplicate or undefined symbols."""


class SimulationError(ReproError):
    """Functional or timing simulation failure (bad memory access, etc.)."""
