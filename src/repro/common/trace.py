"""Dynamic instruction trace records.

The functional simulators of both ISAs emit a common trace format that the
shared cycle-level timing model (:mod:`repro.uarch`) replays.  This mirrors
the paper's methodology of sharing back-end simulator code between the two
architectures (§V-A) while keeping ISA-specific front-end behaviour pluggable.

Register identifiers in a trace are *dependence tags*:

* for RV32IM entries they are logical register numbers (1..31; ``x0`` and
  immediates appear as ``None``) — the timing model's rename stage maps them
  to physical registers, consuming RMT ports and free-list entries;
* for STRAIGHT entries they are already physical register numbers (the RP
  values computed by the operand-determination logic), because STRAIGHT has
  no renaming — exactly the paper's point.
"""

#: Operation classes, used by the scheduler to pick a functional-unit port
#: and an execution latency.
OP_CLASSES = (
    "alu",
    "mul",
    "div",
    "load",
    "store",
    "branch",  # conditional branch
    "jump",  # unconditional jump / call / return
    "nop",
    "sys",  # OUT / ECALL / HALT
)


class TraceEntry:
    """One retired dynamic instruction."""

    __slots__ = (
        "pc",
        "op_class",
        "mnemonic",
        "dest",
        "srcs",
        "is_branch",
        "is_control",
        "taken",
        "target_pc",
        "next_pc",
        "mem_addr",
        "is_call",
        "is_return",
        "is_rmov",
        "is_spadd",
        "src_distances",
        "dest_value",
    )

    def __init__(
        self,
        pc,
        op_class,
        mnemonic,
        dest=None,
        srcs=(),
        taken=False,
        target_pc=None,
        next_pc=None,
        mem_addr=None,
        is_call=False,
        is_return=False,
        is_rmov=False,
        is_spadd=False,
        src_distances=(),
        dest_value=None,
    ):
        self.pc = pc
        self.op_class = op_class
        self.mnemonic = mnemonic
        self.dest = dest
        self.srcs = tuple(s for s in srcs if s is not None)
        self.is_branch = op_class == "branch"
        #: Precomputed "redirects fetch when taken" flag; the fetch stage
        #: tests this once per fetched instruction, so it is a slot, not a
        #: per-access method call.
        self.is_control = op_class == "branch" or op_class == "jump"
        self.taken = taken
        self.target_pc = target_pc
        self.next_pc = next_pc
        self.mem_addr = mem_addr
        self.is_call = is_call
        self.is_return = is_return
        self.is_rmov = is_rmov
        self.is_spadd = is_spadd
        self.src_distances = tuple(src_distances)
        #: Architectural result of the instruction (the written register value
        #: or, for stores, the stored word); ``None`` when there is none.
        #: Lockstep co-simulation compares this against a golden re-execution.
        self.dest_value = dest_value

    def changes_flow(self):
        """True for any instruction that redirects fetch when taken."""
        return self.is_control

    def __repr__(self):
        return (
            f"TraceEntry(pc={self.pc:#x}, {self.mnemonic}, dest={self.dest}, "
            f"srcs={self.srcs})"
        )
