"""32-bit word arithmetic helpers.

Python integers are unbounded; every architectural value in the reproduction
is stored as an *unsigned* 32-bit integer (0 .. 2**32-1) and converted to a
signed view only where an operation's semantics demand it (arithmetic shifts,
signed compares, signed division).
"""

MASK32 = 0xFFFF_FFFF


def wrap32(value):
    """Wrap an arbitrary Python int into an unsigned 32-bit word."""
    return value & MASK32


def to_signed(value):
    """Interpret an unsigned 32-bit word as a signed two's-complement int."""
    value &= MASK32
    if value >= 0x8000_0000:
        return value - 0x1_0000_0000
    return value


def to_unsigned(value):
    """Alias of :func:`wrap32`; named for call-site readability."""
    return value & MASK32


def sext(value, width):
    """Sign-extend the low ``width`` bits of ``value`` to a Python int."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def bits(value, hi, lo):
    """Extract the inclusive bit-field ``value[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def fits_signed(value, width):
    """True when ``value`` is representable as a ``width``-bit signed field."""
    return -(1 << (width - 1)) <= value < (1 << (width - 1))


def fits_unsigned(value, width):
    """True when ``value`` is representable as a ``width``-bit unsigned field."""
    return 0 <= value < (1 << width)


class FieldOverflow(ValueError):
    """An immediate does not fit its encoding field.

    Raised by :func:`signed_field` / :func:`unsigned_field`; encoders catch
    it and re-raise an :class:`~repro.common.errors.AsmError` carrying the
    offending instruction, so every ISA reports field overflow identically.
    """

    def __init__(self, value, width, signed):
        kind = "signed" if signed else "unsigned"
        super().__init__(
            f"immediate {value} does not fit a {width}-bit {kind} field"
        )
        self.value = value
        self.width = width
        self.signed = signed


def signed_field(value, width):
    """Encode ``value`` as a ``width``-bit two's-complement field.

    Returns the masked unsigned field bits; raises :class:`FieldOverflow`
    when the value is out of range.  The shared range/mask discipline of
    every ISA encoder (see ``repro/*/encoding.py``).
    """
    if not fits_signed(value, width):
        raise FieldOverflow(value, width, signed=True)
    return value & ((1 << width) - 1)


def unsigned_field(value, width):
    """Encode ``value`` as a ``width``-bit unsigned field (masked bits).

    Raises :class:`FieldOverflow` when the value is out of range.
    """
    if not fits_unsigned(value, width):
        raise FieldOverflow(value, width, signed=False)
    return value
