"""Shared low-level utilities: 32-bit arithmetic, errors.

Everything in the reproduction models a 32-bit machine (the paper equalizes
STRAIGHT to RV32IM), so all word arithmetic funnels through :mod:`.bitops`.
"""

from repro.common.bitops import (
    MASK32,
    sext,
    to_signed,
    to_unsigned,
    wrap32,
    bits,
    fits_signed,
    fits_unsigned,
)
from repro.common.errors import (
    ReproError,
    AsmError,
    LinkError,
    CompileError,
    SimulationError,
    IRError,
)

__all__ = [
    "MASK32",
    "sext",
    "to_signed",
    "to_unsigned",
    "wrap32",
    "bits",
    "fits_signed",
    "fits_unsigned",
    "ReproError",
    "AsmError",
    "LinkError",
    "CompileError",
    "SimulationError",
    "IRError",
]
