"""Shared memory layout for both target machines.

Both simulated machines (STRAIGHT and the RV32IM superscalar baseline) use a
32-bit byte-addressed flat memory with word-aligned accesses and the same
segment layout, so compiled programs are directly comparable.
"""

#: Base byte address of the text (code) segment.
TEXT_BASE = 0x0000_1000

#: Base byte address of the data (globals) segment.
DATA_BASE = 0x0010_0000

#: Initial stack pointer (stack grows toward lower addresses).
STACK_TOP = 0x0080_0000

#: Bytes per instruction / memory word.
WORD_BYTES = 4
