"""STRAIGHT assembler: text <-> assembly-level instruction lists.

Syntax (one item per line; ``#`` starts a comment)::

    Function_iota:              # a label
        ADDI [0] 0              # distance operands in brackets
        SLT [2] [4]
        BEZ [1] Label_for_end   # branch to label
        ST [4] [7] 0            # value, address, word offset
        JAL Function_callee
        SPADD -4
        LUI 0x100
        HALT
"""

from repro.common.errors import AsmError
from repro.straight.isa import SInstr, OPCODES


class AsmUnit:
    """A parsed assembly unit: ordered labels and instructions."""

    def __init__(self, items=None):
        self.items = list(items or [])  # ('label', name) | ('instr', SInstr)

    def add_label(self, name):
        self.items.append(("label", name))

    def add_instr(self, instr):
        self.items.append(("instr", instr))

    def instructions(self):
        return [item for kind, item in self.items if kind == "instr"]

    def to_text(self):
        lines = []
        for kind, item in self.items:
            if kind == "label":
                lines.append(f"{item}:")
            else:
                lines.append(f"    {item.to_asm()}")
        return "\n".join(lines) + "\n"


def parse_assembly(text):
    """Parse assembly text into an :class:`AsmUnit`."""
    unit = AsmUnit()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label or not _is_symbol(label):
                raise AsmError(f"line {lineno}: bad label {line!r}")
            unit.add_label(label)
            continue
        unit.add_instr(_parse_instr_line(line, lineno))
    return unit


def assemble_function(name, instrs, internal_labels=None):
    """Build an :class:`AsmUnit` for one function.

    ``instrs`` is a list of either SInstr or ``('label', name)`` marker pairs
    as produced by the backend; ``name`` becomes the leading entry label.
    """
    unit = AsmUnit()
    unit.add_label(name)
    for item in instrs:
        if isinstance(item, SInstr):
            unit.add_instr(item)
        else:
            kind, label = item
            if kind != "label":
                raise AsmError(f"bad assembly item {item!r}")
            unit.add_label(label)
    if internal_labels:
        for label in internal_labels:
            if label not in [i for k, i in unit.items if k == "label"]:
                raise AsmError(f"function {name}: missing internal label {label}")
    return unit


def _is_symbol(text):
    return text and (text[0].isalpha() or text[0] in "_.") and all(
        c.isalnum() or c in "_.$" for c in text
    )


def _parse_instr_line(line, lineno):
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].upper()
    if mnemonic not in OPCODES:
        raise AsmError(f"line {lineno}: unknown mnemonic {parts[0]!r}")
    srcs = []
    imm = None
    label = None
    for token in parts[1:]:
        if token.startswith("[") and token.endswith("]"):
            try:
                srcs.append(int(token[1:-1], 0))
            except ValueError:
                raise AsmError(f"line {lineno}: bad distance {token!r}") from None
        elif _looks_numeric(token):
            if imm is not None:
                raise AsmError(f"line {lineno}: duplicate immediate in {line!r}")
            imm = int(token, 0)
        else:
            if not _is_symbol(token):
                raise AsmError(f"line {lineno}: bad operand {token!r}")
            if label is not None:
                raise AsmError(f"line {lineno}: duplicate label operand")
            label = token
    try:
        return SInstr(mnemonic, srcs, imm, label)
    except AsmError as exc:
        raise AsmError(f"line {lineno}: {exc}") from None


def _looks_numeric(token):
    body = token[1:] if token[:1] in "+-" else token
    return body.isdigit() or body.lower().startswith("0x")
