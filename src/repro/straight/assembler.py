"""STRAIGHT assembler: text <-> assembly-level instruction lists.

Syntax (one item per line; ``#`` starts a comment)::

    Function_iota:              # a label
        ADDI [0] 0              # distance operands in brackets
        SLT [2] [4]
        BEZ [1] Label_for_end   # branch to label
        ST [4] [7] 0            # value, address, word offset
        JAL Function_callee
        SPADD -4
        LUI 0x100
        HALT
"""

from repro.common.errors import AsmError
from repro.straight.isa import SInstr, OPCODES


class AsmUnit:
    """A parsed assembly unit: ordered labels and instructions.

    ``origins`` (parallel to :meth:`instructions`) maps each instruction to
    its 1-based source line when the unit was parsed from text, else None.
    ``verify_manifest`` optionally carries the compiler's producer manifest
    (see :mod:`repro.analysis`) through assembly and linking.
    """

    def __init__(self, items=None, origins=None):
        self.items = list(items or [])  # ('label', name) | ('instr', SInstr)
        self.origins = list(origins or [])
        self.verify_manifest = None

    def add_label(self, name):
        self.items.append(("label", name))

    def add_instr(self, instr, origin=None):
        self.items.append(("instr", instr))
        self.origins.append(origin)

    def instructions(self):
        return [item for kind, item in self.items if kind == "instr"]

    def instruction_origins(self):
        """Per-instruction source lines, padded to the instruction count."""
        instrs = self.instructions()
        origins = list(self.origins[: len(instrs)])
        origins.extend([None] * (len(instrs) - len(origins)))
        return origins

    def to_text(self):
        lines = []
        for kind, item in self.items:
            if kind == "label":
                lines.append(f"{item}:")
            else:
                lines.append(f"    {item.to_asm()}")
        return "\n".join(lines) + "\n"


def parse_assembly(text):
    """Parse assembly text into an :class:`AsmUnit`."""
    unit = AsmUnit()
    seen_labels = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label or not _is_symbol(label):
                raise AsmError(f"bad label {line!r}", line=lineno)
            if label in seen_labels:
                raise AsmError(f"duplicate label {label!r}", line=lineno)
            seen_labels.add(label)
            unit.add_label(label)
            continue
        unit.add_instr(_parse_instr_line(line, lineno), origin=lineno)
    return unit


def assemble_function(name, instrs, internal_labels=None):
    """Build an :class:`AsmUnit` for one function.

    ``instrs`` is a list of either SInstr or ``('label', name)`` marker pairs
    as produced by the backend; ``name`` becomes the leading entry label.
    """
    unit = AsmUnit()
    unit.add_label(name)
    for item in instrs:
        if isinstance(item, SInstr):
            unit.add_instr(item)
        else:
            kind, label = item
            if kind != "label":
                raise AsmError(f"bad assembly item {item!r}")
            unit.add_label(label)
    if internal_labels:
        for label in internal_labels:
            if label not in [i for k, i in unit.items if k == "label"]:
                raise AsmError(f"function {name}: missing internal label {label}")
    return unit


def _is_symbol(text):
    return text and (text[0].isalpha() or text[0] in "_.") and all(
        c.isalnum() or c in "_.$" for c in text
    )


def _parse_instr_line(line, lineno):
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].upper()
    if mnemonic not in OPCODES:
        raise AsmError(f"unknown mnemonic {parts[0]!r}", line=lineno)
    srcs = []
    imm = None
    label = None
    for token in parts[1:]:
        if token.startswith("[") and token.endswith("]"):
            try:
                srcs.append(int(token[1:-1], 0))
            except ValueError:
                raise AsmError(f"bad distance {token!r}", line=lineno) from None
        elif _looks_numeric(token):
            if imm is not None:
                raise AsmError(f"duplicate immediate in {line!r}", line=lineno)
            imm = int(token, 0)
        else:
            if not _is_symbol(token):
                raise AsmError(f"bad operand {token!r}", line=lineno)
            if label is not None:
                raise AsmError("duplicate label operand", line=lineno)
            label = token
    try:
        return SInstr(mnemonic, srcs, imm, label)
    except AsmError as exc:
        raise AsmError(str(exc), line=lineno) from None


def _looks_numeric(token):
    body = token[1:] if token[:1] in "+-" else token
    return body.isdigit() or body.lower().startswith("0x")
