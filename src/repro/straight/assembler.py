"""STRAIGHT assembler: text <-> assembly-level instruction lists.

Syntax (one item per line; ``#`` starts a comment)::

    Function_iota:              # a label
        ADDI [0] 0              # distance operands in brackets
        SLT [2] [4]
        BEZ [1] Label_for_end   # branch to label
        ST [4] [7] 0            # value, address, word offset
        JAL Function_callee
        SPADD -4
        LUI 0x100
        HALT

The :class:`AsmUnit` container and the line-splitting/label-validation
driver live in :mod:`repro.isa.asmcore`; this module contributes only the
STRAIGHT instruction-line grammar.
"""

from repro.common.errors import AsmError
from repro.isa.asmcore import AsmUnit, is_symbol, parse_assembly_text
from repro.straight.isa import SInstr, OPCODES

__all__ = ["AsmUnit", "parse_assembly", "assemble_function"]


def parse_assembly(text):
    """Parse assembly text into an :class:`AsmUnit`."""
    return parse_assembly_text(text, _parse_instr_line, validate_labels=True)


def assemble_function(name, instrs, internal_labels=None):
    """Build an :class:`AsmUnit` for one function.

    ``instrs`` is a list of either SInstr or ``('label', name)`` marker pairs
    as produced by the backend; ``name`` becomes the leading entry label.
    """
    unit = AsmUnit()
    unit.add_label(name)
    for item in instrs:
        if isinstance(item, SInstr):
            unit.add_instr(item)
        else:
            kind, label = item
            if kind != "label":
                raise AsmError(f"bad assembly item {item!r}")
            unit.add_label(label)
    if internal_labels:
        for label in internal_labels:
            if label not in [i for k, i in unit.items if k == "label"]:
                raise AsmError(f"function {name}: missing internal label {label}")
    return unit


def _parse_instr_line(line, lineno):
    parts = line.replace(",", " ").split()
    mnemonic = parts[0].upper()
    if mnemonic not in OPCODES:
        raise AsmError(f"unknown mnemonic {parts[0]!r}", line=lineno)
    srcs = []
    imm = None
    label = None
    for token in parts[1:]:
        if token.startswith("[") and token.endswith("]"):
            try:
                srcs.append(int(token[1:-1], 0))
            except ValueError:
                raise AsmError(f"bad distance {token!r}", line=lineno) from None
        elif _looks_numeric(token):
            if imm is not None:
                raise AsmError(f"duplicate immediate in {line!r}", line=lineno)
            imm = int(token, 0)
        else:
            if not is_symbol(token):
                raise AsmError(f"bad operand {token!r}", line=lineno)
            if label is not None:
                raise AsmError("duplicate label operand", line=lineno)
            label = token
    try:
        return SInstr(mnemonic, srcs, imm, label)
    except AsmError as exc:
        raise AsmError(str(exc), line=lineno) from None


def _looks_numeric(token):
    body = token[1:] if token[:1] in "+-" else token
    return body.isdigit() or body.lower().startswith("0x")
