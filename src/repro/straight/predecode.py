"""Pre-decoded STRAIGHT instructions: decode a linked binary exactly once.

The functional simulator used to re-derive everything about an instruction
on every dynamic execution: mnemonic-table membership tests, opcode-class
lookups, immediate normalization, branch-target arithmetic.  Lockstep
co-simulation pays that cost *twice* (the primary interpreter plus the
golden shadow machine).  This module decodes the whole text segment into an
immutable array of :class:`DecodedOp` records — one per static instruction,
with the dispatch kind resolved to a small int, the ALU/compare evaluator
pre-bound, immediates pre-wrapped and branch/jump targets pre-resolved to
instruction indices — and memoizes the array on the program object, so
every interpreter over the same binary (primary, golden, fault campaigns)
shares one decode.

Decoding is purely static: a :class:`DecodedOp` never holds run state, so
sharing across interpreter instances (and threads) is safe.
"""

from functools import partial

from repro.common.bitops import wrap32
from repro.common.layout import WORD_BYTES
from repro.ir.passes.constfold import eval_binop, eval_icmp

#: Dispatch kinds (dense ints; the interpreter dispatches on these instead
#: of hashing mnemonic strings per retired instruction).
K_ALU = 0        # binop of two sources
K_ALU_IMM = 1    # binop of one source and a pre-wrapped immediate
K_CMP = 2        # compare of two sources
K_CMP_IMM = 3    # compare of one source and a pre-wrapped immediate
K_LUI = 4
K_RMOV = 5
K_LOAD = 6
K_STORE = 7
K_BEZ = 8
K_BNZ = 9
K_JUMP = 10      # J
K_CALL = 11      # JAL
K_RET = 12       # JR
K_SPADD = 13
K_OUT = 14
K_NOP = 15
K_HALT = 16

_ALU_BINOPS = {
    "ADD": "add",
    "SUB": "sub",
    "AND": "and",
    "OR": "or",
    "XOR": "xor",
    "SLL": "shl",
    "SRL": "lshr",
    "SRA": "ashr",
    "MUL": "mul",
    "DIV": "sdiv",
    "DIVU": "udiv",
    "REM": "srem",
    "REMU": "urem",
    "ADDI": "add",
    "ANDI": "and",
    "ORI": "or",
    "XORI": "xor",
    "SLLI": "shl",
    "SRLI": "lshr",
    "SRAI": "ashr",
}

_CMP_OPS = {"SLT": "slt", "SLTU": "ult", "SLTI": "slt", "SLTUI": "ult"}


class DecodedOp:
    """One statically-decoded instruction (immutable after construction)."""

    __slots__ = (
        "index",      # text-segment instruction index
        "pc",         # absolute PC of this instruction
        "kind",       # one of the K_* dispatch ints
        "mnemonic",
        "op_class",
        "srcs",       # operand distances (tuple of ints)
        "imm",        # raw immediate (or None)
        "operand",    # kind-specific precomputation (see decode_program)
        "target_index",  # branch/jump destination instruction index
        "target_pc",  # branch/jump destination PC
        "instr",      # the original SInstr (error paths, tools)
    )

    def __init__(self, index, pc, kind, instr, operand=None,
                 target_index=None, target_pc=None):
        self.index = index
        self.pc = pc
        self.kind = kind
        self.mnemonic = instr.mnemonic
        self.op_class = instr.op_class
        self.srcs = instr.srcs
        self.imm = instr.imm
        self.operand = operand
        self.target_index = target_index
        self.target_pc = target_pc
        self.instr = instr

    def __repr__(self):
        return f"DecodedOp({self.index}, {self.mnemonic}, kind={self.kind})"


def _decode_one(index, instr, text_base):
    pc = text_base + index * WORD_BYTES
    mnemonic = instr.mnemonic
    operand = None
    target_index = None
    target_pc = None
    if mnemonic in _ALU_BINOPS:
        evaluator = partial(eval_binop, _ALU_BINOPS[mnemonic])
        if len(instr.srcs) == 2:
            kind = K_ALU
            operand = evaluator
        else:
            kind = K_ALU_IMM
            operand = (evaluator, wrap32(instr.imm))
    elif mnemonic in _CMP_OPS:
        evaluator = partial(eval_icmp, _CMP_OPS[mnemonic])
        if len(instr.srcs) == 2:
            kind = K_CMP
            operand = evaluator
        else:
            kind = K_CMP_IMM
            operand = (evaluator, wrap32(instr.imm))
    elif mnemonic == "LUI":
        kind = K_LUI
        operand = wrap32(instr.imm << 12)
    elif mnemonic == "RMOV":
        kind = K_RMOV
    elif mnemonic == "LD":
        kind = K_LOAD
        operand = instr.imm
    elif mnemonic == "ST":
        kind = K_STORE
        operand = instr.imm * WORD_BYTES
    elif mnemonic in ("BEZ", "BNZ"):
        kind = K_BEZ if mnemonic == "BEZ" else K_BNZ
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
    elif mnemonic == "J":
        kind = K_JUMP
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
    elif mnemonic == "JAL":
        kind = K_CALL
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
        operand = pc + WORD_BYTES  # the link value
    elif mnemonic == "JR":
        kind = K_RET
    elif mnemonic == "SPADD":
        kind = K_SPADD
        operand = instr.imm
    elif mnemonic == "OUT":
        kind = K_OUT
    elif mnemonic == "NOP":
        kind = K_NOP
    elif mnemonic == "HALT":
        kind = K_HALT
    else:  # pragma: no cover - the opcode table is closed
        raise ValueError(f"unimplemented mnemonic {mnemonic}")
    return DecodedOp(index, pc, kind, instr, operand, target_index, target_pc)


def decode_program(program):
    """The immutable decoded-op array of ``program``, decoded exactly once.

    Memoized on the program object; every interpreter instance over the
    same linked binary — including the lockstep golden machine — shares
    one array.
    """
    decoded = getattr(program, "_decoded_ops", None)
    if decoded is None or len(decoded) != len(program.instrs):
        decoded = tuple(
            _decode_one(index, instr, program.text_base)
            for index, instr in enumerate(program.instrs)
        )
        program._decoded_ops = decoded
    return decoded
