"""Pre-decoded STRAIGHT instructions: decode a linked binary exactly once.

The :class:`~repro.isa.predecode.DecodedOp` record and the memoizing
:func:`repro.isa.predecode.decode_program` driver are ISA-neutral and live
in :mod:`repro.isa.predecode`; this module contributes only the STRAIGHT
half — the dense ``K_*`` dispatch kind space and the static
``_decode_one`` hook that maps each :class:`~repro.straight.isa.SInstr`
onto it, with the ALU/compare evaluator pre-bound, immediates pre-wrapped
and branch/jump targets pre-resolved to instruction indices.
"""

from functools import partial

from repro.common.bitops import wrap32
from repro.common.layout import WORD_BYTES
from repro.ir.passes.constfold import eval_binop, eval_icmp
from repro.isa.predecode import DecodedOp
from repro.isa.predecode import decode_program as _decode_program

#: Dispatch kinds (dense ints; the interpreter dispatches on these instead
#: of hashing mnemonic strings per retired instruction).
K_ALU = 0        # binop of two sources
K_ALU_IMM = 1    # binop of one source and a pre-wrapped immediate
K_CMP = 2        # compare of two sources
K_CMP_IMM = 3    # compare of one source and a pre-wrapped immediate
K_LUI = 4
K_RMOV = 5
K_LOAD = 6
K_STORE = 7
K_BEZ = 8
K_BNZ = 9
K_JUMP = 10      # J
K_CALL = 11      # JAL
K_RET = 12       # JR
K_SPADD = 13
K_OUT = 14
K_NOP = 15
K_HALT = 16

_ALU_BINOPS = {
    "ADD": "add",
    "SUB": "sub",
    "AND": "and",
    "OR": "or",
    "XOR": "xor",
    "SLL": "shl",
    "SRL": "lshr",
    "SRA": "ashr",
    "MUL": "mul",
    "DIV": "sdiv",
    "DIVU": "udiv",
    "REM": "srem",
    "REMU": "urem",
    "ADDI": "add",
    "ANDI": "and",
    "ORI": "or",
    "XORI": "xor",
    "SLLI": "shl",
    "SRLI": "lshr",
    "SRAI": "ashr",
}

_CMP_OPS = {"SLT": "slt", "SLTU": "ult", "SLTI": "slt", "SLTUI": "ult"}


def _decode_one(index, instr, text_base):
    pc = text_base + index * WORD_BYTES
    mnemonic = instr.mnemonic
    operand = None
    target_index = None
    target_pc = None
    if mnemonic in _ALU_BINOPS:
        evaluator = partial(eval_binop, _ALU_BINOPS[mnemonic])
        if len(instr.srcs) == 2:
            kind = K_ALU
            operand = evaluator
        else:
            kind = K_ALU_IMM
            operand = (evaluator, wrap32(instr.imm))
    elif mnemonic in _CMP_OPS:
        evaluator = partial(eval_icmp, _CMP_OPS[mnemonic])
        if len(instr.srcs) == 2:
            kind = K_CMP
            operand = evaluator
        else:
            kind = K_CMP_IMM
            operand = (evaluator, wrap32(instr.imm))
    elif mnemonic == "LUI":
        kind = K_LUI
        operand = wrap32(instr.imm << 12)
    elif mnemonic == "RMOV":
        kind = K_RMOV
    elif mnemonic == "LD":
        kind = K_LOAD
        operand = instr.imm
    elif mnemonic == "ST":
        kind = K_STORE
        operand = instr.imm * WORD_BYTES
    elif mnemonic in ("BEZ", "BNZ"):
        kind = K_BEZ if mnemonic == "BEZ" else K_BNZ
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
    elif mnemonic == "J":
        kind = K_JUMP
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
    elif mnemonic == "JAL":
        kind = K_CALL
        target_index = index + instr.imm
        target_pc = pc + instr.imm * WORD_BYTES
        operand = pc + WORD_BYTES  # the link value
    elif mnemonic == "JR":
        kind = K_RET
    elif mnemonic == "SPADD":
        kind = K_SPADD
        operand = instr.imm
    elif mnemonic == "OUT":
        kind = K_OUT
    elif mnemonic == "NOP":
        kind = K_NOP
    elif mnemonic == "HALT":
        kind = K_HALT
    else:  # pragma: no cover - the opcode table is closed
        raise ValueError(f"unimplemented mnemonic {mnemonic}")
    return DecodedOp(index, pc, kind, instr, operand, target_index, target_pc)


def decode_program(program):
    """The memoized decoded-op array of ``program`` (STRAIGHT kinds)."""
    return _decode_program(program, _decode_one)
