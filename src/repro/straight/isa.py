"""STRAIGHT instruction set specification.

Instruction formats (32-bit words; fields from the paper's Fig. 1(b) concept,
field widths fixed by this reproduction):

======  =======================================  ==========================
format  bit layout (31..0)                        used by
======  =======================================  ==========================
R2      op[31:25] s1[24:15] s2[14:5] imm5[4:0]   reg-reg ALU, ST
R1I     op[31:25] s1[24:15] imm15[14:0]          reg-imm ALU, LD, BEZ/BNZ
R1      op[31:25] s1[24:15] 0[14:0]              RMOV, JR, OUT
I25     op[31:25] imm25[24:0]                    J, JAL, SPADD
I20     op[31:25] imm20[19:0]                    LUI
N       op[31:25] 0[24:0]                        NOP, HALT
======  =======================================  ==========================

Source fields are 10 bits, so distances span 1..1023 and ``[0]`` denotes the
zero register (paper: "a source operand field can span up to 10 bits ...
[0] is decoded as a zero register").  Branch/jump immediates are PC-relative
*word* offsets.  The ST immediate is a word-scaled 5-bit offset; the compiler
falls back to explicit address arithmetic for larger offsets.
"""

from repro.common.errors import AsmError

#: Largest encodable operand distance (2**10 - 1).
MAX_DISTANCE = 1023


class OpSpec:
    """Static description of one opcode."""

    __slots__ = ("mnemonic", "code", "fmt", "op_class", "num_srcs", "has_imm")

    def __init__(self, mnemonic, code, fmt, op_class, num_srcs, has_imm):
        self.mnemonic = mnemonic
        self.code = code
        self.fmt = fmt
        self.op_class = op_class
        self.num_srcs = num_srcs
        self.has_imm = has_imm


def _build_opcode_table():
    table = {}
    code = 1  # opcode 0 reserved so an all-zero word is not a valid instruction

    def add(mnemonic, fmt, op_class, num_srcs, has_imm):
        nonlocal code
        table[mnemonic] = OpSpec(mnemonic, code, fmt, op_class, num_srcs, has_imm)
        code += 1

    for m in ("ADD", "SUB", "AND", "OR", "XOR", "SLL", "SRL", "SRA", "SLT", "SLTU"):
        add(m, "R2", "alu", 2, False)
    add("MUL", "R2", "mul", 2, False)
    for m in ("DIV", "DIVU", "REM", "REMU"):
        add(m, "R2", "div", 2, False)
    for m in (
        "ADDI",
        "ANDI",
        "ORI",
        "XORI",
        "SLLI",
        "SRLI",
        "SRAI",
        "SLTI",
        "SLTUI",
    ):
        add(m, "R1I", "alu", 1, True)
    add("LUI", "I20", "alu", 0, True)
    add("RMOV", "R1", "alu", 1, False)
    add("LD", "R1I", "load", 1, True)
    add("ST", "R2", "store", 2, True)  # imm5 word-scaled offset
    add("BEZ", "R1I", "branch", 1, True)
    add("BNZ", "R1I", "branch", 1, True)
    add("J", "I25", "jump", 0, True)
    add("JAL", "I25", "jump", 0, True)
    add("JR", "R1", "jump", 1, False)
    add("SPADD", "I25", "alu", 0, True)
    add("OUT", "R1", "sys", 1, False)
    add("NOP", "N", "nop", 0, False)
    add("HALT", "N", "sys", 0, False)
    return table


#: mnemonic -> OpSpec
OPCODES = _build_opcode_table()

#: opcode number -> OpSpec
OPCODES_BY_CODE = {spec.code: spec for spec in OPCODES.values()}


def op_class_of(mnemonic):
    return OPCODES[mnemonic].op_class


class SInstr:
    """One STRAIGHT instruction at the assembly level.

    ``srcs`` holds operand distances (ints, 0..MAX_DISTANCE); ``imm`` holds
    the immediate where the format has one; ``label`` holds an unresolved
    branch/jump target which the linker converts into a PC-relative word
    offset written to ``imm``.
    """

    __slots__ = ("mnemonic", "srcs", "imm", "label")

    def __init__(self, mnemonic, srcs=(), imm=None, label=None):
        if mnemonic not in OPCODES:
            raise AsmError(f"unknown STRAIGHT mnemonic {mnemonic!r}")
        spec = OPCODES[mnemonic]
        srcs = tuple(srcs)
        if len(srcs) != spec.num_srcs:
            raise AsmError(
                f"{mnemonic} takes {spec.num_srcs} source(s), got {len(srcs)}"
            )
        for dist in srcs:
            if not 0 <= dist <= MAX_DISTANCE:
                raise AsmError(f"{mnemonic}: distance {dist} out of range")
        if spec.has_imm and imm is None and label is None:
            raise AsmError(f"{mnemonic} requires an immediate or label")
        if not spec.has_imm and imm is not None:
            raise AsmError(f"{mnemonic} does not take an immediate")
        self.mnemonic = mnemonic
        self.srcs = srcs
        self.imm = imm
        self.label = label

    @property
    def spec(self):
        return OPCODES[self.mnemonic]

    @property
    def op_class(self):
        return self.spec.op_class

    def __repr__(self):
        parts = [self.mnemonic]
        parts.extend(f"[{d}]" for d in self.srcs)
        if self.label is not None:
            parts.append(self.label)
        elif self.imm is not None:
            parts.append(str(self.imm))
        return " ".join(parts)

    def to_asm(self):
        """Canonical assembly text for this instruction."""
        return repr(self)
