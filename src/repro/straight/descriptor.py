"""Registry descriptor for the STRAIGHT ISA."""

from repro.isa import IsaDescriptor, register
from repro.straight.isa import MAX_DISTANCE, OPCODES
from repro.straight.assembler import parse_assembly
from repro.straight.encoding import decode, encode
from repro.straight.interpreter import StraightInterpreter
from repro.straight.linker import link_program, startup_stub
from repro.straight.predecode import decode_program

#: Encoded field widths per format (isa.py's format table; unused padding
#: bits are not payload).
FORMAT_FIELDS = {
    "R2": {"opcode": 7, "src1": 10, "src2": 10, "imm": 5},
    "R1I": {"opcode": 7, "src1": 10, "imm": 15},
    "R1": {"opcode": 7, "src1": 10},
    "I25": {"opcode": 7, "imm": 25},
    "I20": {"opcode": 7, "imm": 20},
    "N": {"opcode": 7},
}


def _compile_module(module, max_distance=None, **opts):
    from repro.compiler.straight_backend import compile_to_straight

    return compile_to_straight(
        module,
        max_distance=MAX_DISTANCE if max_distance is None else max_distance,
        **opts,
    )


def _make_interpreter(program, collect_trace=False, **kw):
    return StraightInterpreter(program, collect_trace=collect_trace, **kw)


def _static_check(program, lint=False):
    from repro.analysis import verify_program

    return verify_program(program, lint=lint)


def _analysis():
    from repro.straight.analysis import StraightAnalysisSupport

    return StraightAnalysisSupport()


def _cfg_2way(**overrides):
    from repro.core.configs import straight_2way

    return straight_2way(**overrides)


def _cfg_4way(**overrides):
    from repro.core.configs import straight_4way

    return straight_4way(**overrides)


DESCRIPTOR = register(
    IsaDescriptor(
        name="straight",
        display_name="STRAIGHT",
        register_model="distance",
        opcodes=OPCODES,
        format_fields=FORMAT_FIELDS,
        parse_assembly=parse_assembly,
        link=link_program,
        startup_stub=startup_stub,
        encode=encode,
        decode=decode,
        make_interpreter=_make_interpreter,
        compile_module=_compile_module,
        binary_labels={
            "STRAIGHT-RE+": {"redundancy_elimination": True},
            "STRAIGHT-RAW": {"redundancy_elimination": False},
        },
        targets={
            "straight": {"redundancy_elimination": True},
            "straight-raw": {"redundancy_elimination": False},
        },
        frontend="straight",
        config_factories={"2way": _cfg_2way, "4way": _cfg_4way},
        static_check=_static_check,
        predecode=decode_program,
        analysis=_analysis,
    )
)
