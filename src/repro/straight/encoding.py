"""STRAIGHT binary encoding: assembly-level instructions <-> 32-bit words."""

from repro.common.bitops import (
    FieldOverflow,
    bits,
    sext,
    signed_field,
    unsigned_field,
)
from repro.common.errors import AsmError
from repro.straight.isa import SInstr, OPCODES_BY_CODE

_IMM_WIDTH = {"R2": 5, "R1I": 15, "I25": 25, "I20": 20}


def encode(instr):
    """Encode an :class:`SInstr` (with resolved immediate) to a 32-bit word."""
    spec = instr.spec
    if instr.label is not None:
        raise AsmError(f"cannot encode unresolved label in {instr!r}")
    word = spec.code << 25
    fmt = spec.fmt
    if fmt in ("R2", "R1I", "R1"):
        word |= (instr.srcs[0] & 0x3FF) << 15
    if fmt == "R2":
        word |= (instr.srcs[1] & 0x3FF) << 5
    imm = instr.imm if spec.has_imm else None
    if imm is not None:
        width = _IMM_WIDTH[fmt]
        try:
            if fmt == "I20":
                word |= unsigned_field(imm, width)
            else:
                word |= signed_field(imm, width)
        except FieldOverflow as exc:
            raise AsmError(f"{instr!r}: {exc}") from None
    return word


def decode(word):
    """Decode a 32-bit word back to an :class:`SInstr`."""
    code = bits(word, 31, 25)
    spec = OPCODES_BY_CODE.get(code)
    if spec is None:
        raise AsmError(f"invalid STRAIGHT opcode {code} in word {word:#010x}")
    fmt = spec.fmt
    srcs = []
    if fmt in ("R2", "R1I", "R1"):
        srcs.append(bits(word, 24, 15))
    if fmt == "R2":
        srcs.append(bits(word, 14, 5))
    imm = None
    if spec.has_imm:
        if fmt == "R2":
            imm = sext(bits(word, 4, 0), 5)
        elif fmt == "R1I":
            imm = sext(bits(word, 14, 0), 15)
        elif fmt == "I25":
            imm = sext(bits(word, 24, 0), 25)
        elif fmt == "I20":
            imm = bits(word, 19, 0)
    return SInstr(spec.mnemonic, srcs, imm)
