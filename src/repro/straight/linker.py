"""STRAIGHT linker: combine assembly units + data layout into a program image.

Branch/jump labels become PC-relative word offsets; global symbols were
already resolved to absolute data addresses by the backend (both backends
share :class:`repro.compiler.data_layout.DataLayout`), so no relocations
remain at this stage.
"""

from repro.common.errors import LinkError
from repro.common.layout import TEXT_BASE, WORD_BYTES
from repro.isa.asmcore import collect_labels
from repro.straight.isa import SInstr, MAX_DISTANCE
from repro.straight.encoding import encode
from repro.straight.assembler import parse_assembly


class StraightProgram:
    """A linked STRAIGHT executable image."""

    def __init__(
        self,
        instrs,
        labels,
        data_words,
        data_base,
        entry_label="_start",
        max_distance=MAX_DISTANCE,
        origins=None,
        manifest=None,
    ):
        self.instrs = instrs  # resolved SInstr list, index = word position
        self.labels = labels  # label -> instruction index
        self.data_words = data_words
        self.data_base = data_base
        self.text_base = TEXT_BASE
        self.entry_pc = TEXT_BASE + labels[entry_label] * WORD_BYTES
        self.max_distance = max_distance
        # Per-instruction assembly source lines (None where unknown) and the
        # compiler's producer manifest (see repro.analysis), both optional.
        self.origins = list(origins) if origins else [None] * len(instrs)
        self.manifest = manifest

    @property
    def text_words(self):
        """The encoded text segment."""
        return [encode(i) for i in self.instrs]

    def pc_of(self, label):
        return self.text_base + self.labels[label] * WORD_BYTES

    def index_of_pc(self, pc):
        return (pc - self.text_base) // WORD_BYTES

    def disassemble(self):
        """Human-readable listing with addresses and labels."""
        by_index = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, instr in enumerate(self.instrs):
            for label in by_index.get(index, ()):
                lines.append(f"{label}:")
            pc = self.text_base + index * WORD_BYTES
            lines.append(f"  {pc:#08x}: {instr.to_asm()}")
        return "\n".join(lines)


def startup_stub():
    """The runtime entry: call main, halt when it returns.

    ``main`` takes no arguments in the workload suite, so the calling
    convention needs no argument producers before the JAL.
    """
    return parse_assembly(
        """
_start:
    JAL main
    HALT
"""
    )


def link_program(units, data_words=(), data_base=0, max_distance=MAX_DISTANCE):
    """Link assembly units (startup stub first) into a :class:`StraightProgram`."""
    labels = collect_labels(
        [pair for unit in units for pair in unit.items]
    )

    instrs = []
    origins = []
    instr_manifest = {}
    func_manifest = {}
    any_manifest = False
    position = 0
    for unit in units:
        unit_origins = unit.instruction_origins()
        unit_manifest = getattr(unit, "verify_manifest", None)
        if unit_manifest is not None:
            any_manifest = True
            func_manifest[unit_manifest["function"]["name"]] = unit_manifest[
                "function"
            ]
        within = 0
        for kind, item in unit.items:
            if kind == "label":
                continue
            instr = item
            if instr.label is not None:
                if instr.label not in labels:
                    raise LinkError(f"undefined label {instr.label!r}")
                offset = labels[instr.label] - position
                instr = SInstr(instr.mnemonic, instr.srcs, offset)
            instrs.append(instr)
            origins.append(unit_origins[within])
            if unit_manifest is not None:
                instr_manifest[position] = unit_manifest["instrs"][within]
            position += 1
            within += 1

    if "_start" not in labels:
        raise LinkError("no _start label; pass startup_stub() as the first unit")
    manifest = (
        {"instrs": instr_manifest, "functions": func_manifest}
        if any_manifest
        else None
    )
    return StraightProgram(
        instrs,
        labels,
        list(data_words),
        data_base,
        max_distance=max_distance,
        origins=origins,
        manifest=manifest,
    )
