"""STRAIGHT's analysis support: the distance-operand control/dataflow plug.

Supplies the :class:`~repro.analysis.support.IsaAnalysisSupport` instance
the STRAIGHT descriptor hands to the generic dataflow framework.  The
control protocol is the one the CFG reconstruction has always used
(``JAL`` is a call that falls through — the callee is opaque; ``JR`` and
``HALT`` terminate; ``BEZ``/``BNZ`` branch and fall through); the dataflow
protocol models the paper's uniform shift-in: *every* retired instruction
pushes exactly one register-age slot, so a distance-``d`` operand at a
point where the block has pushed ``p`` slots reads intra-block producer
``p - d`` when ``d <= p`` and live-in age ``d - p`` otherwise.
"""

from repro.analysis.support import BlockDeps, IsaAnalysisSupport

#: Mnemonics that terminate a basic block.
_BLOCK_ENDERS = ("BEZ", "BNZ", "J", "JR", "HALT")


class StraightAnalysisSupport(IsaAnalysisSupport):
    """Control + dataflow protocol of the STRAIGHT ISA."""

    name = "straight"
    register_model = "distance"
    issue_code = "STR010"

    def successors(self, program, index):
        instr = program.instrs[index]
        n = len(program.instrs)
        mnemonic = instr.mnemonic
        if mnemonic in ("HALT", "JR"):
            return [], None, None
        if mnemonic in ("BEZ", "BNZ", "J", "JAL"):
            target = index + (instr.imm or 0)
            if not 0 <= target < n:
                issue = (
                    self.issue_code,
                    f"{mnemonic} target index {target} outside text segment",
                )
                if mnemonic == "J":
                    return [], None, issue
                return [index + 1] if index + 1 < n else [], None, issue
            if mnemonic == "J":
                return [target], None, None
            if mnemonic == "JAL":
                succs = [index + 1] if index + 1 < n else []
                return succs, target, None
            succs = [target]
            if index + 1 < n:
                succs.append(index + 1)
            return succs, None, None
        if index + 1 < n:
            return [index + 1], None, None
        return [], None, (
            self.issue_code,
            f"{mnemonic} falls off the end of the text segment",
        )

    def ends_block(self, program, index):
        return program.instrs[index].mnemonic in _BLOCK_ENDERS

    def is_call(self, program, index):
        return program.instrs[index].mnemonic == "JAL"

    def is_return(self, program, index):
        return program.instrs[index].mnemonic == "JR"

    def block_deps(self, program, indices):
        slots = []  # most recent push first: producer index, None if opaque
        call_seen = False
        producers = []
        for index in indices:
            instr = program.instrs[index]
            prods = []
            for dist in instr.srcs:
                if dist == 0:
                    prods.append(None)
                elif dist <= len(slots):
                    prods.append(
                        ("intra", slots[dist - 1])
                        if slots[dist - 1] is not None
                        else None
                    )
                elif call_seen:
                    prods.append(None)  # caller values a call pushed away
                else:
                    prods.append(("in", dist - len(slots)))
            producers.append(tuple(prods))
            if instr.mnemonic == "JAL":
                # The callee's JR value and return value both become ready
                # when the call completes; deeper slots are dead.
                call_seen = True
                slots = [index, index]
            else:
                slots.insert(0, index)
        out_defs = {}
        for depth, producer in enumerate(slots, start=1):
            if producer is not None:
                out_defs[depth] = producer
        return BlockDeps(indices, producers, out_defs)
