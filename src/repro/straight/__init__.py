"""The STRAIGHT ISA: specification, encoding, assembler, linker, and the
functional instruction-set simulator.

Key properties (paper §III-A):

* a source operand is the *distance*, in dynamic (control-flow) instruction
  count, back to its producer; distance 0 is the zero register;
* every instruction occupies exactly one destination register — even stores,
  branches and NOPs — so distance arithmetic stays trivial and the Register
  Pointer (RP) increments once per fetched instruction;
* the only overwritable architectural register is the stack pointer SP,
  updated exclusively by ``SPADD imm`` (which also writes the new SP value to
  its ordinary write-once destination);
* a register's lifetime is bounded by the maximum encodable distance, which
  makes ``MAX_RP = max_distance + ROB entries`` physical registers sufficient.
"""

from repro.straight.isa import (
    SInstr,
    OPCODES,
    OpSpec,
    MAX_DISTANCE,
    op_class_of,
)
from repro.straight.encoding import encode, decode
from repro.straight.assembler import assemble_function, parse_assembly
from repro.straight.linker import link_program, StraightProgram, startup_stub
from repro.straight.interpreter import StraightInterpreter

__all__ = [
    "SInstr",
    "OPCODES",
    "OpSpec",
    "MAX_DISTANCE",
    "op_class_of",
    "encode",
    "decode",
    "assemble_function",
    "parse_assembly",
    "link_program",
    "StraightProgram",
    "startup_stub",
    "StraightInterpreter",
]
