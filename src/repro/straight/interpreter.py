"""STRAIGHT functional instruction-set simulator.

Models the architectural state exactly as the paper defines it:

* a circular register file of ``MAX_RP`` write-once registers, the
  destination register of the N-th retired instruction being ``N mod MAX_RP``;
* sources resolved by subtracting the encoded distance from the instruction's
  own register number;
* the stack pointer SP, updated only by SPADD;
* a flat word memory and an output channel (OUT).

With ``check_distances=True`` (the default) every source read verifies that
the addressed physical register was written *exactly* ``distance``
instructions ago — i.e. that the value hasn't been overwritten by register
aliasing and that the compiler's static distances are dynamically exact.
This is the property STRAIGHT hardware relies on; violating code is a
compiler bug and the simulator raises immediately instead of computing
garbage.
"""

from repro.common.bitops import wrap32
from repro.common.errors import SimulationError
from repro.common.layout import STACK_TOP, WORD_BYTES
from repro.common.trace import TraceEntry
from repro.ir.passes.constfold import eval_binop, eval_icmp

_ALU_BINOPS = {
    "ADD": "add",
    "SUB": "sub",
    "AND": "and",
    "OR": "or",
    "XOR": "xor",
    "SLL": "shl",
    "SRL": "lshr",
    "SRA": "ashr",
    "MUL": "mul",
    "DIV": "sdiv",
    "DIVU": "udiv",
    "REM": "srem",
    "REMU": "urem",
    "ADDI": "add",
    "ANDI": "and",
    "ORI": "or",
    "XORI": "xor",
    "SLLI": "shl",
    "SRLI": "lshr",
    "SRAI": "ashr",
}

_CMP_OPS = {"SLT": "slt", "SLTU": "ult", "SLTI": "slt", "SLTUI": "ult"}


class RunResult:
    """Outcome of an interpreter run."""

    def __init__(self, status, steps, output):
        self.status = status  # 'halt' | 'limit'
        self.steps = steps
        self.output = output

    def __repr__(self):
        return f"RunResult({self.status}, steps={self.steps})"


class StraightInterpreter:
    """Executes a linked :class:`~repro.straight.linker.StraightProgram`."""

    def __init__(
        self,
        program,
        max_rp=None,
        collect_trace=False,
        check_distances=True,
        rob_entries=256,
    ):
        self.program = program
        # MAX_RP = max distance + ROB entries (paper §III-B); the functional
        # simulator only needs it large enough that live values never alias.
        self.max_rp = max_rp or (program.max_distance + rob_entries)
        self.regs = [0] * self.max_rp
        self.written_seq = [None] * self.max_rp
        self.sp = STACK_TOP
        self.seq = 0  # retired-instruction counter == next destination id
        self.pc_index = program.index_of_pc(program.entry_pc)
        self.memory = {}
        for offset, word in enumerate(program.data_words):
            self.memory[(program.data_base + offset * WORD_BYTES) // 4] = wrap32(word)
        self.output = []
        self.collect_trace = collect_trace
        self.check_distances = check_distances
        self.trace = []
        self.halted = False
        # Statistics for the evaluation (Fig. 15 instruction mix, Fig. 16
        # source-distance distribution).
        self.mnemonic_counts = {}
        self.distance_hist = {}

    # -- architectural helpers ---------------------------------------------------

    def _read_source(self, distance):
        """Resolve one distance operand; returns (value, producer_seq)."""
        if distance == 0:
            return 0, None
        producer = self.seq - distance
        if producer < 0:
            raise SimulationError(
                f"pc={self._pc():#x}: distance {distance} reaches before "
                "program start"
            )
        reg = producer % self.max_rp
        if self.check_distances and self.written_seq[reg] != producer:
            raise SimulationError(
                f"pc={self._pc():#x}: distance {distance} names instruction "
                f"#{producer} but register {reg} holds the value of "
                f"#{self.written_seq[reg]} (stale/aliased operand)"
            )
        self.distance_hist[distance] = self.distance_hist.get(distance, 0) + 1
        return self.regs[reg], producer

    def _write_dest(self, value):
        reg = self.seq % self.max_rp
        self.regs[reg] = wrap32(value)
        self.written_seq[reg] = self.seq

    def _pc(self):
        return self.program.text_base + self.pc_index * WORD_BYTES

    def _load_word(self, addr):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned load {addr:#x}")
        return self.memory.get(addr // 4, 0)

    def _store_word(self, addr, value):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned store {addr:#x}")
        self.memory[addr // 4] = wrap32(value)

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps=10_000_000):
        """Run until HALT or ``max_steps``; returns a :class:`RunResult`."""
        steps = 0
        instrs = self.program.instrs
        n_instrs = len(instrs)
        while not self.halted and steps < max_steps:
            if not 0 <= self.pc_index < n_instrs:
                raise SimulationError(f"pc out of text segment: {self._pc():#x}")
            self.step(instrs[self.pc_index])
            steps += 1
        return RunResult("halt" if self.halted else "limit", steps, self.output)

    def step(self, instr):
        """Execute one instruction, updating all architectural state."""
        mnemonic = instr.mnemonic
        pc = self._pc()
        next_index = self.pc_index + 1
        dest_value = 0
        taken = False
        target_pc = None
        mem_addr = None
        src_values = []
        src_seqs = []
        for dist in instr.srcs:
            value, producer = self._read_source(dist)
            src_values.append(value)
            src_seqs.append(producer)

        if mnemonic in _ALU_BINOPS:
            rhs = src_values[1] if len(src_values) == 2 else wrap32(instr.imm)
            dest_value = eval_binop(_ALU_BINOPS[mnemonic], src_values[0], rhs)
        elif mnemonic in _CMP_OPS:
            rhs = src_values[1] if len(src_values) == 2 else wrap32(instr.imm)
            dest_value = eval_icmp(_CMP_OPS[mnemonic], src_values[0], rhs)
        elif mnemonic == "LUI":
            dest_value = wrap32(instr.imm << 12)
        elif mnemonic == "RMOV":
            dest_value = src_values[0]
        elif mnemonic == "LD":
            mem_addr = wrap32(src_values[0] + instr.imm)
            dest_value = self._load_word(mem_addr)
        elif mnemonic == "ST":
            mem_addr = wrap32(src_values[1] + instr.imm * WORD_BYTES)
            self._store_word(mem_addr, src_values[0])
            dest_value = src_values[0]  # "store value is returned" (§III-A)
        elif mnemonic == "BEZ" or mnemonic == "BNZ":
            cond = src_values[0] == 0
            taken = cond if mnemonic == "BEZ" else not cond
            target_pc = pc + instr.imm * WORD_BYTES
            if taken:
                next_index = self.pc_index + instr.imm
        elif mnemonic == "J":
            taken = True
            target_pc = pc + instr.imm * WORD_BYTES
            next_index = self.pc_index + instr.imm
        elif mnemonic == "JAL":
            taken = True
            target_pc = pc + instr.imm * WORD_BYTES
            next_index = self.pc_index + instr.imm
            dest_value = pc + WORD_BYTES
        elif mnemonic == "JR":
            taken = True
            target_pc = src_values[0]
            next_index = self.program.index_of_pc(target_pc)
        elif mnemonic == "SPADD":
            self.sp = wrap32(self.sp + instr.imm)
            dest_value = self.sp
        elif mnemonic == "OUT":
            self.output.append(src_values[0])
            dest_value = src_values[0]
        elif mnemonic == "NOP":
            dest_value = 0
        elif mnemonic == "HALT":
            self.halted = True
        else:  # pragma: no cover - the opcode table is closed
            raise SimulationError(f"unimplemented mnemonic {mnemonic}")

        self._write_dest(dest_value)
        self.mnemonic_counts[mnemonic] = self.mnemonic_counts.get(mnemonic, 0) + 1

        if self.collect_trace:
            self.trace.append(
                TraceEntry(
                    pc=pc,
                    op_class=instr.op_class,
                    mnemonic=mnemonic,
                    dest=self.seq,
                    srcs=src_seqs,
                    taken=taken,
                    target_pc=target_pc,
                    next_pc=self.program.text_base + next_index * WORD_BYTES,
                    mem_addr=mem_addr,
                    is_call=(mnemonic == "JAL"),
                    is_return=(mnemonic == "JR"),
                    is_rmov=(mnemonic == "RMOV"),
                    is_spadd=(mnemonic == "SPADD"),
                    src_distances=instr.srcs,
                    dest_value=self.regs[self.seq % self.max_rp],
                )
            )
        self.seq += 1
        self.pc_index = next_index

    # -- statistics ---------------------------------------------------------------

    def class_counts(self):
        """Retired counts grouped the way Fig. 15 groups them."""
        groups = {
            "jump_branch": 0,
            "alu": 0,
            "load": 0,
            "store": 0,
            "rmov": 0,
            "nop": 0,
            "other": 0,
        }
        from repro.straight.isa import OPCODES

        for mnemonic, count in self.mnemonic_counts.items():
            if mnemonic == "RMOV":
                groups["rmov"] += count
            elif mnemonic == "NOP":
                groups["nop"] += count
            elif OPCODES[mnemonic].op_class in ("branch", "jump"):
                groups["jump_branch"] += count
            elif OPCODES[mnemonic].op_class in ("alu", "mul", "div"):
                groups["alu"] += count
            elif OPCODES[mnemonic].op_class == "load":
                groups["load"] += count
            elif OPCODES[mnemonic].op_class == "store":
                groups["store"] += count
            else:
                groups["other"] += count
        return groups
