"""STRAIGHT functional instruction-set simulator.

Models the architectural state exactly as the paper defines it:

* a circular register file of ``MAX_RP`` write-once registers, the
  destination register of the N-th retired instruction being ``N mod MAX_RP``;
* sources resolved by subtracting the encoded distance from the instruction's
  own register number;
* the stack pointer SP, updated only by SPADD;
* a flat word memory and an output channel (OUT).

With ``check_distances=True`` (the default) every source read verifies that
the addressed physical register was written *exactly* ``distance``
instructions ago — i.e. that the value hasn't been overwritten by register
aliasing and that the compiler's static distances are dynamically exact.
This is the property STRAIGHT hardware relies on; violating code is a
compiler bug and the simulator raises immediately instead of computing
garbage.
"""

from repro import fastpath
from repro.common.bitops import wrap32
from repro.common.errors import SimulationError
from repro.common.layout import STACK_TOP, WORD_BYTES
from repro.common.trace import TraceEntry
from repro.straight.predecode import (
    K_ALU,
    K_ALU_IMM,
    K_BEZ,
    K_BNZ,
    K_CALL,
    K_CMP,
    K_CMP_IMM,
    K_HALT,
    K_JUMP,
    K_LOAD,
    K_LUI,
    K_NOP,
    K_OUT,
    K_RET,
    K_RMOV,
    K_SPADD,
    K_STORE,
    _decode_one,
    decode_program,
)


class RunResult:
    """Outcome of an interpreter run."""

    def __init__(self, status, steps, output):
        self.status = status  # 'halt' | 'limit'
        self.steps = steps
        self.output = output

    def __repr__(self):
        return f"RunResult({self.status}, steps={self.steps})"


class StraightInterpreter:
    """Executes a linked :class:`~repro.straight.linker.StraightProgram`."""

    def __init__(
        self,
        program,
        max_rp=None,
        collect_trace=False,
        check_distances=True,
        rob_entries=256,
        compiled=None,
    ):
        self.program = program
        #: Immutable pre-decoded instruction array, decoded once per linked
        #: binary and shared by every interpreter over the same program
        #: (primary, lockstep golden, fault campaigns).
        self.decoded = decode_program(program)
        # MAX_RP = max distance + ROB entries (paper §III-B); the functional
        # simulator only needs it large enough that live values never alias.
        self.max_rp = max_rp or (program.max_distance + rob_entries)
        self.regs = [0] * self.max_rp
        self.written_seq = [None] * self.max_rp
        self.sp = STACK_TOP
        self.seq = 0  # retired-instruction counter == next destination id
        self.pc_index = program.index_of_pc(program.entry_pc)
        self.memory = {}
        for offset, word in enumerate(program.data_words):
            self.memory[(program.data_base + offset * WORD_BYTES) // 4] = wrap32(word)
        self.output = []
        self.collect_trace = collect_trace
        self.check_distances = check_distances
        self.trace = []
        self.halted = False
        # Statistics for the evaluation (Fig. 15 instruction mix, Fig. 16
        # source-distance distribution).
        self.mnemonic_counts = {}
        self.distance_hist = {}
        #: Threaded-code fast path (None: baseline step_op loop).  The
        #: ``compiled`` argument overrides the ``STRAIGHT_FASTPATH`` global
        #: toggle per instance; the circular file must also be at least
        #: ``min_mrp`` registers for the compiled intra-block forwarding to
        #: be architecturally transparent.
        self._fast = None
        use_fast = fastpath.enabled() if compiled is None else compiled
        if use_fast:
            fast = fastpath.compiled_for(program, "straight")
            if self.max_rp >= fast.min_mrp:
                self._fast = fast

    # -- architectural helpers ---------------------------------------------------

    def _read_source(self, distance):
        """Resolve one distance operand; returns (value, producer_seq)."""
        if distance == 0:
            return 0, None
        producer = self.seq - distance
        if producer < 0:
            raise SimulationError(
                f"pc={self._pc():#x}: distance {distance} reaches before "
                "program start"
            )
        reg = producer % self.max_rp
        if self.check_distances and self.written_seq[reg] != producer:
            raise SimulationError(
                f"pc={self._pc():#x}: distance {distance} names instruction "
                f"#{producer} but register {reg} holds the value of "
                f"#{self.written_seq[reg]} (stale/aliased operand)"
            )
        self.distance_hist[distance] = self.distance_hist.get(distance, 0) + 1
        return self.regs[reg], producer

    def _write_dest(self, value):
        reg = self.seq % self.max_rp
        self.regs[reg] = wrap32(value)
        self.written_seq[reg] = self.seq

    def _pc(self):
        return self.program.text_base + self.pc_index * WORD_BYTES

    def _load_word(self, addr):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned load {addr:#x}")
        return self.memory.get(addr // 4, 0)

    def _store_word(self, addr, value):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned store {addr:#x}")
        self.memory[addr // 4] = wrap32(value)

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps=10_000_000):
        """Run until HALT or ``max_steps``; returns a :class:`RunResult`."""
        if self._fast is not None:
            steps = fastpath.run_compiled(self, max_steps)
            return RunResult(
                "halt" if self.halted else "limit", steps, self.output
            )
        steps = 0
        decoded = self.decoded
        n_instrs = len(decoded)
        step_op = self.step_op
        while not self.halted and steps < max_steps:
            index = self.pc_index
            if not 0 <= index < n_instrs:
                raise SimulationError(f"pc out of text segment: {self._pc():#x}")
            step_op(decoded[index])
            steps += 1
        return RunResult("halt" if self.halted else "limit", steps, self.output)

    def step(self, instr):
        """Execute one instruction, updating all architectural state.

        ``instr`` must be the instruction at the current ``pc_index`` (the
        contract every caller already honours); the pre-decoded record for it
        is reused when it matches, so external steppers (lockstep golden,
        fault campaigns) ride the same decode-once fast path as :meth:`run`.
        A non-matching ``instr`` (fault-injection campaigns mutate
        instructions in place) falls back to a one-off decode + baseline
        step, bypassing the compiled handlers, which are specialized to the
        linked binary.
        """
        decoded = self.decoded
        index = self.pc_index
        if 0 <= index < len(decoded) and decoded[index].instr is instr:
            if self._fast is not None:
                self._fast.op_handlers[index](self)
                return
            op = decoded[index]
        else:
            op = _decode_one(index, instr, self.program.text_base)
        self.step_op(op)

    def step_current(self):
        """Execute the instruction at the current ``pc_index``.

        The single-step entry point used by the lockstep golden machine: it
        goes through the compiled per-op handlers when the fast path is
        active, so co-simulation guards the same generated code that
        production runs execute.
        """
        index = self.pc_index
        decoded = self.decoded
        if not 0 <= index < len(decoded):
            raise SimulationError(f"pc out of text segment: {self._pc():#x}")
        if self._fast is not None:
            self._fast.op_handlers[index](self)
        else:
            self.step_op(decoded[index])

    def step_op(self, op):
        """Execute one pre-decoded instruction (the hot path)."""
        kind = op.kind
        pc = op.pc
        next_index = self.pc_index + 1
        dest_value = 0
        taken = False
        target_pc = None
        mem_addr = None

        # Inlined source reads (same semantics and diagnostics as
        # _read_source, without a function call per operand).
        seq = self.seq
        max_rp = self.max_rp
        regs = self.regs
        written_seq = self.written_seq
        distance_hist = self.distance_hist
        check = self.check_distances
        src_values = []
        src_seqs = []
        for distance in op.srcs:
            if distance == 0:
                src_values.append(0)
                src_seqs.append(None)
                continue
            producer = seq - distance
            if producer < 0:
                raise SimulationError(
                    f"pc={self._pc():#x}: distance {distance} reaches before "
                    "program start"
                )
            reg = producer % max_rp
            if check and written_seq[reg] != producer:
                raise SimulationError(
                    f"pc={self._pc():#x}: distance {distance} names "
                    f"instruction #{producer} but register {reg} holds the "
                    f"value of #{written_seq[reg]} (stale/aliased operand)"
                )
            distance_hist[distance] = distance_hist.get(distance, 0) + 1
            src_values.append(regs[reg])
            src_seqs.append(producer)

        if kind == K_ALU:
            dest_value = op.operand(src_values[0], src_values[1])
        elif kind == K_ALU_IMM:
            evaluator, imm = op.operand
            dest_value = evaluator(src_values[0], imm)
        elif kind == K_CMP:
            dest_value = op.operand(src_values[0], src_values[1])
        elif kind == K_CMP_IMM:
            evaluator, imm = op.operand
            dest_value = evaluator(src_values[0], imm)
        elif kind == K_LOAD:
            mem_addr = wrap32(src_values[0] + op.operand)
            dest_value = self._load_word(mem_addr)
        elif kind == K_STORE:
            mem_addr = wrap32(src_values[1] + op.operand)
            self._store_word(mem_addr, src_values[0])
            dest_value = src_values[0]  # "store value is returned" (§III-A)
        elif kind == K_BEZ or kind == K_BNZ:
            taken = (src_values[0] == 0) if kind == K_BEZ else (src_values[0] != 0)
            target_pc = op.target_pc
            if taken:
                next_index = op.target_index
        elif kind == K_RMOV:
            dest_value = src_values[0]
        elif kind == K_LUI:
            dest_value = op.operand
        elif kind == K_JUMP:
            taken = True
            target_pc = op.target_pc
            next_index = op.target_index
        elif kind == K_CALL:
            taken = True
            target_pc = op.target_pc
            next_index = op.target_index
            dest_value = op.operand
        elif kind == K_RET:
            taken = True
            target_pc = src_values[0]
            next_index = self.program.index_of_pc(target_pc)
        elif kind == K_SPADD:
            self.sp = wrap32(self.sp + op.operand)
            dest_value = self.sp
        elif kind == K_OUT:
            self.output.append(src_values[0])
            dest_value = src_values[0]
        elif kind == K_NOP:
            dest_value = 0
        elif kind == K_HALT:
            self.halted = True
        else:  # pragma: no cover - the opcode table is closed
            raise SimulationError(f"unimplemented mnemonic {op.mnemonic}")

        dest_reg = seq % max_rp
        dest_value = wrap32(dest_value)
        regs[dest_reg] = dest_value
        written_seq[dest_reg] = seq
        mnemonic = op.mnemonic
        self.mnemonic_counts[mnemonic] = self.mnemonic_counts.get(mnemonic, 0) + 1

        if self.collect_trace:
            self.trace.append(
                TraceEntry(
                    pc=pc,
                    op_class=op.op_class,
                    mnemonic=mnemonic,
                    dest=seq,
                    srcs=src_seqs,
                    taken=taken,
                    target_pc=target_pc,
                    next_pc=self.program.text_base + next_index * WORD_BYTES,
                    mem_addr=mem_addr,
                    is_call=(kind == K_CALL),
                    is_return=(kind == K_RET),
                    is_rmov=(kind == K_RMOV),
                    is_spadd=(kind == K_SPADD),
                    src_distances=op.srcs,
                    dest_value=dest_value,
                )
            )
        self.seq = seq + 1
        self.pc_index = next_index

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self):
        """Snapshot the complete architectural + bookkeeping state.

        Used by the sampled-simulation runner (window replay, debugging)
        and by resumable campaigns; ``restore`` rewinds exactly — a run
        restarted from a checkpoint is bit-identical to one that never
        stopped.
        """
        return {
            "regs": list(self.regs),
            "written_seq": list(self.written_seq),
            "sp": self.sp,
            "seq": self.seq,
            "pc_index": self.pc_index,
            "memory": dict(self.memory),
            "output": list(self.output),
            "halted": self.halted,
            "mnemonic_counts": dict(self.mnemonic_counts),
            "distance_hist": dict(self.distance_hist),
        }

    def restore(self, snap):
        """Rewind to a :meth:`checkpoint` snapshot (exact)."""
        self.regs = list(snap["regs"])
        self.written_seq = list(snap["written_seq"])
        self.sp = snap["sp"]
        self.seq = snap["seq"]
        self.pc_index = snap["pc_index"]
        self.memory = dict(snap["memory"])
        self.output = list(snap["output"])
        self.halted = snap["halted"]
        self.mnemonic_counts = dict(snap["mnemonic_counts"])
        self.distance_hist = dict(snap["distance_hist"])

    # -- statistics ---------------------------------------------------------------

    def class_counts(self):
        """Retired counts grouped the way Fig. 15 groups them."""
        groups = {
            "jump_branch": 0,
            "alu": 0,
            "load": 0,
            "store": 0,
            "rmov": 0,
            "nop": 0,
            "other": 0,
        }
        from repro.straight.isa import OPCODES

        for mnemonic, count in self.mnemonic_counts.items():
            if mnemonic == "RMOV":
                groups["rmov"] += count
            elif mnemonic == "NOP":
                groups["nop"] += count
            elif OPCODES[mnemonic].op_class in ("branch", "jump"):
                groups["jump_branch"] += count
            elif OPCODES[mnemonic].op_class in ("alu", "mul", "div"):
                groups["alu"] += count
            elif OPCODES[mnemonic].op_class == "load":
                groups["load"] += count
            elif OPCODES[mnemonic].op_class == "store":
                groups["store"] += count
            else:
                groups["other"] += count
        return groups
