"""Table I: the four evaluated processor models.

Sizes of each module are equal between the SS and STRAIGHT columns of one
class to clarify the comparison; STRAIGHT's max distance of 31 is chosen so
that ``MAX_RP = 31 + ROB`` lands on the same register-file size as SS
(2-way: 31+64≈96, 4-way: 31+224≈256), exactly as the paper explains.
"""

from repro.uarch.config import CoreConfig, CacheConfig

_CACHES_COMMON = dict(
    l1i=CacheConfig(32, 4, 64, 4),
    l1d=CacheConfig(32, 4, 64, 4),
    l2=CacheConfig(256, 4, 64, 12),
    mem_latency=200,
)

_UNITS_2WAY = {"alu": 2, "mul": 1, "div": 1, "bc": 2, "mem": 2}
_UNITS_4WAY = {"alu": 4, "mul": 2, "div": 1, "bc": 4, "mem": 4}


def ss_2way(**overrides):
    """SS-2way: the conventional superscalar mobile-class core."""
    return CoreConfig(
        name="SS-2way",
        is_straight=False,
        fetch_width=2,
        issue_width=2,
        commit_width=3,
        frontend_depth=8,
        rename_stage_depth=4,
        rob_entries=64,
        iq_entries=16,
        phys_regs=96,
        lsq_loads=48,
        lsq_stores=48,
        units=_UNITS_2WAY,
        l3=None,
        **_CACHES_COMMON,
    ).copy(**overrides)


def straight_2way(**overrides):
    """STRAIGHT-2way: same resources, RP front end, 6-stage front end."""
    return CoreConfig(
        name="STRAIGHT-2way",
        is_straight=True,
        fetch_width=2,
        issue_width=2,
        commit_width=3,
        frontend_depth=6,
        rename_stage_depth=0,
        rob_entries=64,
        iq_entries=16,
        phys_regs=96,  # == max_distance(31) + ROB(64) + 1
        lsq_loads=48,
        lsq_stores=48,
        units=_UNITS_2WAY,
        max_distance=31,
        l3=None,
        **_CACHES_COMMON,
    ).copy(**overrides)


def ss_4way(**overrides):
    """SS-4way: the high-end desktop/server-class core."""
    return CoreConfig(
        name="SS-4way",
        is_straight=False,
        fetch_width=6,
        issue_width=4,
        commit_width=4,
        frontend_depth=8,
        rename_stage_depth=4,
        rob_entries=224,
        iq_entries=96,
        phys_regs=256,
        lsq_loads=72,
        lsq_stores=56,
        units=_UNITS_4WAY,
        l3=CacheConfig(2048, 4, 64, 42),
        **_CACHES_COMMON,
    ).copy(**overrides)


def straight_4way(**overrides):
    """STRAIGHT-4way: same resources, RP front end, 6-stage front end."""
    return CoreConfig(
        name="STRAIGHT-4way",
        is_straight=True,
        fetch_width=6,
        issue_width=4,
        commit_width=4,
        frontend_depth=6,
        rename_stage_depth=0,
        rob_entries=224,
        iq_entries=96,
        phys_regs=256,  # == max_distance(31) + ROB(224) + 1
        lsq_loads=72,
        lsq_stores=56,
        units=_UNITS_4WAY,
        max_distance=31,
        l3=CacheConfig(2048, 4, 64, 42),
        **_CACHES_COMMON,
    ).copy(**overrides)


def bb_2way(**overrides):
    """BB-2way: the SS-2way core with the BasicBlocker ``bb`` front end.

    Identical resources to SS-2way (the ISA is RV32IM plus block headers and
    the back end is unchanged), but control flow is resolved from the ``BB``
    annotations instead of predicted — no predictor, no recovery stalls, at
    the cost of one header instruction per executed basic block.
    """
    return CoreConfig(
        name="BB-2way",
        is_straight=False,
        fetch_width=2,
        issue_width=2,
        commit_width=3,
        frontend_depth=8,
        rename_stage_depth=4,
        rob_entries=64,
        iq_entries=16,
        phys_regs=96,
        lsq_loads=48,
        lsq_stores=48,
        units=_UNITS_2WAY,
        l3=None,
        frontend="bb",
        **_CACHES_COMMON,
    ).copy(**overrides)


def bb_4way(**overrides):
    """BB-4way: the SS-4way core with the BasicBlocker ``bb`` front end."""
    return CoreConfig(
        name="BB-4way",
        is_straight=False,
        fetch_width=6,
        issue_width=4,
        commit_width=4,
        frontend_depth=8,
        rename_stage_depth=4,
        rob_entries=224,
        iq_entries=96,
        phys_regs=256,
        lsq_loads=72,
        lsq_stores=56,
        units=_UNITS_4WAY,
        l3=CacheConfig(2048, 4, 64, 42),
        frontend="bb",
        **_CACHES_COMMON,
    ).copy(**overrides)


#: All Table I models by name.
TABLE1 = {
    "SS-2way": ss_2way,
    "STRAIGHT-2way": straight_2way,
    "SS-4way": ss_4way,
    "STRAIGHT-4way": straight_4way,
}

#: Every evaluated core, including the BasicBlocker extension models (not
#: part of the paper's Table I, so kept out of :data:`TABLE1`).
ALL_CORES = {
    **TABLE1,
    "BB-2way": bb_2way,
    "BB-4way": bb_4way,
}


def table1_rows():
    """Printable parameter rows for the Table I reproduction bench."""
    rows = []
    for factory in (ss_2way, straight_2way, ss_4way, straight_4way):
        cfg = factory()
        rows.append(
            {
                "Model": cfg.name,
                "ISA": "STRAIGHT" if cfg.is_straight else "RV32IM",
                "Fetch Width": cfg.fetch_width,
                "Front-end latency": cfg.frontend_depth,
                "ROB Capacity": cfg.rob_entries,
                "Scheduler": f"{cfg.issue_width} way, {cfg.iq_entries} entries",
                "Register File": cfg.phys_regs,
                "LSQ": f"LD {cfg.lsq_loads} / ST {cfg.lsq_stores}",
                "Exec Unit": ", ".join(
                    f"{k.upper()} {v}" for k, v in cfg.units.items()
                ),
                "Commit Width": cfg.commit_width,
                "L3": "N/A" if cfg.l3 is None else f"{cfg.l3.size_kib} KiB",
            }
        )
    return rows
