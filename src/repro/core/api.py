"""High-level API: source -> binaries -> functional run -> timing run.

This is the entry point a downstream user reaches for::

    from repro.core import build, simulate
    from repro.core.configs import ss_4way, straight_4way

    binaries = build(source_text)
    ss = simulate(binaries.riscv, ss_4way())
    st = simulate(binaries.straight_re, straight_4way())
    print(st.stats.ipc / ss.stats.ipc)
"""

from repro import isa as isa_registry
from repro.common.errors import SimulationError
from repro.frontend import compile_source
from repro.compiler import compile_to_riscv, compile_to_straight
from repro.uarch.core import OoOCore


class Binary:
    """One linked executable plus which ISA it targets."""

    def __init__(self, isa, program, compilation):
        self.isa = isa  # a registered ISA name ('riscv' | 'straight' | 'bb')
        self.program = program
        self.compilation = compilation

    @property
    def descriptor(self):
        """This binary's :class:`~repro.isa.descriptor.IsaDescriptor`."""
        return isa_registry.get(self.isa)

    def interpreter(self, collect_trace=False, compiled=None):
        """This binary's functional simulator.

        ``compiled`` forces the threaded-code fast path on (``True``), off
        (``False``) or leaves the interpreter's default policy (``None`` —
        on unless ``STRAIGHT_FASTPATH=0`` or the program is incompatible).
        """
        return self.descriptor.make_interpreter(
            self.program, collect_trace=collect_trace, compiled=compiled
        )


class BuildResult:
    """The evaluated binaries of one benchmark: the paper's three plus BB."""

    def __init__(self, module, riscv, straight_raw, straight_re, bb=None):
        self.module = module
        self.riscv = riscv
        self.straight_raw = straight_raw
        self.straight_re = straight_re
        self.bb = bb

    def all(self):
        binaries = {
            "SS": self.riscv,
            "STRAIGHT-RAW": self.straight_raw,
            "STRAIGHT-RE+": self.straight_re,
        }
        if self.bb is not None:
            binaries["BB"] = self.bb
        return binaries


def build(source, max_distance=1023, optimize=True):
    """Compile mini-C source to RV32IM, STRAIGHT RAW/RE+ and BB binaries."""
    module = compile_source(source, optimize=optimize)
    riscv = compile_to_riscv(module)
    raw = compile_to_straight(
        module, max_distance=max_distance, redundancy_elimination=False
    )
    re_plus = compile_to_straight(
        module, max_distance=max_distance, redundancy_elimination=True
    )
    from repro.compiler.bb_backend import compile_to_bb

    bb = compile_to_bb(module)
    return BuildResult(
        module,
        Binary("riscv", riscv.link(), riscv),
        Binary("straight", raw.link(), raw),
        Binary("straight", re_plus.link(), re_plus),
        bb=Binary("bb", bb.link(), bb),
    )


class SimulationResult:
    """Functional + timing results for one binary on one core."""

    def __init__(self, binary, config, run_result, interpreter, stats,
                 guardrail_report=None):
        self.binary = binary
        self.config = config
        self.run_result = run_result
        self.interpreter = interpreter
        self.stats = stats  # SimStats (None for functional-only runs)
        #: Dict summary of what the guardrails checked (None when disabled).
        self.guardrail_report = guardrail_report

    @property
    def output(self):
        return self.run_result.output

    @property
    def cycles(self):
        return self.stats.cycles

    @property
    def ipc(self):
        return self.stats.ipc


def run_functional(binary, max_steps=50_000_000, collect_trace=False,
                   compiled=None):
    """Execute a binary on its ISA's functional simulator."""
    interp = binary.interpreter(collect_trace=collect_trace,
                                compiled=compiled)
    result = interp.run(max_steps)
    if result.status == "limit":
        raise SimulationError(
            f"functional run did not finish within {max_steps} steps"
        )
    return SimulationResult(binary, None, result, interp, None)


def simulate(binary, config, max_steps=50_000_000, warm_caches=False,
             guardrails=None, observer=None):
    """Run a binary through the functional ISS, then the timing model.

    ``warm_caches=True`` pre-touches all lines so compulsory misses do not
    dominate short runs (the evaluation harness uses this; see DESIGN.md).

    ``guardrails`` turns on invariant checking plus lockstep co-simulation
    against a golden second interpreter (see :mod:`repro.guardrails`); the
    default ``None`` defers to ``config.guardrails``.  Disabled runs take the
    exact fast path and reproduce guardrail-free cycle counts.

    ``observer`` attaches an :class:`~repro.obs.ObserverBus` of pipeline
    sinks (Kanata log writer, stall-attribution accountant, hot-region
    profiler — see :mod:`repro.obs`) to the timing run.  When both
    guardrails and a stall accountant are present, the suite additionally
    enforces per-cycle attribution conservation.
    """
    interp = binary.interpreter(collect_trace=True)
    result = interp.run(max_steps)
    if result.status == "limit":
        raise SimulationError(
            f"functional run did not finish within {max_steps} steps"
        )
    if guardrails is None:
        guardrails = getattr(config, "guardrails", False)
    suite = None
    if guardrails:
        from repro.guardrails import GuardrailSuite, build_guardrails

        suite = (guardrails if isinstance(guardrails, GuardrailSuite)
                 else build_guardrails(config, binary=binary))
    if suite is not None and observer is not None and observer.active:
        from repro.guardrails.checkers import StallAttributionChecker
        from repro.obs.attribution import StallAttributionAccountant

        for sink in observer.sinks:
            if isinstance(sink, StallAttributionAccountant):
                suite.add_checker(StallAttributionChecker(sink))
                break
    core = OoOCore(config, guardrails=suite)
    stats = core.run(interp.trace, warm=warm_caches, observer=observer)
    report = suite.finish(result.output) if suite is not None else None
    return SimulationResult(binary, config, result, interp, stats,
                            guardrail_report=report)
