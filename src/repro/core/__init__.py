"""The paper's contribution, packaged: STRAIGHT and SS core models + API.

* :mod:`repro.core.configs` — the Table I processor models;
* :mod:`repro.core.api` — ``build()`` (one source, three binaries: RV32IM,
  STRAIGHT RAW, STRAIGHT RE+), ``run_functional()``, and ``simulate()``
  (functional trace + cycle-level timing on a chosen core model).
"""

from repro.core.api import (
    build,
    simulate,
    run_functional,
    Binary,
    BuildResult,
    SimulationResult,
)
from repro.core.configs import (
    ss_2way,
    straight_2way,
    ss_4way,
    straight_4way,
    TABLE1,
    table1_rows,
)

__all__ = [
    "build",
    "simulate",
    "run_functional",
    "Binary",
    "BuildResult",
    "SimulationResult",
    "ss_2way",
    "straight_2way",
    "ss_4way",
    "straight_4way",
    "TABLE1",
    "table1_rows",
]
