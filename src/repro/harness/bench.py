"""Simulator-throughput benchmark: stepped vs. event-driven timing runs.

``straight bench --smoke`` runs a small set of stall-heavy workloads through
the same core twice — once with the event scheduler's idle-cycle skipping
disabled (the seed engine's cycle-by-cycle behavior) and once enabled — and
reports wall-clock throughput (instructions per second) for both, plus the
executed/skipped cycle split.  CI records the JSON report as a build
artifact so simulator-throughput regressions show up in history.

The two workloads bracket the scheduler's envelope:

* ``branchy_div`` — a deep serial division chain feeding data-dependent
  branches.  Mispredicted branches park fetch until the chain resolves, the
  front-end pipe drains, and the machine sits provably idle for most of each
  division's latency: the idle-skip best case.
* ``mem_chase`` — a dependent-load pointer chase over a cold cache.  Fetch
  runs far ahead and dispatch attempts (and counts a structural stall) on
  almost every cycle, so nearly nothing is skippable: the honest worst case.

Every benchmark run asserts the two modes produce identical cycle counts —
the throughput numbers are only meaningful while the engines agree.
"""

import os
import tempfile
import time

from repro import isa as isa_registry
from repro.common.bitops import wrap32
from repro.common.layout import WORD_BYTES
from repro.core.api import build
from repro.core.configs import ALL_CORES
from repro.ir.passes.constfold import eval_binop, eval_icmp
from repro.uarch.core import OoOCore

BENCH_WORKLOADS = {
    "branchy_div": """
int main() {
    int acc = 999999999;
    int lcg = 12345;
    for (int i = 0; i < 300; i++) {
        lcg = lcg * 1103515245 + 12345;
        int t = acc / (i + 2);
        t = t / 3 + 7;
        t = t / 2 + 5;
        t = t / 3 + 9;
        t = t / 2 + 11;
        t = t / 3 + 13;
        t = t / 2 + 885;
        t = t / 3 + 3;
        if ((t ^ lcg) & 1) acc = 999999999 - (lcg & 255);
        else acc = 900000000 + (lcg & 1023);
    }
    __out(acc);
    return 0;
}
""",
    "mem_chase": """
int a[4096];
int main() {
    for (int i = 0; i < 4096; i++) { a[i] = (i * 67 + 1) & 4095; }
    int p = 0;
    int s = 0;
    for (int i = 0; i < 1500; i++) {
        p = a[p];
        s = s + (p & 3);
    }
    __out(s);
    return 0;
}
""",
}


def _trace_for(source, label):
    binaries = build(source)
    binary = binaries.all()[label]
    interp = binary.interpreter(collect_trace=True)
    interp.run(50_000_000)
    return interp.trace


def _timed(config_factory, trace, idle_skip, repeats):
    """Best-of-``repeats`` wall-clock run; returns (stats, engine, seconds).

    Each repeat uses a fresh core (cold predictors and caches) so both modes
    simulate the identical microarchitectural run.
    """
    best = None
    for _ in range(repeats):
        core = OoOCore(config_factory())
        start = time.perf_counter()
        stats = core.run(trace, idle_skip=idle_skip)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[2]:
            best = (stats, core.engine, elapsed)
    return best


def bench_workload(name, config_name="SS-2way", repeats=3):
    """Benchmark one workload; returns a JSON-friendly report dict."""
    source = BENCH_WORKLOADS[name]
    factory = ALL_CORES[config_name]
    config = factory()
    label = isa_registry.for_config(config).label_for_config(config)
    trace = _trace_for(source, label)

    stepped_stats, _, stepped_s = _timed(factory, trace, False, repeats)
    event_stats, engine, event_s = _timed(factory, trace, True, repeats)
    if stepped_stats.cycles != event_stats.cycles:
        raise AssertionError(
            f"{name}: cycle drift between stepped ({stepped_stats.cycles}) "
            f"and event-driven ({event_stats.cycles}) engines"
        )
    instructions = event_stats.instructions
    return {
        "workload": name,
        "config": config_name,
        "instructions": instructions,
        "cycles": event_stats.cycles,
        "executed_cycles": engine.sched.executed_cycles,
        "skipped_cycles": engine.sched.skipped_cycles,
        "wall_s": {
            "stepped": round(stepped_s, 6),
            "event_driven": round(event_s, 6),
        },
        "instrs_per_sec": {
            "stepped": round(instructions / stepped_s),
            "event_driven": round(instructions / event_s),
        },
        "speedup": round(stepped_s / event_s, 3),
    }


# -- pre-decode speedup --------------------------------------------------------

_SEED_ALU = {
    "ADD": "add", "SUB": "sub", "AND": "and", "OR": "or", "XOR": "xor",
    "SLL": "shl", "SRL": "lshr", "SRA": "ashr", "MUL": "mul", "DIV": "sdiv",
    "DIVU": "udiv", "REM": "srem", "REMU": "urem", "ADDI": "add",
    "ANDI": "and", "ORI": "or", "XORI": "xor", "SLLI": "shl", "SRLI": "lshr",
    "SRAI": "ashr",
}
_SEED_CMP = {"SLT": "slt", "SLTU": "ult", "SLTI": "slt", "SLTUI": "ult"}


def _seed_style_run(interp, max_steps=50_000_000):
    """Reference loop re-deriving the decode on every dynamic instruction.

    This replicates the per-step work the interpreter did before
    pre-decoding (mnemonic-table lookups, immediate wrapping, branch-target
    arithmetic on each execution) so the benchmark can price exactly what
    :mod:`repro.straight.predecode` removed.  The caller cross-checks its
    output and step count against the fast path, keeping the baseline
    honest.
    """
    program = interp.program
    instrs = program.instrs
    n_instrs = len(instrs)
    text_base = program.text_base
    steps = 0
    while not interp.halted and steps < max_steps:
        index = interp.pc_index
        if not 0 <= index < n_instrs:
            raise AssertionError("pc out of text segment")
        instr = instrs[index]
        mnemonic = instr.mnemonic
        pc = text_base + index * WORD_BYTES
        next_index = index + 1
        dest_value = 0
        src_values = [interp._read_source(d)[0] for d in instr.srcs]
        if mnemonic in _SEED_ALU:
            rhs = src_values[1] if len(src_values) == 2 else wrap32(instr.imm)
            dest_value = eval_binop(_SEED_ALU[mnemonic], src_values[0], rhs)
        elif mnemonic in _SEED_CMP:
            rhs = src_values[1] if len(src_values) == 2 else wrap32(instr.imm)
            dest_value = eval_icmp(_SEED_CMP[mnemonic], src_values[0], rhs)
        elif mnemonic == "LUI":
            dest_value = wrap32(instr.imm << 12)
        elif mnemonic == "RMOV":
            dest_value = src_values[0]
        elif mnemonic == "LD":
            dest_value = interp._load_word(wrap32(src_values[0] + instr.imm))
        elif mnemonic == "ST":
            addr = wrap32(src_values[1] + instr.imm * WORD_BYTES)
            interp._store_word(addr, src_values[0])
            dest_value = src_values[0]
        elif mnemonic == "BEZ" or mnemonic == "BNZ":
            cond = src_values[0] == 0
            if cond if mnemonic == "BEZ" else not cond:
                next_index = index + instr.imm
        elif mnemonic == "J":
            next_index = index + instr.imm
        elif mnemonic == "JAL":
            next_index = index + instr.imm
            dest_value = pc + WORD_BYTES
        elif mnemonic == "JR":
            next_index = program.index_of_pc(src_values[0])
        elif mnemonic == "SPADD":
            interp.sp = wrap32(interp.sp + instr.imm)
            dest_value = interp.sp
        elif mnemonic == "OUT":
            interp.output.append(src_values[0])
            dest_value = src_values[0]
        elif mnemonic == "HALT":
            interp.halted = True
        interp._write_dest(dest_value)
        interp.seq += 1
        interp.pc_index = next_index
        steps += 1
    return steps


def _timed_functional(binary, compiled, repeats, max_steps):
    """Best-of-``repeats`` functional run; returns (result, seconds)."""
    best_s = None
    best = None
    for _ in range(repeats):
        interp = binary.interpreter(collect_trace=False, compiled=compiled)
        start = time.perf_counter()
        result = interp.run(max_steps)
        elapsed = time.perf_counter() - start
        if best_s is None or elapsed < best_s:
            best_s = elapsed
            best = result
    return best, best_s


def bench_predecode(workload="branchy_div", repeats=3, max_steps=50_000_000):
    """Price the functional hot paths, per registered ISA.

    Two comparisons on one bench workload:

    * the historical one — STRAIGHT-RE+ through the pre-decoded baseline
      ``run()`` vs. a reference loop that re-derives the decode on every
      dynamic instruction (the seed behaviour), reported as ``speedup``;
    * per registered ISA (via the descriptor registry) — the ISA's default
      evaluation binary through the pre-decoded baseline vs. the
      threaded-code compiled blocks (:mod:`repro.fastpath`), reported in
      ``per_isa`` as ``speedup_compiled``.

    Every pair is best-of-``repeats`` and asserts identical output + step
    count, so the speedups are only reported while the paths agree.
    """
    binaries = build(BENCH_WORKLOADS[workload]).all()
    binary = binaries["STRAIGHT-RE+"]

    fast_result, fast_s = _timed_functional(binary, False, repeats, max_steps)

    seed_s = None
    seed_steps = None
    seed_output = None
    for _ in range(repeats):
        interp = binary.interpreter(collect_trace=False, compiled=False)
        start = time.perf_counter()
        steps = _seed_style_run(interp, max_steps)
        elapsed = time.perf_counter() - start
        if seed_s is None or elapsed < seed_s:
            seed_s = elapsed
            seed_steps = steps
            seed_output = list(interp.output)

    if seed_steps != fast_result.steps or seed_output != fast_result.output:
        raise AssertionError(
            f"{workload}: pre-decoded and per-step-decode runs diverged "
            f"(steps {fast_result.steps} vs {seed_steps})"
        )

    per_isa = []
    for descriptor in isa_registry.descriptors():
        label = descriptor.default_label
        isa_binary = binaries[label]
        base, base_s = _timed_functional(isa_binary, False, repeats,
                                         max_steps)
        comp, comp_s = _timed_functional(isa_binary, True, repeats,
                                         max_steps)
        if (base.steps, base.output) != (comp.steps, comp.output):
            raise AssertionError(
                f"{workload}/{descriptor.name}: baseline and compiled "
                f"runs diverged (steps {base.steps} vs {comp.steps})"
            )
        per_isa.append({
            "isa": descriptor.name,
            "binary": label,
            "steps": comp.steps,
            "wall_s": {
                "baseline": round(base_s, 6),
                "compiled": round(comp_s, 6),
            },
            "steps_per_sec": {
                "baseline": round(base.steps / base_s),
                "compiled": round(comp.steps / comp_s),
            },
            "speedup_compiled": round(base_s / comp_s, 3),
        })

    return {
        "workload": workload,
        "binary": "STRAIGHT-RE+",
        "steps": fast_result.steps,
        "wall_s": {
            "predecoded": round(fast_s, 6),
            "decode_per_step": round(seed_s, 6),
        },
        "steps_per_sec": {
            "predecoded": round(fast_result.steps / fast_s),
            "decode_per_step": round(seed_steps / seed_s),
        },
        "speedup": round(seed_s / fast_s, 3),
        "per_isa": per_isa,
    }


# -- fastpath scorecard: compiled fast-forward + sampled timing -----------------

#: Accuracy schedule.  Long windows are the load-bearing choice: the
#: residual error of a re-simulated segment is a fixed settling transient
#: at the window start (the pipeline re-converges to its steady rhythm),
#: so it is amortized by window length — W500 leaves a -6.5% bias on
#: dhrystone/STRAIGHT-4way, W2000 takes it under 1%.  The period keeps one
#: window per 8k instructions; sparser schedules alias with CoreMark's
#: long loop phases (P12000 measured up to +-25% per-seed swings).
FASTPATH_ACCURACY_PARAMS = {
    "period": 8000, "window": 2000, "warmup": 600, "cooldown": 300,
}

#: Speed schedule: the same long windows, spread 8x thinner (~4.5%
#: coverage) for the order-of-magnitude workloads where wall-clock is the
#: point.  Dhrystone's homogeneity keeps the estimator tight at n~60.
FASTPATH_SPEED_PARAMS = {
    "period": 64000, "window": 2000, "warmup": 600, "cooldown": 300,
}


def _fastpath_cell(workload, iterations, binary_label, config, params,
                   seed=0, max_steps=50_000_000):
    """One fastpath scorecard cell: full baseline vs. compiled+sampled.

    The baseline leg reproduces the pre-fastpath end-to-end cost — trace
    collection on the uncompiled interpreter plus a full cycle-accurate
    run.  The fast leg is :func:`~repro.harness.sampling.simulate_sampled`
    on the compiled interpreter.  Both use warm caches (the paper's
    steady-state measurement mode).
    """
    from repro.harness.sampling import SamplingParams, simulate_sampled
    from repro.workloads import build_workload

    binary = build_workload(workload, iterations=iterations).all()[
        binary_label]

    start = time.perf_counter()
    interp = binary.interpreter(collect_trace=True, compiled=False)
    result = interp.run(max_steps)
    if result.status == "limit":
        raise AssertionError(f"{workload}: baseline run hit max_steps")
    core = OoOCore(config)
    stats = core.run(interp.trace, warm=True)
    baseline_s = time.perf_counter() - start
    full_ipc = stats.instructions / stats.cycles

    sampling_params = SamplingParams(seed=seed, **params)
    start = time.perf_counter()
    sampled = simulate_sampled(binary, config, sampling_params,
                               max_steps=max_steps, warm_caches=True)
    fast_s = time.perf_counter() - start
    meta = sampled.stats.sampling
    sampled_ipc = sampled.stats.instructions / sampled.stats.cycles
    ipc_ci = meta.get("ipc_ci95")
    return {
        "workload": workload,
        "iterations": iterations,
        "binary": binary_label,
        "config": config.name,
        "instructions": stats.instructions,
        "mode": meta["mode"],
        "windows": meta.get("windows"),
        "coverage": round(meta.get("coverage", 1.0), 5),
        "sampling": meta["params"],  # includes the seed: reproducible
        "ipc": {
            "full": round(full_ipc, 5),
            "sampled": round(sampled_ipc, 5),
            "err_pct": round((sampled_ipc / full_ipc - 1) * 100, 3),
            "ci95_rel_pct": (None if not ipc_ci else
                             round(ipc_ci / meta["ipc_mean"] * 100, 3)),
        },
        "wall_s": {
            "baseline_full": round(baseline_s, 3),
            "compiled_sampled": round(fast_s, 3),
        },
        "speedup": round(baseline_s / fast_s, 2),
    }


#: Smoke-mode dhrystone scale: big enough for ~18 measurement windows
#: under the accuracy schedule, small enough to keep the CI job fast.
_SMOKE_ACCURACY_ITERATIONS = 150


def bench_fastpath(smoke=False, seed=0):
    """The ``BENCH_fastpath.json`` scorecard: golden + stress + speed cells.

    * **accuracy** cells pit sampled against full simulation on the golden
      grid — dhrystone at evaluation scale x every registered ISA x both
      machine widths, under :data:`FASTPATH_ACCURACY_PARAMS`.  Dhrystone's
      steady loop satisfies the SMARTS stationarity assumptions at our run
      lengths, so this is the grid the <=2% IPC gate applies to.
    * **stress** cells (full mode only) run the same grid on CoreMark,
      whose phase structure exposes the two known estimator limits: the
      per-window IPC heterogeneity of the matmul/CRC phases (honest ci95
      bars of 4-10%) and the BB rhythm bias (see DESIGN.md's error model).
      They are reported with error bars, not gated.
    * **speed** cells run order-of-magnitude-larger workloads under
      :data:`FASTPATH_SPEED_PARAMS`, where the compiled fast-forward and
      sparse windows deliver the end-to-end wall-clock multiplier.

    ``smoke`` shrinks the gated grid to a CI-sized subset (dhrystone
    2-way, one speed cell).  The report carries every seed and schedule
    parameter, so each number is reproducible byte-for-byte.
    """
    from repro.workloads import WORKLOADS

    accuracy = []
    stress = []
    speed = []
    wl = WORKLOADS["dhrystone"]
    if smoke:
        for descriptor in isa_registry.descriptors():
            label = descriptor.default_label
            config = descriptor.config_factories["2way"]()
            accuracy.append(_fastpath_cell(
                "dhrystone", _SMOKE_ACCURACY_ITERATIONS, label, config,
                FASTPATH_ACCURACY_PARAMS, seed=seed,
            ))
        speed.append(_fastpath_cell(
            "dhrystone", wl.large_iterations, "SS",
            isa_registry.get("riscv").config_factories["4way"](),
            FASTPATH_SPEED_PARAMS, seed=seed,
        ))
    else:
        for descriptor in isa_registry.descriptors():
            label = descriptor.default_label
            for klass in ("2way", "4way"):
                config = descriptor.config_factories[klass]()
                accuracy.append(_fastpath_cell(
                    "dhrystone", wl.large_iterations, label, config,
                    FASTPATH_ACCURACY_PARAMS, seed=seed,
                ))
                stress.append(_fastpath_cell(
                    "coremark", WORKLOADS["coremark"].large_iterations,
                    label, config, FASTPATH_ACCURACY_PARAMS, seed=seed,
                ))
        for isa, klass, label in (("riscv", "4way", "SS"),
                                  ("straight", "4way", "STRAIGHT-RE+")):
            speed.append(_fastpath_cell(
                "dhrystone", wl.large_iterations * 10, label,
                isa_registry.get(isa).config_factories[klass](),
                FASTPATH_SPEED_PARAMS, seed=seed,
            ))

    report = {
        "seed": seed,
        "accuracy_params": dict(FASTPATH_ACCURACY_PARAMS),
        "speed_params": dict(FASTPATH_SPEED_PARAMS),
        "accuracy": accuracy,
        "speed": speed,
        "max_abs_ipc_err_pct": max(
            abs(c["ipc"]["err_pct"]) for c in accuracy),
        "min_accuracy_speedup": min(c["speedup"] for c in accuracy),
        "max_speedup": max(c["speedup"] for c in speed),
    }
    if stress:
        report["stress"] = stress
        report["max_stress_abs_ipc_err_pct"] = max(
            abs(c["ipc"]["err_pct"]) for c in stress)
    return report


# -- observability overhead ----------------------------------------------------


def bench_observability(config_name="SS-2way", repeats=3,
                        workload="branchy_div"):
    """Price the observability subsystem against the plain timing run.

    Four modes over the same trace and config, best-of-``repeats`` each:

    * ``plain`` — no observer argument at all (the default path);
    * ``bus_empty`` — an :class:`~repro.obs.ObserverBus` with no sinks
      attached; the engine normalizes it to ``None``, so this prices the
      "tracing compiled in but disabled" promise the CI job gates at ≤5%;
    * ``kanata`` — the pipeline-log writer attached (instruction-granular,
      idle-skip stays on);
    * ``attribution`` — the stall accountant attached (cycle-granular,
      idle-skip forced off — priced against the *stepped* plain run so the
      number isolates the accounting cost from the skipping loss).

    All four modes must agree on the cycle count bit-exactly; enabled-mode
    overheads are reported but not gated (you asked for the data).
    """
    from repro.obs import KanataWriter, ObserverBus, StallAttributionAccountant

    factory = ALL_CORES[config_name]
    probe = factory()
    label = isa_registry.for_config(probe).label_for_config(probe)
    trace = _trace_for(BENCH_WORKLOADS[workload], label)

    def timed(observer_factory, idle_skip=True):
        best = None
        for _ in range(repeats):
            core = OoOCore(factory())
            observer = observer_factory() if observer_factory else None
            start = time.perf_counter()
            stats = core.run(trace, idle_skip=idle_skip, observer=observer)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[1]:
                best = (stats, elapsed)
        return best

    plain_stats, plain_s = timed(None)
    stepped_stats, stepped_s = timed(None, idle_skip=False)
    empty_stats, empty_s = timed(lambda: ObserverBus())
    kanata_stats, kanata_s = timed(lambda: ObserverBus([KanataWriter()]))
    attr_stats, attr_s = timed(
        lambda: ObserverBus([StallAttributionAccountant()]))
    cycle_counts = {
        "plain": plain_stats.cycles,
        "stepped": stepped_stats.cycles,
        "bus_empty": empty_stats.cycles,
        "kanata": kanata_stats.cycles,
        "attribution": attr_stats.cycles,
    }
    if len(set(cycle_counts.values())) != 1:
        raise AssertionError(
            f"{workload}: cycle drift across observability modes: "
            f"{cycle_counts}"
        )
    return {
        "workload": workload,
        "config": config_name,
        "cycles": plain_stats.cycles,
        "instructions": plain_stats.instructions,
        "wall_s": {
            "plain": round(plain_s, 6),
            "stepped": round(stepped_s, 6),
            "bus_empty": round(empty_s, 6),
            "kanata": round(kanata_s, 6),
            "attribution": round(attr_s, 6),
        },
        "overhead_disabled_pct": round((empty_s - plain_s) / plain_s * 100, 2),
        "overhead_kanata_pct": round((kanata_s - plain_s) / plain_s * 100, 2),
        "overhead_attribution_pct": round(
            (attr_s - stepped_s) / stepped_s * 100, 2),
    }


# -- sweep-cache benchmark -----------------------------------------------------


def _sweep_grid(workloads):
    """A reduced timing grid: each bench workload on every ISA's 2-way core."""
    from repro.harness.sweep import SweepTask

    tasks = []
    for name in workloads:
        source = BENCH_WORKLOADS[name]
        for descriptor in isa_registry.descriptors():
            config = descriptor.config_factories["2way"]()
            target = next(iter(descriptor.targets))
            tasks.append(
                SweepTask(
                    f"bench/{name}/{config.name}",
                    name,
                    config=config,
                    compile_opts={"target": target, "source_text": source},
                )
            )
    return tasks


def bench_sweep(jobs=1, cache_dir=None, workloads=None):
    """Two-pass sweep over a reduced grid: cold fill, then warm from cache.

    Exercises the whole engine — compile-artifact cache, result cache,
    pre-pass serving — and reports wall-clock, simulated/skipped cycles, and
    cache hit/miss counts for both passes.  With ``cache_dir=None`` the
    cache lives in a temporary directory that is deleted afterwards, so
    benchmarking never pollutes (or is flattered by) the user's real cache.
    """
    from repro.harness import cache as cache_mod
    from repro.harness.sweep import clear_memo, run_sweep

    names = list(workloads) if workloads else sorted(BENCH_WORKLOADS)
    tasks = _sweep_grid(names)

    tempdir = None
    if cache_dir is None:
        tempdir = tempfile.TemporaryDirectory(prefix="straight-bench-cache-")
        cache_dir = tempdir.name
    previous = cache_mod.swap_state()
    cache_mod.configure(cache_dir=cache_dir, enabled=True)
    try:
        passes = []
        for label in ("cold", "warm"):
            clear_memo()  # drop the in-process memo; only the disk layer persists
            cache_mod.reset_cache_stats()
            report = run_sweep(tasks, jobs=jobs, raise_on_error=True)
            cycles = sum(
                p["stats"]["cycles"] for p in report.results.values()
            )
            passes.append(
                {
                    "pass": label,
                    "tasks": len(tasks),
                    "wall_s": round(report.wall_s, 6),
                    "cycles_simulated": cycles,
                    "results_from_cache": report.manifest["cache_served"],
                    "result_hit_rate": round(report.result_hit_rate(), 4),
                    "cache": report.cache,
                }
            )
        cold, warm = passes
        return {
            "jobs": jobs,
            "grid": [t.task_id for t in tasks],
            "passes": passes,
            "warm_speedup": round(cold["wall_s"] / max(warm["wall_s"], 1e-9), 2),
        }
    finally:
        clear_memo()
        cache_mod.swap_state(previous)
        if tempdir is not None:
            tempdir.cleanup()


def bench_smoke(config_name="SS-2way", repeats=3, workloads=None,
                sweep_jobs=None):
    """The full smoke benchmark across all (or the named) workloads."""
    names = list(workloads) if workloads else sorted(BENCH_WORKLOADS)
    results = [bench_workload(name, config_name, repeats) for name in names]
    if sweep_jobs is None:
        sweep_jobs = min(2, os.cpu_count() or 1)
    return {
        "config": config_name,
        "repeats": repeats,
        "workloads": results,
        "best_speedup": max(r["speedup"] for r in results),
        "predecode": bench_predecode(names[0], repeats),
        "sweep": bench_sweep(jobs=sweep_jobs, workloads=names),
        "observability": bench_observability(config_name, repeats, names[0]),
    }
