"""Simulator-throughput benchmark: stepped vs. event-driven timing runs.

``straight bench --smoke`` runs a small set of stall-heavy workloads through
the same core twice — once with the event scheduler's idle-cycle skipping
disabled (the seed engine's cycle-by-cycle behavior) and once enabled — and
reports wall-clock throughput (instructions per second) for both, plus the
executed/skipped cycle split.  CI records the JSON report as a build
artifact so simulator-throughput regressions show up in history.

The two workloads bracket the scheduler's envelope:

* ``branchy_div`` — a deep serial division chain feeding data-dependent
  branches.  Mispredicted branches park fetch until the chain resolves, the
  front-end pipe drains, and the machine sits provably idle for most of each
  division's latency: the idle-skip best case.
* ``mem_chase`` — a dependent-load pointer chase over a cold cache.  Fetch
  runs far ahead and dispatch attempts (and counts a structural stall) on
  almost every cycle, so nearly nothing is skippable: the honest worst case.

Every benchmark run asserts the two modes produce identical cycle counts —
the throughput numbers are only meaningful while the engines agree.
"""

import time

from repro.core.api import build
from repro.core.configs import TABLE1
from repro.uarch.core import OoOCore

BENCH_WORKLOADS = {
    "branchy_div": """
int main() {
    int acc = 999999999;
    int lcg = 12345;
    for (int i = 0; i < 300; i++) {
        lcg = lcg * 1103515245 + 12345;
        int t = acc / (i + 2);
        t = t / 3 + 7;
        t = t / 2 + 5;
        t = t / 3 + 9;
        t = t / 2 + 11;
        t = t / 3 + 13;
        t = t / 2 + 885;
        t = t / 3 + 3;
        if ((t ^ lcg) & 1) acc = 999999999 - (lcg & 255);
        else acc = 900000000 + (lcg & 1023);
    }
    __out(acc);
    return 0;
}
""",
    "mem_chase": """
int a[4096];
int main() {
    for (int i = 0; i < 4096; i++) { a[i] = (i * 67 + 1) & 4095; }
    int p = 0;
    int s = 0;
    for (int i = 0; i < 1500; i++) {
        p = a[p];
        s = s + (p & 3);
    }
    __out(s);
    return 0;
}
""",
}


def _trace_for(source, label):
    binaries = build(source)
    binary = binaries.all()[label]
    interp = binary.interpreter(collect_trace=True)
    interp.run(50_000_000)
    return interp.trace


def _timed(config_factory, trace, idle_skip, repeats):
    """Best-of-``repeats`` wall-clock run; returns (stats, engine, seconds).

    Each repeat uses a fresh core (cold predictors and caches) so both modes
    simulate the identical microarchitectural run.
    """
    best = None
    for _ in range(repeats):
        core = OoOCore(config_factory())
        start = time.perf_counter()
        stats = core.run(trace, idle_skip=idle_skip)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[2]:
            best = (stats, core.engine, elapsed)
    return best


def bench_workload(name, config_name="SS-2way", repeats=3):
    """Benchmark one workload; returns a JSON-friendly report dict."""
    source = BENCH_WORKLOADS[name]
    factory = TABLE1[config_name]
    label = "STRAIGHT-RE+" if factory().is_straight else "SS"
    trace = _trace_for(source, label)

    stepped_stats, _, stepped_s = _timed(factory, trace, False, repeats)
    event_stats, engine, event_s = _timed(factory, trace, True, repeats)
    if stepped_stats.cycles != event_stats.cycles:
        raise AssertionError(
            f"{name}: cycle drift between stepped ({stepped_stats.cycles}) "
            f"and event-driven ({event_stats.cycles}) engines"
        )
    instructions = event_stats.instructions
    return {
        "workload": name,
        "config": config_name,
        "instructions": instructions,
        "cycles": event_stats.cycles,
        "executed_cycles": engine.sched.executed_cycles,
        "skipped_cycles": engine.sched.skipped_cycles,
        "wall_s": {
            "stepped": round(stepped_s, 6),
            "event_driven": round(event_s, 6),
        },
        "instrs_per_sec": {
            "stepped": round(instructions / stepped_s),
            "event_driven": round(instructions / event_s),
        },
        "speedup": round(stepped_s / event_s, 3),
    }


def bench_smoke(config_name="SS-2way", repeats=3, workloads=None):
    """The full smoke benchmark across all (or the named) workloads."""
    names = list(workloads) if workloads else sorted(BENCH_WORKLOADS)
    results = [bench_workload(name, config_name, repeats) for name in names]
    return {
        "config": config_name,
        "repeats": repeats,
        "workloads": results,
        "best_speedup": max(r["speedup"] for r in results),
    }
