"""Parallel sweep engine over the experiment grid, with persistent caching.

The paper's evaluation is a grid: (workload × binary × CoreConfig), plus a
handful of custom-compiled ablation points.  This module turns one grid
point into a *spawn-safe task descriptor* (:class:`SweepTask`), fans task
batches out across CPU cores with a process pool, and backs every execution
with the persistent content-addressed caches of :mod:`repro.harness.cache`:

* compiled binaries come from the artifact cache (shared between RAW/RE+
  figure runs and across processes/runs),
* finished runs come from the result cache, keyed on the binary's SHA-256
  plus the config's full timing identity (``CoreConfig.cache_key()``) plus
  the engine schema version.

Guarantees:

* **Determinism** — results are returned in task-submission order, and a
  cache-served result is bit-identical to a fresh one (the cache stores the
  complete ``SimStats`` counter surface, reconstructed exactly).
* **Degradation, not death** — a task that raises inside a worker comes
  back as a structured error record (a :class:`SimulationError` payload
  with traceback); the sweep writes a crash dump, notes the failure in the
  manifest, and completes every remaining task.  A worker process dying
  outright (broken pool) re-runs the unfinished tasks inline.
* **Budgets** — each task gets a wall-clock ``deadline`` inside its worker
  (SIGALRM-based, same machinery as the PR 1 hardened harness).

``run_sweep`` never requires the pool: with ``jobs <= 1`` everything runs
inline in the calling process, and tasks fully served by the cache never
spawn a worker at all (the warm path of ``examples/reproduce_paper.py``).
"""

import os
import time
import traceback

from repro.common.errors import SimulationError
from repro.harness import cache as cache_mod
from repro.harness.runner import deadline
from repro.uarch.stats import SimStats

#: Default per-task wall-clock budget inside a worker (seconds).
DEFAULT_TASK_TIMEOUT_S = 600.0


class SweepTask:
    """One spawn-safe grid point.

    Two shapes:

    * registry tasks — ``workload``/``binary_label`` name a cross-validated
      registry build (the common case for the paper figures);
    * custom-compile tasks — ``compile_opts`` describes a bespoke backend
      configuration applied to the workload's source (the ablations).

    ``config`` is ``None`` for functional tasks (instruction mix, distance
    distributions), which need an interpreter run but no timing model.

    ``attribution=True`` attaches a stall-attribution accountant
    (:mod:`repro.obs`) to the timing run; the payload then carries the
    per-bucket slot charges, and the result-cache key includes the flag so
    attributed and plain runs never alias (the attributed run disables
    idle-cycle skipping; its cycle counts are still bit-identical).
    """

    __slots__ = ("task_id", "workload", "binary_label", "config",
                 "iterations", "max_distance", "compile_opts", "kind",
                 "timeout_s", "attribution", "chaos", "sampling")

    def __init__(self, task_id, workload, binary_label=None, config=None,
                 iterations=None, max_distance=1023, compile_opts=None,
                 kind="timing", timeout_s=None, attribution=False,
                 chaos=None, sampling=None):
        self.task_id = task_id
        self.workload = workload
        self.binary_label = binary_label
        self.config = config
        self.iterations = iterations
        self.max_distance = max_distance
        self.compile_opts = dict(compile_opts) if compile_opts else None
        self.kind = kind  # 'timing' | 'functional'
        self.timeout_s = timeout_s
        self.attribution = attribution
        #: Fault-injection spec consumed by :mod:`repro.harness.chaos`; the
        #: campaign's scenarios plant these, production grids leave it None.
        self.chaos = dict(chaos) if chaos else None
        #: Sampled-simulation schedule (a ``SamplingParams.as_dict()``
        #: payload); ``None`` runs the full cycle model.  Part of every
        #: cache key — a sampled estimate must never serve a full-run
        #: request or vice versa.
        self.sampling = dict(sampling) if sampling else None

    def checkpoint_key(self):
        """Stable identity of this grid point for the checkpoint journal.

        Covers everything that determines the payload — the full config timing
        identity, backend options, task kind and the engine schema/toolchain
        tags — so a journal entry is replayed only for the exact same work,
        and never across a toolchain or schema bump.
        """
        return cache_mod.canonical_key({
            "task": self.task_id,
            "workload": self.workload,
            "binary": self.binary_label,
            "config": None if self.config is None else self.config.cache_key(),
            "iterations": self.iterations,
            "max_distance": self.max_distance,
            "opts": self.compile_opts,
            "kind": self.kind,
            "attribution": bool(self.attribution),
            "sampling": self.sampling,
            "tag": cache_mod.TOOLCHAIN_TAG,
            "schema": cache_mod.SCHEMA_VERSION,
        })

    def __repr__(self):
        return f"SweepTask({self.task_id})"


# ---------------------------------------------------------------------------
# Binary resolution (artifact-cached)
# ---------------------------------------------------------------------------


def compile_binary_cached(source, target="straight", max_distance=1023,
                          **backend_opts):
    """Compile one source/target/options point, persistently memoized.

    Returns a :class:`~repro.core.api.Binary`.  ``target`` is any name the
    ISA registry resolves (``riscv``, ``straight``, ``straight-raw``,
    ``bb``, ...); unknown targets raise
    :class:`~repro.common.errors.UnknownIsaError` listing the valid
    choices.  The artifact key covers the source digest, the target name,
    ``max_distance`` and every backend option, so RAW and RE+ (or
    sinking/demotion ablation variants) never alias while identical
    requests across figures and runs share one compilation.
    """
    from repro import isa as isa_registry

    descriptor, target_opts = isa_registry.resolve_target(target)
    artifact_key = {
        "kind": "compile",
        "tag": cache_mod.TOOLCHAIN_TAG,
        "source": cache_mod.source_digest(source),
        "target": target,
        "max_distance": max_distance,
        "opts": dict(sorted(backend_opts.items())),
    }
    artifacts = cache_mod.artifact_cache()
    if artifacts is not None:
        binary = artifacts.get(artifact_key)
        if binary is not None:
            return binary

    from repro.core.api import Binary
    from repro.frontend import compile_source

    module = compile_source(source)
    # Variant targets carry baked-in options (e.g. straight-raw disables
    # redundancy elimination); explicit backend options always win.
    opts = dict(target_opts)
    opts.update(backend_opts)
    compilation = descriptor.compile_module(
        module, max_distance=max_distance, **opts
    )
    binary = Binary(descriptor.name, compilation.link(), compilation)
    cache_mod.binary_digest(binary)  # memoize the digest into the pickle
    if artifacts is not None:
        artifacts.put(artifact_key, binary)
    return binary


def _resolve_binary(task, compile_missing=True):
    """The task's binary, or ``None`` when it is not already cached and
    ``compile_missing`` is false (the parent's cheap cache pre-pass)."""
    from repro.workloads import build_workload, get_workload
    from repro.workloads.common import peek_cached_build

    if task.compile_opts is not None:
        opts = dict(task.compile_opts)
        # Inline-source tasks (the bench grid) carry their program text in
        # the descriptor; registry tasks resolve it by workload name.
        source = opts.pop("source_text", None)
        if source is None:
            source = get_workload(task.workload).source(task.iterations)
        target = opts.pop("target", "straight")
        if not compile_missing and cache_mod.artifact_cache() is None:
            return None
        if not compile_missing:
            # Probe without compiling: re-issue the lookup only.
            artifact_key = {
                "kind": "compile",
                "tag": cache_mod.TOOLCHAIN_TAG,
                "source": cache_mod.source_digest(source),
                "target": target,
                "max_distance": task.max_distance,
                "opts": dict(sorted(opts.items())),
            }
            return cache_mod.artifact_cache().get(artifact_key)
        return compile_binary_cached(
            source, target=target, max_distance=task.max_distance, **opts
        )
    if not compile_missing:
        build = peek_cached_build(task.workload, task.iterations,
                                  task.max_distance)
        return None if build is None else build.all()[task.binary_label]
    return build_workload(
        task.workload, task.iterations, task.max_distance
    ).all()[task.binary_label]


# ---------------------------------------------------------------------------
# Single-task execution (result-cached)
# ---------------------------------------------------------------------------


def _timing_key(binary, config, warm, attribution=False, sampling=None):
    key = {
        "kind": "timing",
        "tag": cache_mod.TOOLCHAIN_TAG,
        "binary": cache_mod.binary_digest(binary),
        "config": config.cache_key(),
        "warm": bool(warm),
        "guardrails": False,
        "attribution": bool(attribution),
    }
    if sampling:
        # Only sampled runs carry the schedule, so every pre-existing
        # full-run cache entry keeps its key (no mass invalidation).
        key["sampling"] = dict(sampling)
    return key


def _functional_key(binary):
    return {
        "kind": "functional",
        "tag": cache_mod.TOOLCHAIN_TAG,
        "binary": cache_mod.binary_digest(binary),
    }


def _timing_payload(result):
    return {
        "kind": "timing",
        "stats": result.stats.as_dict(),
        "output": list(result.output),
        "steps": result.run_result.steps,
    }


def _functional_payload(interp, run_result):
    return {
        "kind": "functional",
        "output": list(run_result.output),
        "steps": run_result.steps,
        "class_counts": interp.class_counts(),
        "mnemonic_counts": dict(interp.mnemonic_counts),
        "distance_hist": {
            str(d): c for d, c in getattr(interp, "distance_hist", {}).items()
        },
    }


def rehydrate_timing(binary, config, payload):
    """A :class:`SimulationResult` rebuilt from a cached timing payload."""
    from repro.core.api import SimulationResult
    from repro.straight.interpreter import RunResult

    stats = SimStats.from_dict(payload["stats"])
    run_result = RunResult("halt", payload["steps"], list(payload["output"]))
    return SimulationResult(binary, config, run_result, None, stats)


def execute_task(task, payload_only=True):
    """Run one task in this process, via the result cache when possible.

    Returns the JSON-safe payload dict (what workers ship back to the
    parent); set ``payload_only=False`` to get ``(payload, served_from_cache)``.
    """
    binary = _resolve_binary(task)
    results = cache_mod.result_cache()
    if task.kind == "functional":
        key = _functional_key(binary)
        if results is not None:
            hit = results.get(key)
            if hit is not None:
                return hit if payload_only else (hit, True)
        from repro.core.api import run_functional

        run = run_functional(binary)
        payload = _functional_payload(run.interpreter, run.run_result)
    else:
        attribution = getattr(task, "attribution", False)
        sampling = getattr(task, "sampling", None)
        key = _timing_key(binary, task.config, warm=True,
                          attribution=attribution, sampling=sampling)
        if results is not None:
            hit = results.get(key)
            if hit is not None:
                return hit if payload_only else (hit, True)
        if sampling is not None:
            if attribution:
                raise ValueError(
                    "attribution needs every committed instruction; "
                    "run it on a full (non-sampled) task"
                )
            from repro.harness.sampling import SamplingParams, simulate_sampled

            result = simulate_sampled(binary, task.config,
                                      SamplingParams.from_dict(sampling),
                                      warm_caches=True)
            payload = _timing_payload(result)
        else:
            from repro.core.api import simulate

            observer = None
            accountant = None
            if attribution:
                from repro.obs import ObserverBus, StallAttributionAccountant

                accountant = StallAttributionAccountant()
                observer = ObserverBus([accountant])
            result = simulate(binary, task.config, warm_caches=True,
                              observer=observer)
            payload = _timing_payload(result)
            if accountant is not None:
                payload["attribution"] = accountant.report()
    if results is not None:
        results.put(key, payload)
    return payload if payload_only else (payload, False)


def cached_simulate(binary, config, warm_caches=True):
    """Result-cached drop-in for :func:`repro.core.api.simulate`.

    Serial callers (the ablations, ``timed_run``) funnel through this so a
    sweep's persisted results and a later interactive run share entries.
    """
    results = cache_mod.result_cache()
    key = None
    if results is not None and warm_caches:
        key = _timing_key(binary, config, warm=True)
        hit = results.get(key)
        if hit is not None:
            return rehydrate_timing(binary, config, hit)
    from repro.core.api import simulate

    result = simulate(binary, config, warm_caches=warm_caches)
    if key is not None:
        results.put(key, _timing_payload(result))
    return result


def cached_functional_metrics(binary):
    """Instruction-mix / distance metrics of one binary, result-cached."""
    results = cache_mod.result_cache()
    key = None
    if results is not None:
        key = _functional_key(binary)
        hit = results.get(key)
        if hit is not None:
            return _metrics_view(hit)
    from repro.core.api import run_functional

    run = run_functional(binary)
    payload = _functional_payload(run.interpreter, run.run_result)
    if key is not None:
        results.put(key, payload)
    return _metrics_view(payload)


def _metrics_view(payload):
    view = dict(payload)
    view["distance_hist"] = {
        int(d): c for d, c in payload.get("distance_hist", {}).items()
    }
    return view


# ---------------------------------------------------------------------------
# In-process payload memo (what the experiment runners consume)
# ---------------------------------------------------------------------------

_payload_memo = {}
_default_jobs = 1


def set_default_jobs(jobs):
    """Set the process-wide parallelism for :func:`ensure_results` callers.

    Entry points (``straight sweep``, ``examples/reproduce_paper.py``) set
    this once; the experiment runners then fan their grids out without
    every call site threading a ``jobs`` parameter.
    """
    global _default_jobs
    _default_jobs = max(1, int(jobs))


def clear_memo():
    """Forget in-process sweep payloads (cache-isolation hook for tests)."""
    _payload_memo.clear()


def ensure_results(tasks, jobs=None, progress=None, diagnostics_dir=None):
    """Guarantee a payload for every task; returns ``{task_id: payload}``.

    Tasks already resolved this process are served from the in-process
    memo; the rest go through :func:`run_sweep` (persistent cache, then the
    pool).  This is the single entry point the experiment runners use.
    """
    missing = [t for t in tasks if t.task_id not in _payload_memo]
    if missing:
        report = run_sweep(missing, jobs=jobs if jobs is not None
                           else _default_jobs, progress=progress,
                           diagnostics_dir=diagnostics_dir)
        _payload_memo.update(report.results)
    return {t.task_id: _payload_memo[t.task_id] for t in tasks}


def payload_or_raise(payload, label=""):
    """Unwrap one payload, re-raising worker-side failures in the parent."""
    if payload.get("kind") == "error":
        raise SimulationError(
            f"{label or payload.get('task', 'sweep task')} failed in the "
            f"sweep engine: {payload.get('type')}: {payload.get('message')}",
            context={"traceback": payload.get("traceback")},
        )
    return payload


def metrics_view(payload):
    """A functional payload with ``distance_hist`` keys restored to ints."""
    return _metrics_view(payload)


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


def _error_payload(task, exc):
    record = {
        "kind": "error",
        "task": task.task_id,
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }
    if isinstance(exc, SimulationError):
        record["error"] = exc.as_dict()
    return record


def _worker_init(cache_root, cache_enabled):
    cache_mod.configure(cache_root, enabled=cache_enabled)


def _maybe_inject_chaos(task):
    """Chaos-campaign hook: fire the task's planted fault, if any."""
    if getattr(task, "chaos", None):
        from repro.harness.chaos import inject_fault

        inject_fault(task.chaos)


def _execute_guarded(task):
    """Run one task under its deadline; returns ``(payload, served)``.

    Never raises: every failure — including a planted chaos fault — comes
    back as a structured error payload.  Shared by the inline path, the
    broken-pool fallback and the worker entry so all three classify and
    report failures identically.
    """
    try:
        timeout = task.timeout_s or DEFAULT_TASK_TIMEOUT_S
        with deadline(timeout, task.task_id):
            _maybe_inject_chaos(task)
            return execute_task(task, payload_only=False)
    except Exception as exc:  # noqa: BLE001 - degrade to a structured record
        return _error_payload(task, exc), False


def _worker_run(task):
    """Top-level (spawn-picklable) worker entry: never raises."""
    payload, served = _execute_guarded(task)
    return task.task_id, payload, served


class SweepReport:
    """Ordered results + manifest + cache accounting for one sweep."""

    def __init__(self, results, manifest, cache_report, wall_s):
        #: ``{task_id: payload}`` in task-submission order; error payloads
        #: have ``kind == 'error'`` and are *also* listed in the manifest.
        self.results = results
        self.manifest = manifest
        self.cache = cache_report
        self.wall_s = wall_s

    @property
    def ok(self):
        return not self.manifest["failed"]

    def result_hit_rate(self):
        """Fraction of tasks served from the persistent result cache."""
        total = len(self.manifest["requested"])
        return self.manifest["cache_served"] / total if total else 0.0

    def as_dict(self):
        return {
            "results": self.results,
            "manifest": self.manifest,
            "cache": self.cache,
            "wall_s": self.wall_s,
        }


def run_sweep(tasks, jobs=None, progress=None, diagnostics_dir=None,
              raise_on_error=False):
    """Execute ``tasks`` (deduplicated by id), fanned out over ``jobs`` cores.

    Returns a :class:`SweepReport`.  ``jobs=None`` uses ``os.cpu_count()``;
    ``jobs<=1`` runs inline.  ``progress`` is an optional callable receiving
    ``(done, total, task_id, status, seconds)`` events.
    """
    started = time.perf_counter()
    ordered = []
    seen = set()
    for task in tasks:
        if task.task_id not in seen:
            seen.add(task.task_id)
            ordered.append(task)

    if jobs is None:
        jobs = os.cpu_count() or 1
    results = {}
    errors = []
    done = 0
    cache_served = 0

    def record(task, payload, seconds, status):
        nonlocal done, cache_served
        done += 1
        results[task.task_id] = payload
        if status == "cache":
            cache_served += 1
        if payload.get("kind") == "error":
            record_failure(task, payload)
        if progress is not None:
            progress(done, len(ordered), task.task_id, status, seconds)

    def record_failure(task, payload):
        entry = {
            "experiment": task.task_id,
            "type": payload.get("type", "Error"),
            "message": payload.get("message", ""),
        }
        if raise_on_error:
            raise SimulationError(
                f"sweep task {task.task_id} failed: "
                f"{entry['type']}: {entry['message']}"
            )
        if diagnostics_dir:
            from repro.guardrails.crashdump import write_crash_dump

            exc = SimulationError(
                f"{entry['type']}: {entry['message']}",
                context={"task": task.task_id},
            )
            entry["crash_dump"] = write_crash_dump(
                diagnostics_dir, task.task_id, exc,
                extra={"worker": payload},
            )
        errors.append(entry)

    # Cheap parent-side pre-pass: anything the caches can fully serve never
    # reaches the pool (this is the entire warm path).
    pending = []
    for task in ordered:
        served = None
        if cache_mod.result_cache() is not None:
            try:
                binary = _resolve_binary(task, compile_missing=False)
            except Exception:  # noqa: BLE001 - unprobeable != failed; the
                binary = None  # worker will produce the structured error
            if binary is not None:
                key = (_functional_key(binary) if task.kind == "functional"
                       else _timing_key(
                           binary, task.config, warm=True,
                           attribution=getattr(task, "attribution", False)))
                served = cache_mod.result_cache().get(key)
        if served is not None:
            record(task, served, 0.0, "cache")
        else:
            pending.append(task)

    inline_fallback = []
    if pending and jobs > 1:
        inline_fallback = _run_pool(pending, jobs, record)
    elif pending:
        for task in pending:
            task_started = time.perf_counter()
            payload, hit = _execute_guarded(task)
            record(task, payload, time.perf_counter() - task_started,
                   "cache" if hit else "run")

    manifest = {
        "requested": [t.task_id for t in ordered],
        "completed": [t.task_id for t in ordered
                      if results.get(t.task_id, {}).get("kind") != "error"],
        "failed": [e["experiment"] for e in errors],
        "errors": errors,
        "jobs": jobs,
        "cache_served": cache_served,
        # Tasks that lost their pool worker and re-ran in the parent; the
        # supervisor and the chaos campaign both audit this list.
        "inline_fallback": inline_fallback,
    }
    if diagnostics_dir and errors:
        from repro.guardrails.crashdump import write_manifest

        manifest["manifest_path"] = write_manifest(diagnostics_dir, manifest)

    ordered_results = {t.task_id: results[t.task_id] for t in ordered}
    return SweepReport(ordered_results, manifest, cache_mod.cache_report(),
                       round(time.perf_counter() - started, 6))


def _run_pool(pending, jobs, record):
    """Farm ``pending`` out to a spawn pool; degrade broken pools to inline.

    Returns the task ids that actually re-ran inline after the pool broke.
    Results that finished in a worker *before* the break are harvested from
    their futures, not recomputed, so a partial pool failure never
    double-runs (or double-counts) completed work.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("spawn")
    remaining = {task.task_id: task for task in pending}
    task_started = {task.task_id: time.perf_counter() for task in pending}
    inline_fallback = []

    def record_pooled(task, payload, served):
        del remaining[task.task_id]
        status = ("cache" if served
                  and payload.get("kind") != "error" else "run")
        record(task, payload,
               time.perf_counter() - task_started[task.task_id], status)

    futures = {}
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(cache_mod.cache_root(), cache_mod.is_enabled()),
        ) as pool:
            futures = {task.task_id: pool.submit(_worker_run, task)
                       for task in pending}
            for task in pending:
                _task_id, payload, served = futures[task.task_id].result()
                record_pooled(task, payload, served)
    except Exception:  # pool itself died (killed worker, spawn failure)
        for task in list(remaining.values()):
            # Harvest work that finished before the pool broke: its future
            # holds a real result even though the executor is now dead.
            future = futures.get(task.task_id)
            if future is not None and future.done():
                try:
                    _task_id, payload, served = future.result()
                except Exception:  # noqa: BLE001 - future died with the pool
                    pass
                else:
                    record_pooled(task, payload, served)
                    continue
            started = time.perf_counter()
            payload, _served = _execute_guarded(task)
            del remaining[task.task_id]
            inline_fallback.append(task.task_id)
            record(task, payload, time.perf_counter() - started, "inline")
    return inline_fallback
