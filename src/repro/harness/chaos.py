"""Seeded chaos campaign for the supervised sweep layer.

PR 1 proved the simulator core's guardrails with a fault-injection
campaign; this module applies the same discipline one layer up, to the
harness itself.  Every failure mode the supervisor claims to survive is
*injected on purpose*, under a seed, and the campaign asserts the outcome
the robustness contract promises:

==========================  =============================================
Injected failure            Required outcome
==========================  =============================================
worker killed mid-task      broken pool harvested + inline fallback; all
                            results delivered, none double-counted
transient OS error          retried with backoff, then succeeds
deadline expiry             retried up to the attempt cap, then cleanly
                            quarantined with a crash dump
deterministic SimulationError  quarantined immediately, zero retries burned
cache corruption            fsck detects 100%, corrupt entries quarantined,
                            never re-served, recompute matches original
mid-sweep interrupt         resume replays the journal and produces a
                            byte-identical canonical manifest
torn journal tail           intact prefix salvaged, sweep completes
crash-dump flood            dump directory stays within its rotation cap
==========================  =============================================

``run_chaos_campaign`` executes every scenario in an isolated cache root
and reports per-scenario verdicts plus a coverage fraction; CI gates the
campaign at >= 90% (which, at this scenario count, means all of them).

Fault *injection* itself lives here too (:func:`inject_fault`): a
``SweepTask.chaos`` spec plants one fault inside the execution path, with
an optional at-most-once flag file so a fault fires exactly one time across
any number of processes.
"""

import json
import os
import random
import shutil
import signal
import tempfile
import time

from repro.common.errors import SimulationError
from repro.harness import cache as cache_mod
from repro.harness.supervisor import (
    RetryPolicy,
    SweepInterrupted,
    supervised_sweep,
)
from repro.harness.sweep import SweepTask, run_sweep

#: Mini-C source of the chaos grid's tasks; trivially fast to compile/run.
CHAOS_SOURCE = """
int main() {
    int s = 0;
    for (int i = 0; i < %d; i++) { s += i * 7 - (i >> 1); }
    __out(s);
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Fault injection (consumed by repro.harness.sweep)
# ---------------------------------------------------------------------------


def _claim_once(flag_path):
    """Atomically claim an at-most-once fault across processes."""
    try:
        fd = os.open(flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.close(fd)
    return True


def inject_fault(spec):
    """Fire one planted fault; called from the sweep execution path.

    Spec keys: ``mode`` (``kill`` / ``sleep`` / ``raise-transient`` /
    ``raise-deterministic``), optional ``once`` (flag-file path: the fault
    fires for exactly one claimer), optional ``seconds`` (sleep length).

    ``kill`` only ever fires inside a pool worker — the main process checks
    ``multiprocessing.parent_process()`` and refuses, so a broken-pool
    inline fallback can never shoot the supervisor itself.
    """
    once = spec.get("once")
    if once is not None and not _claim_once(once):
        return
    mode = spec.get("mode")
    if mode == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is None:
            return  # never kill the supervising process
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "sleep":
        time.sleep(float(spec.get("seconds", 60.0)))
    elif mode == "raise-transient":
        raise OSError("chaos: injected transient OS failure")
    elif mode == "raise-deterministic":
        raise SimulationError("chaos: injected deterministic failure",
                              context={"chaos": "planted"})
    else:
        raise ValueError(f"unknown chaos mode {mode!r}")


def corrupt_file(path, rng, mode=None):
    """Seeded on-disk corruption: bit-flip or truncate one cache entry."""
    mode = mode or rng.choice(("bitflip", "truncate", "garbage"))
    size = os.path.getsize(path)
    if mode == "truncate" and size > 1:
        with open(path, "rb+") as handle:
            handle.truncate(rng.randrange(1, size))
    elif mode == "garbage":
        with open(path, "wb") as handle:
            handle.write(bytes(rng.randrange(256)
                               for _ in range(rng.randrange(4, 64))))
    else:
        offset = rng.randrange(max(size, 1))
        with open(path, "rb+") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            original = byte[0] if byte else 0
            handle.seek(offset)
            handle.write(bytes([original ^ (1 << rng.randrange(8))]))
    return mode


# ---------------------------------------------------------------------------
# Scenario helpers
# ---------------------------------------------------------------------------


class _ScenarioContext:
    """Per-scenario isolation: fresh cache root + workdir + sub-seeded RNG."""

    def __init__(self, name, workdir, seed, jobs):
        self.name = name
        self.dir = os.path.join(workdir, name)
        os.makedirs(self.dir, exist_ok=True)
        self.rng = random.Random(f"{seed}/{name}")
        self.jobs = jobs

    def path(self, *parts):
        return os.path.join(self.dir, *parts)

    def fresh_cache(self, label="cache"):
        cache_mod.configure(self.path(label), enabled=True)


#: The ISA rotation of the chaos grids.  Seeded scenarios randomize over
#: task *indices*, so the order here is part of the campaign's determinism
#: contract: riscv/straight keep their historical slots 0/1, bb extends.
_GRID_ROTATION = ("riscv", "straight", "bb")


def _grid(prefix, count=2, chaos_on=None, chaos=None, timeout_s=None):
    """A tiny timing grid rotating over the registered ISAs; ``chaos_on``
    plants ``chaos`` on one task."""
    from repro import isa as isa_registry

    tasks = []
    for index in range(count):
        descriptor = isa_registry.get(_GRID_ROTATION[index % len(_GRID_ROTATION)])
        config = descriptor.config_factories["2way"]()
        target = next(iter(descriptor.targets))
        tasks.append(SweepTask(
            f"{prefix}/t{index}",
            f"{prefix}-tiny{index}",
            config=config,
            compile_opts={"target": target,
                          "source_text": CHAOS_SOURCE % (16 + index)},
            timeout_s=timeout_s,
            chaos=chaos if chaos_on == index else None,
        ))
    return tasks


def _no_sleep_policy(**kwargs):
    kwargs.setdefault("sleep", lambda _s: None)
    return RetryPolicy(**kwargs)


def _all_completed(report, tasks):
    ok = not report.manifest["quarantined"]
    for task in tasks:
        payload = report.results.get(task.task_id)
        ok = ok and payload is not None and payload.get("kind") == "timing"
    return ok


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def scenario_worker_kill(ctx):
    """A pool worker is SIGKILLed mid-task: harvest + inline fallback."""
    ctx.fresh_cache()
    victim = ctx.rng.randrange(3)
    tasks = _grid("kill", count=3, chaos_on=victim,
                  chaos={"mode": "kill", "once": ctx.path("kill.flag")})
    report = supervised_sweep(tasks, jobs=max(2, ctx.jobs),
                              checkpoint=ctx.path("journal.jsonl"),
                              policy=_no_sleep_policy())
    recovered = _all_completed(report, tasks)
    return {
        "ok": recovered,
        "detail": {
            "victim": tasks[victim].task_id,
            "inline_fallback": report.telemetry["inline_fallback"],
            "retries_used": report.telemetry["retries_used"],
            "completed": len(report.manifest["completed"]),
        },
    }


def scenario_transient_retry(ctx):
    """A one-shot transient OS error: retried with backoff, then succeeds."""
    ctx.fresh_cache()
    tasks = _grid("transient", count=2, chaos_on=0,
                  chaos={"mode": "raise-transient",
                         "once": ctx.path("transient.flag")})
    report = supervised_sweep(tasks, jobs=1,
                              checkpoint=ctx.path("journal.jsonl"),
                              policy=_no_sleep_policy())
    return {
        "ok": (_all_completed(report, tasks)
               and report.telemetry["retries_used"] == 1
               and report.telemetry["rounds"] == 2),
        "detail": {
            "retries_used": report.telemetry["retries_used"],
            "rounds": report.telemetry["rounds"],
            "quarantined": report.manifest["failed"],
        },
    }


def scenario_deadline_expiry(ctx):
    """A hung task blows its deadline every attempt: clean quarantine."""
    ctx.fresh_cache()
    quarantine = ctx.path("quarantine")
    tasks = _grid("deadline", count=2, chaos_on=1,
                  chaos={"mode": "sleep", "seconds": 30.0},
                  timeout_s=0.2)
    report = supervised_sweep(
        tasks, jobs=1, checkpoint=ctx.path("journal.jsonl"),
        policy=_no_sleep_policy(max_attempts=2), quarantine_dir=quarantine,
    )
    hung = tasks[1].task_id
    entry = next((e for e in report.manifest["quarantined"]
                  if e["task"] == hung), None)
    dumps = [f for f in os.listdir(quarantine)
             if f.startswith("crash-")] if os.path.isdir(quarantine) else []
    return {
        "ok": (report.manifest["failed"] == [hung]
               and entry is not None
               and entry["type"] == "RunTimeoutError"
               and entry["class"] == "transient"
               and report.telemetry["attempts"][hung] == 2
               and len(dumps) == 1
               and report.manifest["completed"] == [tasks[0].task_id]),
        "detail": {
            "quarantined": report.manifest["failed"],
            "attempts": report.telemetry["attempts"],
            "crash_dumps": dumps,
        },
    }


def scenario_deterministic_quarantine(ctx):
    """A deterministic failure: immediate quarantine, zero retries burned."""
    ctx.fresh_cache()
    quarantine = ctx.path("quarantine")
    tasks = _grid("det", count=2, chaos_on=0,
                  chaos={"mode": "raise-deterministic"})
    report = supervised_sweep(
        tasks, jobs=1, checkpoint=ctx.path("journal.jsonl"),
        policy=_no_sleep_policy(), quarantine_dir=quarantine,
    )
    bad = tasks[0].task_id
    entry = next((e for e in report.manifest["quarantined"]
                  if e["task"] == bad), None)
    dumps = [f for f in os.listdir(quarantine)
             if f.startswith("crash-")] if os.path.isdir(quarantine) else []
    return {
        "ok": (report.manifest["failed"] == [bad]
               and entry is not None and entry["class"] == "deterministic"
               and report.telemetry["retries_used"] == 0
               and report.telemetry["rounds"] == 1
               and len(dumps) == 1),
        "detail": {
            "quarantined": report.manifest["failed"],
            "retries_used": report.telemetry["retries_used"],
            "crash_dumps": dumps,
        },
    }


def scenario_cache_corruption(ctx):
    """Seeded bit-flips/truncations: fsck detects all, recompute matches."""
    ctx.fresh_cache()
    tasks = _grid("corrupt", count=2)
    baseline = supervised_sweep(tasks, jobs=1)
    if baseline.manifest["failed"]:
        return {"ok": False, "detail": {"baseline_failed":
                                        baseline.manifest["failed"]}}
    root = cache_mod.cache_root()
    layers = (cache_mod.ResultCache(root), cache_mod.ArtifactCache(root))
    entries = [p for layer in layers for p in layer.entry_paths()]
    victims = sorted(ctx.rng.sample(entries,
                                    max(1, (len(entries) + 1) // 2)))
    modes = {path: corrupt_file(path, ctx.rng) for path in victims}
    scan = cache_mod.fsck(root, repair=False)
    detected = sorted(path for layer in scan["layers"].values()
                      for path in layer["corrupt"])
    repaired = cache_mod.fsck(root, repair=True)
    quarantined = [path for layer in repaired["layers"].values()
                   for path in layer["quarantined"]]
    # Live path: corrupted entries must recompute, bit-identically.
    from repro.harness.sweep import clear_memo

    clear_memo()
    rerun = supervised_sweep(tasks, jobs=1)
    return {
        "ok": (detected == victims
               and not scan["ok"]
               and repaired["ok"]
               and len(quarantined) == len(victims)
               and rerun.results == baseline.results
               and not rerun.manifest["failed"]),
        "detail": {
            "entries": len(entries),
            "corrupted": {os.path.basename(p): m for p, m in modes.items()},
            "detected": len(detected),
            "quarantined": len(quarantined),
            "recompute_matches": rerun.results == baseline.results,
        },
    }


def scenario_interrupt_resume(ctx):
    """Kill the sweep at a random checkpoint; resume must be byte-identical."""
    ctx.fresh_cache("cache-ref")
    tasks = _grid("resume", count=3)
    reference = supervised_sweep(tasks, jobs=1,
                                 checkpoint=ctx.path("ref.jsonl"))
    ctx.fresh_cache("cache-int")
    from repro.harness.sweep import clear_memo

    clear_memo()
    cut = ctx.rng.randrange(1, len(tasks))
    journal = ctx.path("journal.jsonl")
    interrupted_at = None
    try:
        supervised_sweep(tasks, jobs=1, checkpoint=journal,
                         interrupt_after=cut)
    except SweepInterrupted as exc:
        interrupted_at = exc.completed
    clear_memo()
    resumed = supervised_sweep(tasks, jobs=1, checkpoint=journal,
                               resume=True)
    return {
        "ok": (interrupted_at == cut
               and resumed.telemetry["resumed"]
               and len(resumed.telemetry["resumed"]) == cut
               and resumed.manifest_bytes() == reference.manifest_bytes()
               and resumed.results == reference.results),
        "detail": {
            "interrupted_after": interrupted_at,
            "resumed": resumed.telemetry["resumed"],
            "manifest_bytes_equal":
                resumed.manifest_bytes() == reference.manifest_bytes(),
        },
    }


def scenario_torn_journal(ctx):
    """A torn journal tail: the intact prefix is salvaged, the sweep heals."""
    ctx.fresh_cache()
    tasks = _grid("torn", count=3)
    journal = ctx.path("journal.jsonl")
    reference = supervised_sweep(tasks, jobs=1, checkpoint=ctx.path("ref.jsonl"))
    try:
        supervised_sweep(tasks, jobs=1, checkpoint=journal, interrupt_after=2)
    except SweepInterrupted:
        pass
    with open(journal, "a") as handle:
        handle.write('{"record": "done", "key": "deadbeef", "task": "x"')
    from repro.harness.sweep import clear_memo

    clear_memo()
    resumed = supervised_sweep(tasks, jobs=1, checkpoint=journal, resume=True)
    salvage = resumed.telemetry["journal_salvage"]
    return {
        "ok": (salvage["torn"] == 1
               and salvage["replayed"] == 2
               and resumed.manifest_bytes() == reference.manifest_bytes()
               and not resumed.manifest["failed"]),
        "detail": {"salvage": salvage,
                   "resumed": resumed.telemetry["resumed"]},
    }


def scenario_crashdump_flood(ctx):
    """Many failing tasks cannot flood the disk: dumps rotate at the cap."""
    from repro.guardrails import crashdump

    ctx.fresh_cache()
    quarantine = ctx.path("quarantine")
    tasks = _grid("flood", count=6)
    for task in tasks:
        task.chaos = {"mode": "raise-deterministic"}
    cap = 3
    previous = crashdump.configure_rotation(cap)
    try:
        report = supervised_sweep(tasks, jobs=1, quarantine_dir=quarantine,
                                  policy=_no_sleep_policy())
    finally:
        crashdump.configure_rotation(previous)
    dumps = [f for f in os.listdir(quarantine) if f.startswith("crash-")]
    return {
        "ok": (len(report.manifest["failed"]) == len(tasks)
               and 0 < len(dumps) <= cap),
        "detail": {"cap": cap, "dumps": len(dumps),
                   "quarantined": len(report.manifest["failed"])},
    }


#: Registry, in documentation order.  ``quick`` names the CI smoke subset.
SCENARIOS = {
    "worker-kill": scenario_worker_kill,
    "transient-retry": scenario_transient_retry,
    "deadline-expiry": scenario_deadline_expiry,
    "deterministic-quarantine": scenario_deterministic_quarantine,
    "cache-corruption": scenario_cache_corruption,
    "interrupt-resume": scenario_interrupt_resume,
    "torn-journal": scenario_torn_journal,
    "crashdump-flood": scenario_crashdump_flood,
}

QUICK_SCENARIOS = ("worker-kill", "cache-corruption", "interrupt-resume")

#: CI gate: the campaign passes only at or above this recovery coverage.
COVERAGE_GATE = 0.9


class ChaosReport:
    """Per-scenario verdicts + the coverage fraction the CI gate checks."""

    def __init__(self, seed, scenarios, workdir):
        self.seed = seed
        self.scenarios = scenarios
        self.workdir = workdir

    @property
    def coverage(self):
        if not self.scenarios:
            return 0.0
        return sum(1 for s in self.scenarios if s["ok"]) / len(self.scenarios)

    @property
    def ok(self):
        return bool(self.scenarios) and self.coverage >= COVERAGE_GATE

    def as_dict(self):
        return {
            "seed": self.seed,
            "coverage": round(self.coverage, 4),
            "coverage_gate": COVERAGE_GATE,
            "ok": self.ok,
            "scenarios": self.scenarios,
            "workdir": self.workdir,
        }

    def text(self):
        lines = [f"chaos campaign (seed {self.seed}): "
                 f"{sum(1 for s in self.scenarios if s['ok'])}"
                 f"/{len(self.scenarios)} scenarios recovered "
                 f"({self.coverage:.0%}, gate {COVERAGE_GATE:.0%})"]
        for scenario in self.scenarios:
            verdict = "ok  " if scenario["ok"] else "FAIL"
            lines.append(f"  [{verdict}] {scenario['name']} "
                         f"({scenario['wall_s']:.2f}s)")
            if not scenario["ok"]:
                lines.append(f"         {json.dumps(scenario['detail'])}")
        return "\n".join(lines)


def run_chaos_campaign(seed=20260808, scenarios=None, jobs=2, workdir=None,
                       keep_workdir=False, progress=None):
    """Execute the campaign; returns a :class:`ChaosReport`.

    Every scenario runs against its own fresh cache root under ``workdir``
    (a temp dir by default, removed afterwards unless ``keep_workdir`` —
    CI keeps it and uploads the journals and quarantine directories as
    artifacts).  The process-global cache configuration is saved and
    restored around the campaign.
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown chaos scenarios: {', '.join(unknown)}; "
                       f"choose from {', '.join(SCENARIOS)}")
    owned_workdir = workdir is None
    if owned_workdir:
        workdir = tempfile.mkdtemp(prefix="straight-chaos-")
    os.makedirs(workdir, exist_ok=True)

    from repro.harness.sweep import clear_memo

    previous_state = cache_mod.swap_state()
    results = []
    try:
        for name in names:
            clear_memo()
            ctx = _ScenarioContext(name, workdir, seed, jobs)
            started = time.perf_counter()
            try:
                outcome = SCENARIOS[name](ctx)
            except Exception as exc:  # noqa: BLE001 - a crash is a failure
                outcome = {"ok": False,
                           "detail": {"exception": f"{type(exc).__name__}: "
                                                   f"{exc}"}}
            outcome["name"] = name
            outcome["wall_s"] = round(time.perf_counter() - started, 3)
            results.append(outcome)
            if progress is not None:
                progress(name, outcome["ok"], outcome["wall_s"])
    finally:
        clear_memo()
        cache_mod.swap_state(previous_state)
        if owned_workdir and not keep_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
            workdir = None
    return ChaosReport(seed, results, workdir)
