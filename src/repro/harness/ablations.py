"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they decompose the mechanisms behind
the headline results so a reader can see *which* design element buys what.

* :func:`ablate_re_plus` — the two RE+ mechanisms (producer sinking into
  refresh slots, Fig. 10(b); loop demotion to the stack frame, Fig. 10(c))
  switched on independently.
* :func:`ablate_recovery` — SS's misprediction cost split into the ROB-walk
  component (removed by giving the walk unlimited overlap) and the
  front-end depth component (SS at STRAIGHT's 6-stage depth).
* :func:`ablate_spadd_throughput` — the §III-B concern that multiple SPADDs
  per fetch group would need cascaded adders: measure how much allowing 2
  or 4 per group would actually buy.

Each study declares its custom-compiled grid points as
:class:`~repro.harness.sweep.SweepTask` descriptors with ``compile_opts``
(the backend knobs the registry binaries do not expose) and submits them to
the sweep engine, so ablation points parallelize and persist alongside the
figure grid.
"""

from repro.core.configs import ss_4way, straight_4way
from repro.harness.cache import canonical_key
from repro.harness.reporting import format_table
from repro.harness.sweep import (
    SweepTask,
    compile_binary_cached,
    ensure_results,
    payload_or_raise,
)
from repro.workloads import get_workload


def custom_task(workload, compile_opts, config, max_distance=1023,
                iterations=None):
    """One custom-compiled timing grid point."""
    opts_tag = canonical_key(dict(sorted(compile_opts.items())))[:10]
    task_id = (
        f"abl/{workload}/{compile_opts.get('target', 'straight')}/"
        f"{opts_tag}/md{max_distance}/"
        f"{config.name}@{canonical_key(config.cache_key())[:10]}"
    )
    return SweepTask(
        task_id,
        workload,
        config=config,
        iterations=iterations,
        max_distance=max_distance,
        compile_opts=compile_opts,
    )


def _stats_of(results, task):
    return payload_or_raise(results[task.task_id], task.task_id)["stats"]


def re_plus_grid(workload="coremark"):
    """[(variant name, task)] for the RE+ mechanism ablation."""
    variants = [
        ("RAW", dict(redundancy_elimination=False)),
        ("RAW+sinking", dict(redundancy_elimination=False, enable_sinking=True)),
        ("RAW+demotion", dict(redundancy_elimination=False, enable_demotion=True)),
        ("RE+ (both)", dict(redundancy_elimination=True)),
    ]
    return [
        (name, custom_task(workload, dict(target="straight", **kwargs),
                           straight_4way()))
        for name, kwargs in variants
    ]


def ablate_re_plus(workload="coremark"):
    """RAW -> +sinking -> +demotion -> RE+ on the 4-way STRAIGHT model."""
    grid = re_plus_grid(workload)
    results = ensure_results([task for _, task in grid])
    source = get_workload(workload).source()
    rows = []
    baseline_cycles = None
    for name, task in grid:
        stats = _stats_of(results, task)
        if baseline_cycles is None:
            baseline_cycles = stats["cycles"]
        opts = dict(task.compile_opts)
        opts.pop("target")
        binary = compile_binary_cached(source, target="straight", **opts)
        rmovs = sum(
            s["rmovs"] for s in binary.compilation.stats.values()
        )  # static count in the binary
        rows.append(
            {
                "variant": name,
                "instructions": stats["instructions"],
                "static_rmovs": rmovs,
                "cycles": stats["cycles"],
                "relative_perf": round(baseline_cycles / stats["cycles"], 4),
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"RE+ ablation ({workload}, STRAIGHT-4way, RAW = 1.0)"
        ),
    }


def recovery_grid(workload="coremark"):
    """[(variant name, task)] decomposing SS's misprediction cost."""
    riscv_opts = dict(target="riscv")
    straight_opts = dict(target="straight", redundancy_elimination=True)
    return [
        ("SS (walk + 8-deep)",
         custom_task(workload, riscv_opts, ss_4way())),
        ("SS, walk fully overlapped",
         custom_task(workload, riscv_opts,
                     ss_4way(rename_stage_depth=10_000, name="SS-nowalk"))),
        ("SS, 6-deep front end",
         custom_task(workload, riscv_opts,
                     ss_4way(frontend_depth=6, name="SS-6deep"))),
        ("SS, both",
         custom_task(workload, riscv_opts,
                     ss_4way(rename_stage_depth=10_000, frontend_depth=6,
                             name="SS-both"))),
        ("STRAIGHT RE+",
         custom_task(workload, straight_opts, straight_4way())),
    ]


def ablate_recovery(workload="coremark"):
    """Decompose SS's misprediction cost: walk vs front-end depth."""
    grid = recovery_grid(workload)
    results = ensure_results([task for _, task in grid])
    rows = []
    baseline = None
    for name, task in grid:
        stats = _stats_of(results, task)
        if baseline is None:
            baseline = stats["cycles"]
        rows.append(
            {
                "variant": name,
                "cycles": stats["cycles"],
                "relative_perf": round(baseline / stats["cycles"], 4),
                "recovery_stalls": stats["recovery_stall_cycles"],
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows,
            title=f"Recovery ablation ({workload}, 4-way, SS = 1.0)",
        ),
    }


def spadd_grid(workload="dhrystone"):
    """[(limit, task)] for the SPADD-throughput ablation."""
    opts = dict(target="straight", redundancy_elimination=True)
    return [
        (limit,
         custom_task(workload, opts,
                     straight_4way(spadd_per_group=limit,
                                   name=f"ST-spadd{limit}")))
        for limit in (1, 2, 4)
    ]


def ablate_spadd_throughput(workload="dhrystone"):
    """How much do cascaded SPADD adders (2 or 4 per group) buy?

    The paper argues one SPADD per group suffices because SPADDs are rare
    ("two per function call, at the most"); this measures that claim.
    """
    grid = spadd_grid(workload)
    results = ensure_results([task for _, task in grid])
    rows = []
    baseline = None
    for limit, task in grid:
        stats = _stats_of(results, task)
        if baseline is None:
            baseline = stats["cycles"]
        rows.append(
            {
                "spadd_per_group": limit,
                "cycles": stats["cycles"],
                "relative_perf": round(baseline / stats["cycles"], 4),
                "spadd_stalls": stats["spadd_stall_cycles"],
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"SPADD throughput ablation ({workload}, 4-way)"
        ),
    }
