"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they decompose the mechanisms behind
the headline results so a reader can see *which* design element buys what.

* :func:`ablate_re_plus` — the two RE+ mechanisms (producer sinking into
  refresh slots, Fig. 10(b); loop demotion to the stack frame, Fig. 10(c))
  switched on independently.
* :func:`ablate_recovery` — SS's misprediction cost split into the ROB-walk
  component (removed by giving the walk unlimited overlap) and the
  front-end depth component (SS at STRAIGHT's 6-stage depth).
* :func:`ablate_spadd_throughput` — the §III-B concern that multiple SPADDs
  per fetch group would need cascaded adders: measure how much allowing 2
  or 4 per group would actually buy.
"""

from repro.frontend import compile_source
from repro.compiler import compile_to_riscv, compile_to_straight
from repro.core.api import Binary, simulate
from repro.core.configs import ss_4way, straight_4way
from repro.workloads import get_workload
from repro.harness.reporting import format_table


def _straight_binary(source, **compile_kwargs):
    module = compile_source(source)
    compilation = compile_to_straight(module, **compile_kwargs)
    return Binary("straight", compilation.link(), compilation)


def _riscv_binary(source):
    module = compile_source(source)
    compilation = compile_to_riscv(module)
    return Binary("riscv", compilation.link(), compilation)


def ablate_re_plus(workload="coremark"):
    """RAW -> +sinking -> +demotion -> RE+ on the 4-way STRAIGHT model."""
    source = get_workload(workload).source()
    variants = [
        ("RAW", dict(redundancy_elimination=False)),
        ("RAW+sinking", dict(redundancy_elimination=False, enable_sinking=True)),
        ("RAW+demotion", dict(redundancy_elimination=False, enable_demotion=True)),
        ("RE+ (both)", dict(redundancy_elimination=True)),
    ]
    rows = []
    baseline_cycles = None
    for name, kwargs in variants:
        binary = _straight_binary(source, **kwargs)
        result = simulate(binary, straight_4way(), warm_caches=True)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        rmovs = sum(
            s["rmovs"] for s in binary.compilation.stats.values()
        )  # static count in the binary
        rows.append(
            {
                "variant": name,
                "instructions": result.stats.instructions,
                "static_rmovs": rmovs,
                "cycles": result.cycles,
                "relative_perf": round(baseline_cycles / result.cycles, 4),
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"RE+ ablation ({workload}, STRAIGHT-4way, RAW = 1.0)"
        ),
    }


def ablate_recovery(workload="coremark"):
    """Decompose SS's misprediction cost: walk vs front-end depth."""
    source = get_workload(workload).source()
    riscv = _riscv_binary(source)
    straight = _straight_binary(source, redundancy_elimination=True)
    variants = [
        ("SS (walk + 8-deep)", riscv, ss_4way()),
        (
            "SS, walk fully overlapped",
            riscv,
            ss_4way(rename_stage_depth=10_000, name="SS-nowalk"),
        ),
        (
            "SS, 6-deep front end",
            riscv,
            ss_4way(frontend_depth=6, name="SS-6deep"),
        ),
        (
            "SS, both",
            riscv,
            ss_4way(
                rename_stage_depth=10_000, frontend_depth=6, name="SS-both"
            ),
        ),
        ("STRAIGHT RE+", straight, straight_4way()),
    ]
    rows = []
    baseline = None
    for name, binary, config in variants:
        result = simulate(binary, config, warm_caches=True)
        if baseline is None:
            baseline = result.cycles
        rows.append(
            {
                "variant": name,
                "cycles": result.cycles,
                "relative_perf": round(baseline / result.cycles, 4),
                "recovery_stalls": result.stats.recovery_stall_cycles,
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows,
            title=f"Recovery ablation ({workload}, 4-way, SS = 1.0)",
        ),
    }


def ablate_spadd_throughput(workload="dhrystone"):
    """How much do cascaded SPADD adders (2 or 4 per group) buy?

    The paper argues one SPADD per group suffices because SPADDs are rare
    ("two per function call, at the most"); this measures that claim.
    """
    source = get_workload(workload).source()
    binary = _straight_binary(source, redundancy_elimination=True)
    rows = []
    baseline = None
    for limit in (1, 2, 4):
        config = straight_4way(spadd_per_group=limit, name=f"ST-spadd{limit}")
        result = simulate(binary, config, warm_caches=True)
        if baseline is None:
            baseline = result.cycles
        rows.append(
            {
                "spadd_per_group": limit,
                "cycles": result.cycles,
                "relative_perf": round(baseline / result.cycles, 4),
                "spadd_stalls": result.stats.spadd_stall_cycles,
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"SPADD throughput ablation ({workload}, 4-way)"
        ),
    }
