"""Cached workload timing runs shared across experiments."""

from repro.core.api import simulate
from repro.workloads import build_workload

_run_cache = {}


def clear_cache():
    """Forget cached timing runs (tests use this for isolation)."""
    _run_cache.clear()


def timed_run(workload, binary_label, config, iterations=None, max_distance=1023):
    """Simulate one (workload, binary, core) combination, memoized.

    ``binary_label`` is one of ``'SS'``, ``'STRAIGHT-RAW'``,
    ``'STRAIGHT-RE+'``; ``config`` is a CoreConfig.  The cache key includes
    the parameters that change timing (predictor, recovery idealization,
    core name, workload scale).
    """
    key = (
        workload,
        binary_label,
        config.name,
        config.predictor,
        config.ideal_recovery,
        config.max_distance if config.is_straight else None,
        iterations,
        max_distance,
    )
    if key not in _run_cache:
        binaries = build_workload(workload, iterations, max_distance)
        binary = binaries.all()[binary_label]
        _run_cache[key] = simulate(binary, config, warm_caches=True)
    return _run_cache[key]
