"""Cached workload timing runs plus the hardened sweep driver.

``timed_run`` memoizes one (workload, binary, core) simulation on the *full
structural identity* of the core configuration (``CoreConfig.cache_key()``),
so two configs that merely share a display name never alias to one result.

``run_suite`` is the hardened entry point for regenerating many experiments:
each runner gets a wall-clock budget, a failure degrades the sweep to partial
results with an error manifest instead of aborting it, and every failure is
written out as a JSON crash dump (structured error + replay window) in a
diagnostics directory.
"""

import signal
import threading
import time
from contextlib import contextmanager

from repro.common.errors import RunTimeoutError
from repro.core.api import simulate
from repro.workloads import build_workload

try:  # CPython-only: the thread-timer deadline path needs the C API.
    import ctypes

    _HAVE_ASYNC_EXC = hasattr(ctypes, "pythonapi") and hasattr(
        ctypes.pythonapi, "PyThreadState_SetAsyncExc"
    )
except ImportError:  # pragma: no cover - ctypes is stdlib on CPython
    ctypes = None
    _HAVE_ASYNC_EXC = False

_run_cache = {}


def clear_cache(disk=False):
    """Forget cached timing runs (tests use this for isolation).

    With ``disk=True`` the persistent on-disk layer is wiped too — this is
    what ``--no-cache`` entry points call, so a "no cache" run can never be
    silently served by results persisted from an earlier invocation.
    Stale-schema entries need no manual eviction: the persistent layer
    drops any entry whose embedded schema version does not match
    :data:`repro.harness.cache.SCHEMA_VERSION` at first touch.
    """
    _run_cache.clear()
    from repro.harness.sweep import clear_memo

    clear_memo()
    if disk:
        from repro.harness import cache as cache_mod
        from repro.workloads.common import clear_build_cache

        clear_build_cache(disk=False)
        # clear_persistent works on the configured root even while the
        # persistent layer is disabled — exactly the --no-cache situation.
        cache_mod.clear_persistent()


def timed_run(workload, binary_label, config, iterations=None,
              max_distance=1023, timeout_s=None, guardrails=False,
              observer=None):
    """Simulate one (workload, binary, core) combination, memoized.

    ``binary_label`` is one of ``'SS'``, ``'STRAIGHT-RAW'``,
    ``'STRAIGHT-RE+'``; ``config`` is a CoreConfig.  The cache key is the
    config's full timing identity plus the workload parameters, so any field
    that changes timing (widths, ROB/IQ/LSQ sizes, cache geometry, predictor,
    penalties, ...) forces a fresh run.  Behind the in-process memo sits the
    persistent result cache (when enabled), keyed on the binary's SHA-256
    plus the same config identity; guardrailed runs bypass it (their reports
    are not serialized and must never alias unguarded timing results).
    ``timeout_s`` bounds the run's wall-clock time (see :func:`deadline`).

    ``observer`` attaches an :class:`~repro.obs.ObserverBus` of pipeline
    sinks to the timing run.  Observed runs bypass both cache layers and are
    not memoized: sinks accumulate in-memory state (pipeline logs, slot
    charges) that is not part of any serialized payload, so serving them
    from a cache would return stats without the observation they were
    attached for.
    """
    if observer is not None and observer.active:
        binaries = build_workload(workload, iterations, max_distance)
        binary = binaries.all()[binary_label]
        with deadline(timeout_s, f"{workload}/{binary_label}/{config.name}"):
            return simulate(binary, config, warm_caches=True,
                            guardrails=guardrails, observer=observer)
    key = (
        workload,
        binary_label,
        config.cache_key(),
        iterations,
        max_distance,
        bool(guardrails),
    )
    if key not in _run_cache:
        binaries = build_workload(workload, iterations, max_distance)
        binary = binaries.all()[binary_label]
        with deadline(timeout_s, f"{workload}/{binary_label}/{config.name}"):
            if guardrails:
                _run_cache[key] = simulate(
                    binary, config, warm_caches=True, guardrails=True
                )
            else:
                from repro.harness.sweep import cached_simulate

                _run_cache[key] = cached_simulate(binary, config)
    return _run_cache[key]


#: Thread-local stack of active deadline records, innermost last.  Every
#: enforcement mode registers here so :func:`poll_deadline` works uniformly.
_deadlines = threading.local()


def _deadline_stack():
    stack = getattr(_deadlines, "stack", None)
    if stack is None:
        stack = _deadlines.stack = []
    return stack


class _DeadlineRecord:
    """One active :func:`deadline` scope on the current thread."""

    __slots__ = ("label", "seconds", "expires_at", "mode", "fired", "done",
                 "lock")

    def __init__(self, label, seconds, mode):
        self.label = label
        self.seconds = seconds
        self.expires_at = time.monotonic() + seconds
        self.mode = mode
        self.fired = False
        self.done = False
        self.lock = threading.Lock()

    def timeout_error(self):
        return RunTimeoutError(
            f"{self.label or 'run'}: exceeded {self.seconds}s "
            f"wall-clock budget"
        )


def active_deadline():
    """The innermost active deadline record on this thread, or ``None``."""
    stack = getattr(_deadlines, "stack", None)
    return stack[-1] if stack else None


def poll_deadline():
    """Cooperative deadline check: raise if any enclosing budget expired.

    Long-running loops that must honor a budget even in ``poll`` mode (no
    signals, no C-API async raise) call this at convenient safepoints.  It
    checks *every* active deadline on the current thread — an outer budget
    expiring during an inner scope is still caught — and raises the
    :class:`RunTimeoutError` of the most deeply nested expired scope.
    """
    stack = getattr(_deadlines, "stack", None)
    if not stack:
        return
    now = time.monotonic()
    for record in reversed(stack):
        if now >= record.expires_at and not record.done:
            record.fired = True
            raise record.timeout_error()


def deadline_mode():
    """The enforcement mode :func:`deadline` would auto-select here.

    ``sigalrm`` on a POSIX main thread, ``timer`` on worker threads of a
    CPython with the async-exception C API, ``poll`` (cooperative-only)
    otherwise.
    """
    if (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()):
        return "sigalrm"
    if _HAVE_ASYNC_EXC:
        return "timer"
    return "poll"


def _async_raise(thread_id, exc_class):
    """Deliver ``exc_class`` asynchronously to ``thread_id`` (CPython)."""
    res = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), ctypes.py_object(exc_class)
    )
    if res > 1:  # pragma: no cover - only on a stale/wrong thread id
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None
        )


@contextmanager
def deadline(seconds, label="", mode=None):
    """Wall-clock budget for one run; raises :class:`RunTimeoutError`.

    Three documented enforcement modes, auto-selected (``mode=None``) per
    :func:`deadline_mode` and overridable for tests:

    * ``sigalrm`` — ``SIGALRM`` + ``setitimer`` (CPython main thread on
      POSIX).  Nests correctly: an inner ``deadline`` saves the outer
      timer's remaining interval on entry and re-arms it (minus the time
      the inner block spent) on exit, so an outer budget keeps ticking
      across any number of inner ones.  If the outer budget was exhausted
      while the inner block ran, the restored timer fires almost
      immediately rather than being lost.
    * ``timer`` — a ``threading.Timer`` that, on expiry, delivers
      :class:`RunTimeoutError` to the owning thread via the CPython
      async-exception C API.  This is the path server worker threads (the
      ``repro.serve`` executor) take automatically — worker contexts no
      longer silently lose deadline enforcement.  Delivery lands at the
      next Python bytecode boundary, so a blocking C call can outlive the
      budget; pure-Python simulation loops (all of this repo) are bounded.
      On scope exit a fired-but-undelivered expiry is normalized into a
      deterministic raise with the scope's label.
    * ``poll`` — registration only (non-CPython fallback).  Enforcement is
      cooperative: code inside the scope must call :func:`poll_deadline`
      at safepoints.  All three modes register, so ``poll_deadline`` works
      under any of them.

    ``seconds`` falsy disables enforcement entirely (no registration).
    """
    if not seconds:
        yield
        return
    if mode is None:
        mode = deadline_mode()
    elif mode == "sigalrm" and deadline_mode() != "sigalrm":
        raise ValueError("sigalrm deadline requested off the main thread")
    elif mode == "timer" and not _HAVE_ASYNC_EXC:
        mode = "poll"

    record = _DeadlineRecord(label, seconds, mode)
    stack = _deadline_stack()
    stack.append(record)
    try:
        if mode == "sigalrm":
            yield from _deadline_sigalrm(record)
        elif mode == "timer":
            yield from _deadline_timer(record)
        else:
            yield
    finally:
        record.done = True
        stack.remove(record)


def _deadline_sigalrm(record):
    def _on_alarm(signum, frame):
        record.fired = True
        raise record.timeout_error()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, record.seconds)
    entered = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            # Re-arm the outer deadline with whatever budget it has left;
            # an already-expired outer budget fires as soon as possible.
            remaining = outer_remaining - (time.monotonic() - entered)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


def _deadline_timer(record):
    thread_id = threading.get_ident()

    def _fire():
        with record.lock:
            if record.done:
                return
            record.fired = True
        _async_raise(thread_id, RunTimeoutError)

    timer = threading.Timer(record.seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        with record.lock:
            record.done = True
        timer.cancel()
        if record.fired:
            # The timer fired: the async exception may have been delivered
            # mid-block (we are unwinding through it now) or may still be
            # pending at the next bytecode boundary.  Clear any pending
            # delivery and raise deterministically with the scope's label,
            # so both races surface as the same well-formed error.
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(thread_id), None
            )
            raise record.timeout_error()


def run_suite(names=None, timeout_s=None, diagnostics_dir=None,
              raise_on_error=False):
    """Run experiment registry entries, degrading to partial results.

    Returns ``{"results": {name: result}, "manifest": {...}}`` where the
    manifest lists completed and failed experiments with per-failure detail.
    With ``diagnostics_dir`` set, each failure also produces a JSON crash
    dump and the manifest itself is persisted there.
    """
    from repro.harness.experiments import ALL_EXPERIMENTS

    names = list(names) if names else sorted(ALL_EXPERIMENTS)
    results = {}
    errors = []
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            errors.append({"experiment": name, "type": "KeyError",
                           "message": f"unknown experiment {name!r}"})
            continue
        try:
            with deadline(timeout_s, name):
                results[name] = runner()
        except Exception as exc:  # noqa: BLE001 - sweep must degrade, not die
            if raise_on_error:
                raise
            record = {
                "experiment": name,
                "type": type(exc).__name__,
                "message": str(exc),
            }
            if diagnostics_dir:
                from repro.guardrails.crashdump import write_crash_dump

                record["crash_dump"] = write_crash_dump(
                    diagnostics_dir, name, exc, extra={"experiment": name}
                )
            errors.append(record)
    manifest = {
        "requested": names,
        "completed": sorted(results),
        "failed": [e["experiment"] for e in errors],
        "errors": errors,
    }
    if diagnostics_dir and errors:
        from repro.guardrails.crashdump import write_manifest

        manifest["manifest_path"] = write_manifest(diagnostics_dir, manifest)
    return {"results": results, "manifest": manifest}
