"""Cached workload timing runs plus the hardened sweep driver.

``timed_run`` memoizes one (workload, binary, core) simulation on the *full
structural identity* of the core configuration (``CoreConfig.cache_key()``),
so two configs that merely share a display name never alias to one result.

``run_suite`` is the hardened entry point for regenerating many experiments:
each runner gets a wall-clock budget, a failure degrades the sweep to partial
results with an error manifest instead of aborting it, and every failure is
written out as a JSON crash dump (structured error + replay window) in a
diagnostics directory.
"""

import signal
import threading
import time
from contextlib import contextmanager

from repro.common.errors import RunTimeoutError
from repro.core.api import simulate
from repro.workloads import build_workload

_run_cache = {}


def clear_cache(disk=False):
    """Forget cached timing runs (tests use this for isolation).

    With ``disk=True`` the persistent on-disk layer is wiped too — this is
    what ``--no-cache`` entry points call, so a "no cache" run can never be
    silently served by results persisted from an earlier invocation.
    Stale-schema entries need no manual eviction: the persistent layer
    drops any entry whose embedded schema version does not match
    :data:`repro.harness.cache.SCHEMA_VERSION` at first touch.
    """
    _run_cache.clear()
    from repro.harness.sweep import clear_memo

    clear_memo()
    if disk:
        from repro.harness import cache as cache_mod
        from repro.workloads.common import clear_build_cache

        clear_build_cache(disk=False)
        # clear_persistent works on the configured root even while the
        # persistent layer is disabled — exactly the --no-cache situation.
        cache_mod.clear_persistent()


def timed_run(workload, binary_label, config, iterations=None,
              max_distance=1023, timeout_s=None, guardrails=False,
              observer=None):
    """Simulate one (workload, binary, core) combination, memoized.

    ``binary_label`` is one of ``'SS'``, ``'STRAIGHT-RAW'``,
    ``'STRAIGHT-RE+'``; ``config`` is a CoreConfig.  The cache key is the
    config's full timing identity plus the workload parameters, so any field
    that changes timing (widths, ROB/IQ/LSQ sizes, cache geometry, predictor,
    penalties, ...) forces a fresh run.  Behind the in-process memo sits the
    persistent result cache (when enabled), keyed on the binary's SHA-256
    plus the same config identity; guardrailed runs bypass it (their reports
    are not serialized and must never alias unguarded timing results).
    ``timeout_s`` bounds the run's wall-clock time (see :func:`deadline`).

    ``observer`` attaches an :class:`~repro.obs.ObserverBus` of pipeline
    sinks to the timing run.  Observed runs bypass both cache layers and are
    not memoized: sinks accumulate in-memory state (pipeline logs, slot
    charges) that is not part of any serialized payload, so serving them
    from a cache would return stats without the observation they were
    attached for.
    """
    if observer is not None and observer.active:
        binaries = build_workload(workload, iterations, max_distance)
        binary = binaries.all()[binary_label]
        with deadline(timeout_s, f"{workload}/{binary_label}/{config.name}"):
            return simulate(binary, config, warm_caches=True,
                            guardrails=guardrails, observer=observer)
    key = (
        workload,
        binary_label,
        config.cache_key(),
        iterations,
        max_distance,
        bool(guardrails),
    )
    if key not in _run_cache:
        binaries = build_workload(workload, iterations, max_distance)
        binary = binaries.all()[binary_label]
        with deadline(timeout_s, f"{workload}/{binary_label}/{config.name}"):
            if guardrails:
                _run_cache[key] = simulate(
                    binary, config, warm_caches=True, guardrails=True
                )
            else:
                from repro.harness.sweep import cached_simulate

                _run_cache[key] = cached_simulate(binary, config)
    return _run_cache[key]


@contextmanager
def deadline(seconds, label=""):
    """Wall-clock budget for one run; raises :class:`RunTimeoutError`.

    Uses ``SIGALRM`` where available (CPython main thread on POSIX); on other
    platforms or worker threads it degrades to a no-op rather than failing,
    so sweeps stay portable.

    Nests correctly: an inner ``deadline`` saves the outer timer's remaining
    interval on entry and re-arms it (minus the time the inner block spent)
    on exit, so an outer budget keeps ticking across any number of inner
    ones.  If the outer budget was exhausted while the inner block ran, the
    restored timer fires almost immediately rather than being lost.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeoutError(
            f"{label or 'run'}: exceeded {seconds}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    entered = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining:
            # Re-arm the outer deadline with whatever budget it has left;
            # an already-expired outer budget fires as soon as possible.
            remaining = outer_remaining - (time.monotonic() - entered)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


def run_suite(names=None, timeout_s=None, diagnostics_dir=None,
              raise_on_error=False):
    """Run experiment registry entries, degrading to partial results.

    Returns ``{"results": {name: result}, "manifest": {...}}`` where the
    manifest lists completed and failed experiments with per-failure detail.
    With ``diagnostics_dir`` set, each failure also produces a JSON crash
    dump and the manifest itself is persisted there.
    """
    from repro.harness.experiments import ALL_EXPERIMENTS

    names = list(names) if names else sorted(ALL_EXPERIMENTS)
    results = {}
    errors = []
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            errors.append({"experiment": name, "type": "KeyError",
                           "message": f"unknown experiment {name!r}"})
            continue
        try:
            with deadline(timeout_s, name):
                results[name] = runner()
        except Exception as exc:  # noqa: BLE001 - sweep must degrade, not die
            if raise_on_error:
                raise
            record = {
                "experiment": name,
                "type": type(exc).__name__,
                "message": str(exc),
            }
            if diagnostics_dir:
                from repro.guardrails.crashdump import write_crash_dump

                record["crash_dump"] = write_crash_dump(
                    diagnostics_dir, name, exc, extra={"experiment": name}
                )
            errors.append(record)
    manifest = {
        "requested": names,
        "completed": sorted(results),
        "failed": [e["experiment"] for e in errors],
        "errors": errors,
    }
    if diagnostics_dir and errors:
        from repro.guardrails.crashdump import write_manifest

        manifest["manifest_path"] = write_manifest(diagnostics_dir, manifest)
    return {"results": results, "manifest": manifest}
