"""Experiment harness: one runner per paper table/figure.

Each ``fig*``/``table*`` function returns structured rows AND can print the
same series the paper plots; the ``benchmarks/`` directory wraps them in
pytest-benchmark entries, and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.harness.runner import timed_run, clear_cache, run_suite, deadline
from repro.harness.ablations import (
    ablate_re_plus,
    ablate_recovery,
    ablate_spadd_throughput,
)
from repro.harness.experiments import (
    table1,
    fig11_performance_4way,
    fig12_performance_2way,
    fig13_mispredict_penalty,
    fig14_tage,
    fig15_instruction_mix,
    fig16_distance_distribution,
    fig17_power,
    sensitivity_max_distance,
    ALL_EXPERIMENTS,
)
from repro.harness.experiments import grid_tasks
from repro.harness.reporting import format_table, format_bars
from repro.harness.sweep import (
    SweepTask,
    SweepReport,
    cached_simulate,
    compile_binary_cached,
    ensure_results,
    run_sweep,
    set_default_jobs,
)
from repro.harness.supervisor import (
    CheckpointJournal,
    RetryPolicy,
    SupervisedReport,
    SweepInterrupted,
    classify_failure,
    supervised_sweep,
)
from repro.harness.chaos import run_chaos_campaign

__all__ = [
    "timed_run",
    "clear_cache",
    "run_suite",
    "deadline",
    "SweepTask",
    "SweepReport",
    "CheckpointJournal",
    "RetryPolicy",
    "SupervisedReport",
    "SweepInterrupted",
    "classify_failure",
    "supervised_sweep",
    "run_chaos_campaign",
    "cached_simulate",
    "compile_binary_cached",
    "ensure_results",
    "run_sweep",
    "set_default_jobs",
    "grid_tasks",
    "table1",
    "fig11_performance_4way",
    "fig12_performance_2way",
    "fig13_mispredict_penalty",
    "fig14_tage",
    "fig15_instruction_mix",
    "fig16_distance_distribution",
    "fig17_power",
    "sensitivity_max_distance",
    "ALL_EXPERIMENTS",
    "format_table",
    "format_bars",
    "ablate_re_plus",
    "ablate_recovery",
    "ablate_spadd_throughput",
]
