"""One runner per paper table/figure (see DESIGN.md's experiment index).

Every function returns a dict with a ``rows`` list (structured results) and
a ``text`` rendering that prints the same series the paper reports.
Performance is reported as the paper does: the inverse of execution cycles,
normalized to the SS model of the same class.

Since PR 4 every figure declares its grid points as
:class:`~repro.harness.sweep.SweepTask` descriptors and submits them to the
sweep engine (:func:`~repro.harness.sweep.ensure_results`), so one
``reproduce_paper.py --jobs N`` invocation fans the whole deduplicated grid
out across cores and any later invocation is served from the persistent
result cache.  :func:`grid_tasks` exposes the same declarations to the
``straight sweep`` CLI.
"""

from repro.core.configs import ss_2way, straight_2way, ss_4way, straight_4way, table1_rows
from repro.harness.cache import canonical_key
from repro.harness.reporting import format_table, format_bars
from repro.harness.sweep import (
    SweepTask,
    ensure_results,
    metrics_view,
    payload_or_raise,
)
from repro.uarch.stats import SimStats

_WORKLOADS = ("dhrystone", "coremark")
_BINARIES = ("SS", "STRAIGHT-RAW", "STRAIGHT-RE+")


def _config_tag(config):
    """A short stable id for a config's full timing identity."""
    return f"{config.name}@{canonical_key(config.cache_key())[:10]}"


def timing_task(workload, binary_label, config, max_distance=1023,
                iterations=None):
    """One registry timing grid point."""
    return SweepTask(
        f"{workload}/{binary_label}/md{max_distance}/{_config_tag(config)}",
        workload,
        binary_label=binary_label,
        config=config,
        iterations=iterations,
        max_distance=max_distance,
    )


def functional_task(workload, binary_label, max_distance=1023,
                    iterations=None):
    """One functional (interpreter-metrics) grid point."""
    return SweepTask(
        f"func/{workload}/{binary_label}/md{max_distance}",
        workload,
        binary_label=binary_label,
        iterations=iterations,
        max_distance=max_distance,
        kind="functional",
    )


def attribution_task(workload, binary_label, config, max_distance=1023,
                     iterations=None):
    """One timing grid point with the stall-attribution accountant attached."""
    return SweepTask(
        f"attr/{workload}/{binary_label}/md{max_distance}/{_config_tag(config)}",
        workload,
        binary_label=binary_label,
        config=config,
        iterations=iterations,
        max_distance=max_distance,
        attribution=True,
    )


def _stats_of(results, task):
    """The stats dict of one finished timing task."""
    return payload_or_raise(results[task.task_id], task.task_id)["stats"]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def table1():
    """Table I: evaluated models and their parameters."""
    rows = table1_rows()
    return {"rows": rows, "text": format_table(rows, title="Table I: Evaluated Models")}


# ---------------------------------------------------------------------------
# Figs. 11/12: relative performance
# ---------------------------------------------------------------------------


def _performance_tasks(ss_factory, straight_factory):
    tasks = []
    for workload in _WORKLOADS:
        tasks.append(timing_task(workload, "SS", ss_factory()))
        tasks.append(timing_task(workload, "STRAIGHT-RAW", straight_factory()))
        tasks.append(timing_task(workload, "STRAIGHT-RE+", straight_factory()))
    return tasks


def _performance_figure(ss_factory, straight_factory, label):
    tasks = _performance_tasks(ss_factory, straight_factory)
    results = ensure_results(tasks)
    rows = []
    for offset, workload in enumerate(_WORKLOADS):
        per_model = tasks[3 * offset:3 * offset + 3]
        stats = [_stats_of(results, task) for task in per_model]
        base = stats[0]["cycles"]
        for name, stat in zip(_BINARIES, stats):
            rows.append(
                {
                    "workload": workload,
                    "model": name,
                    "cycles": stat["cycles"],
                    "relative_perf": round(base / stat["cycles"], 4),
                    "ipc": round(stat["ipc"], 3),
                }
            )
    series = [
        (f"{r['workload'][:5]}/{r['model']}", r["relative_perf"]) for r in rows
    ]
    return {
        "rows": rows,
        "text": format_bars(series, title=f"{label}: relative performance (1/cycles, SS = 1.0)"),
    }


def fig11_performance_4way():
    """Fig. 11: SS vs STRAIGHT RAW vs RE+, 4-way models."""
    return _performance_figure(ss_4way, straight_4way, "Fig. 11 (4-way)")


def fig12_performance_2way():
    """Fig. 12: SS vs STRAIGHT RAW vs RE+, 2-way models."""
    return _performance_figure(ss_2way, straight_2way, "Fig. 12 (2-way)")


# ---------------------------------------------------------------------------
# Fig. 13: effect of the misprediction penalty
# ---------------------------------------------------------------------------


def _fig13_grid():
    """[(display name, task)] in figure order; SS-2way is the baseline."""
    grid = []
    for way, ss_f, st_f in (
        ("2-way", ss_2way, straight_2way),
        ("4-way", ss_4way, straight_4way),
    ):
        grid.append((f"SS {way}", timing_task("coremark", "SS", ss_f())))
        grid.append(
            (
                f"SS no-penalty {way}",
                timing_task(
                    "coremark", "SS",
                    ss_f(ideal_recovery=True, name=f"SS-{way}-nopenalty"),
                ),
            )
        )
        grid.append(
            (f"STRAIGHT RE+ {way}",
             timing_task("coremark", "STRAIGHT-RE+", st_f()))
        )
    return grid


def fig13_mispredict_penalty():
    """Fig. 13: SS, SS-no-penalty, STRAIGHT RE+ on CoreMark, both classes.

    Normalized to SS-2way, exactly as the paper's figure.
    """
    grid = _fig13_grid()
    results = ensure_results([task for _, task in grid])
    base_2way = _stats_of(results, grid[0][1])["cycles"]
    runs = []
    for name, task in grid:
        stats = _stats_of(results, task)
        runs.append(
            {
                "model": name,
                "cycles": stats["cycles"],
                "relative_perf": round(base_2way / stats["cycles"], 4),
                "recovery_stall_cycles": stats["recovery_stall_cycles"],
                "mispredicts": stats["branch_mispredicts"],
            }
        )
    series = [(r["model"], r["relative_perf"]) for r in runs]
    return {
        "rows": runs,
        "text": format_bars(
            series, title="Fig. 13: mispredict penalty effect (CoreMark, SS-2way = 1.0)"
        ),
    }


def _attribution_grid(workload="coremark"):
    """[(display name, attributed task)] for the Fig. 13 explanation."""
    grid = []
    for way, ss_f, st_f in (
        ("2-way", ss_2way, straight_2way),
        ("4-way", ss_4way, straight_4way),
    ):
        grid.append((f"SS {way}",
                     attribution_task(workload, "SS", ss_f())))
        grid.append((f"STRAIGHT RE+ {way}",
                     attribution_task(workload, "STRAIGHT-RE+", st_f())))
    return grid


def attribution_breakdown(workload="coremark"):
    """Top-down stall attribution: *why* Fig. 13's gap exists.

    Charges every issue slot of every cycle to exactly one bucket (see
    :mod:`repro.obs.attribution`) on both ISAs and reports, next to the
    bucket fractions, the bad-speculation slots burned *per mispredict* —
    the per-event recovery cost that separates SS's RMT-restoring ROB walk
    from STRAIGHT's one-read recovery.
    """
    grid = _attribution_grid(workload)
    results = ensure_results([task for _, task in grid])
    rows = []
    for name, task in grid:
        payload = payload_or_raise(results[task.task_id], task.task_id)
        stats = payload["stats"]
        attribution = payload["attribution"]
        total = attribution["slots_charged"]
        fractions = attribution["fractions"]
        mispredicts = stats["branch_mispredicts"]
        rows.append(
            {
                "model": name,
                "cycles": stats["cycles"],
                "slots": total,
                "conserved": attribution["conserved"],
                "retiring": fractions["slots_retiring"],
                "rmov": fractions["slots_rmov_overhead"],
                "frontend": fractions["slots_frontend_latency"],
                "bad_spec": fractions["slots_bad_speculation"],
                "mem": fractions["slots_backend_memory"],
                "core": fractions["slots_backend_core"],
                "mispredicts": mispredicts,
                "bad_spec_slots_per_mispredict": round(
                    attribution["buckets"]["slots_bad_speculation"]
                    / mispredicts, 2) if mispredicts else 0.0,
            }
        )
    columns = ["model", "cycles", "slots", "conserved", "retiring", "rmov",
               "frontend", "bad_spec", "mem", "core", "mispredicts",
               "bad_spec_slots_per_mispredict"]
    return {
        "rows": rows,
        "text": format_table(
            rows,
            columns=columns,
            title=f"Top-down stall attribution ({workload}; "
                  "slot fractions, sum = 1.0)",
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 14: TAGE predictor
# ---------------------------------------------------------------------------


def _fig14_grid():
    grid = []
    for way, ss_f, st_f in (
        ("2-way", ss_2way, straight_2way),
        ("4-way", ss_4way, straight_4way),
    ):
        grid.append(
            (way, "SS",
             timing_task("coremark", "SS", ss_f(predictor="tage")))
        )
        grid.append(
            (way, "RAW",
             timing_task("coremark", "STRAIGHT-RAW", st_f(predictor="tage")))
        )
        grid.append(
            (way, "RE+",
             timing_task("coremark", "STRAIGHT-RE+", st_f(predictor="tage")))
        )
    return grid


def fig14_tage():
    """Fig. 14: CoreMark relative performance with TAGE instead of gshare."""
    grid = _fig14_grid()
    results = ensure_results([task for _, _, task in grid])
    rows = []
    base = None
    for way, name, task in grid:
        stats = _stats_of(results, task)
        if name == "SS":
            base = stats["cycles"]
        rows.append(
            {
                "class": way,
                "model": name,
                "cycles": stats["cycles"],
                "relative_perf": round(base / stats["cycles"], 4),
                "predictor_accuracy": round(stats["predictor_accuracy"], 4),
            }
        )
    series = [(f"{r['class']}/{r['model']}", r["relative_perf"]) for r in rows]
    return {
        "rows": rows,
        "text": format_bars(series, title="Fig. 14: with TAGE (CoreMark, SS = 1.0/class)"),
    }


# ---------------------------------------------------------------------------
# Fig. 15: retired instruction mix
# ---------------------------------------------------------------------------


def fig15_instruction_mix(workload="coremark"):
    """Fig. 15: retired-instruction type fractions, normalized to SS total."""
    tasks = [functional_task(workload, label) for label in _BINARIES]
    results = ensure_results(tasks)
    rows = []
    ss_total = None
    for label, task in zip(_BINARIES, tasks):
        payload = payload_or_raise(results[task.task_id], task.task_id)
        groups = payload["class_counts"]
        total = sum(groups.values())
        if label == "SS":
            ss_total = total
        row = {"model": label, "total": total}
        for group, count in groups.items():
            row[group] = count
            row[f"{group}_norm"] = round(count / ss_total, 4)
        row["total_norm"] = round(total / ss_total, 4)
        rows.append(row)
    columns = ["model", "total", "total_norm", "jump_branch", "alu", "load",
               "store", "rmov", "nop", "other"]
    return {
        "rows": rows,
        "text": format_table(
            rows,
            columns=columns,
            title=f"Fig. 15: retired instruction mix ({workload}, SS total = 1.0)",
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 16: source-distance distribution
# ---------------------------------------------------------------------------


def fig16_distance_distribution():
    """Fig. 16: cumulative distribution of source operand distances.

    Measured on RE+ binaries built with the uppermost distance limit
    (1023), as in the paper.
    """
    tasks = [functional_task(workload, "STRAIGHT-RE+", max_distance=1023)
             for workload in _WORKLOADS]
    results = ensure_results(tasks)
    rows = []
    for workload, task in zip(_WORKLOADS, tasks):
        payload = metrics_view(
            payload_or_raise(results[task.task_id], task.task_id)
        )
        hist = payload["distance_hist"]
        total = sum(hist.values())
        max_distance = max(hist)
        for point in (1, 2, 4, 8, 16, 32, 64, 128):
            covered = sum(c for d, c in hist.items() if d <= point) / total
            rows.append(
                {
                    "workload": workload,
                    "distance<=": point,
                    "cumulative_fraction": round(covered, 4),
                }
            )
        rows.append(
            {
                "workload": workload,
                "distance<=": f"max={max_distance}",
                "cumulative_fraction": 1.0,
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title="Fig. 16: cumulative source-distance distribution (RE+)"
        ),
    }


# ---------------------------------------------------------------------------
# §VI-B: max-distance sensitivity
# ---------------------------------------------------------------------------


def _sensitivity_grid(workload="coremark"):
    grid = []
    for max_distance in (1023, 127, 31):
        config = straight_4way(max_distance=max_distance,
                               name=f"STRAIGHT-4way-d{max_distance}")
        grid.append(
            (max_distance,
             timing_task(workload, "STRAIGHT-RE+", config,
                         max_distance=max_distance))
        )
    return grid


def sensitivity_max_distance(workload="coremark"):
    """§VI-B: CoreMark performance, max distance 1023 vs 31 (~1% in paper)."""
    grid = _sensitivity_grid(workload)
    results = ensure_results([task for _, task in grid])
    rows = []
    base_cycles = None
    for max_distance, task in grid:
        stats = _stats_of(results, task)
        if base_cycles is None:
            base_cycles = stats["cycles"]
        rows.append(
            {
                "max_distance": max_distance,
                "cycles": stats["cycles"],
                "relative_perf": round(base_cycles / stats["cycles"], 4),
                "instructions": stats["instructions"],
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"Max-distance sensitivity ({workload}, RE+, 4-way)"
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 17: RTL power analysis
# ---------------------------------------------------------------------------


def fig17_power(workload="dhrystone"):
    """Fig. 17: relative per-module power at 1.0x/2.5x/4.0x clocks (2-way).

    Normalized to the corresponding SS module at 1.0x, as in the paper.
    """
    from repro.power import analyze_power

    tasks = [
        timing_task(workload, "SS", ss_2way()),
        timing_task(workload, "STRAIGHT-RE+", straight_2way()),
    ]
    results = ensure_results(tasks)
    ss_stats = SimStats.from_dict(_stats_of(results, tasks[0]))
    st_stats = SimStats.from_dict(_stats_of(results, tasks[1]))
    baselines = {}
    rows = []
    for rel_f in (1.0, 2.5, 4.0):
        ss_report = analyze_power(ss_stats, False, rel_f, core_name="SS-2way")
        st_report = analyze_power(st_stats, True, rel_f, core_name="STRAIGHT-2way")
        for module in ("rename", "regfile", "other"):
            if rel_f == 1.0:
                baselines[module] = ss_report.modules[module].total
            for arch, report in (("SS", ss_report), ("STRAIGHT", st_report)):
                rows.append(
                    {
                        "module": module,
                        "clock": f"{rel_f}x",
                        "arch": arch,
                        "relative_power": round(
                            report.modules[module].total / baselines[module], 4
                        ),
                    }
                )
    return {
        "rows": rows,
        "text": format_table(
            rows,
            title="Fig. 17: relative power by module/clock (norm. to SS 1.0x)",
        ),
    }


# ---------------------------------------------------------------------------
# Three-ISA grid + encoding density (registry-driven; beyond the paper)
# ---------------------------------------------------------------------------


def _isa_grid():
    """[(workload, class, descriptor, task)]: every registered ISA's default
    evaluation binary on its 2-way and 4-way cores."""
    from repro import isa as isa_registry

    grid = []
    for workload in _WORKLOADS:
        for way in ("2way", "4way"):
            for descriptor in isa_registry.descriptors():
                config = descriptor.config_factories[way]()
                grid.append(
                    (workload, way, descriptor,
                     timing_task(workload, descriptor.default_label, config))
                )
    return grid


def isa_grid():
    """Fig. 11/12-style relative performance across *all* registered ISAs.

    Extends the paper's SS-vs-STRAIGHT comparison with every other
    registered ISA (currently BasicBlocker-style ``bb``), normalized to the
    RV32IM (SS) core of the same issue-width class per workload.
    """
    grid = _isa_grid()
    results = ensure_results([task for *_, task in grid])
    base = {}
    for workload, way, descriptor, task in grid:
        if descriptor.name == "riscv":
            base[(workload, way)] = _stats_of(results, task)["cycles"]
    rows = []
    for workload, way, descriptor, task in grid:
        stats = _stats_of(results, task)
        rows.append(
            {
                "workload": workload,
                "class": way,
                "isa": descriptor.name,
                "model": descriptor.default_label,
                "cycles": stats["cycles"],
                "ipc": round(stats["ipc"], 3),
                "relative_perf": round(
                    base[(workload, way)] / stats["cycles"], 4
                ),
            }
        )
    series = [
        (f"{r['workload'][:5]}/{r['class']}/{r['model']}", r["relative_perf"])
        for r in rows
    ]
    return {
        "rows": rows,
        "text": format_bars(
            series,
            title="Three-ISA grid: relative performance (SS = 1.0 per class)",
        ),
    }


def static_ilp():
    """Static IPC upper bound vs measured simulator IPC, per ISA.

    Runs the static ILP pass (:mod:`repro.analysis.ilp_static`) on every
    registered ISA's default evaluation binary and joins it with the
    measured timing-grid IPC at both issue widths.  The static bound is an
    *upper* bound by construction, so ``bound_holds`` must be true on every
    grid point — the CI analyze-smoke job gates on ``ok``.  The gap between
    the two is the price of everything the static pass cannot see: cache
    misses, branch mispredictions, fetch stalls, finite windows.
    """
    from repro import isa as isa_registry
    from repro.analysis import analyze_ilp, support_for
    from repro.workloads import build_workload

    grid = _isa_grid()
    results = ensure_results([task for *_, task in grid])
    reports = {}  # (workload, isa) -> StaticIlpReport
    rows = []
    for workload, way, descriptor, task in grid:
        key = (workload, descriptor.name)
        if key not in reports:
            built = build_workload(workload)
            program = built.all()[descriptor.default_label].program
            reports[key] = analyze_ilp(program, support_for(descriptor.name))
        config = descriptor.config_factories[way]()
        bound = reports[key].ipc_bound(config.issue_width)
        measured = _stats_of(results, task)["ipc"]
        rows.append(
            {
                "workload": workload,
                "class": way,
                "isa": descriptor.name,
                "width": config.issue_width,
                "measured_ipc": round(measured, 4),
                "static_ipc_bound": round(bound, 4),
                "headroom": round(bound - measured, 4),
                "bound_holds": measured <= bound + 1e-9,
                "loops": len(reports[key].loops),
            }
        )
    series = [
        (f"{r['workload'][:5]}/{r['class']}/{r['isa']}",
         round(r["measured_ipc"] / r["static_ipc_bound"], 4))
        for r in rows
    ]
    return {
        "rows": rows,
        "ok": all(r["bound_holds"] for r in rows),
        "text": format_bars(
            series,
            title="Static ILP: measured IPC as a fraction of the static "
                  "upper bound",
        ),
    }


def _sampled_grid():
    """[(workload, way, descriptor, full_task, sampled_task)] — every
    registered ISA's evaluation binary, full vs. sampled simulation."""
    from repro import isa as isa_registry
    from repro.harness.bench import FASTPATH_ACCURACY_PARAMS
    from repro.harness.sampling import SamplingParams
    from repro.workloads import WORKLOADS

    params = SamplingParams(seed=0, **FASTPATH_ACCURACY_PARAMS).as_dict()
    grid = []
    for workload in _WORKLOADS:
        # Sampling pays off (and its estimator converges) at evaluation
        # scale, not at the pinned paper-figure iteration counts.
        iterations = WORKLOADS[workload].large_iterations
        for way in ("2way", "4way"):
            for descriptor in isa_registry.descriptors():
                config = descriptor.config_factories[way]()
                label = descriptor.default_label
                full = timing_task(workload, label, config,
                                   iterations=iterations)
                sampled = SweepTask(
                    f"sampled/{workload}/{label}/{_config_tag(config)}",
                    workload,
                    binary_label=label,
                    config=config,
                    iterations=iterations,
                    sampling=params,
                )
                grid.append((workload, way, descriptor, full, sampled))
    return grid


def sampled_error():
    """Sampled-vs-full IPC error across the three-ISA grid.

    Runs every golden-grid cell twice — the full cycle model and the
    SMARTS-style sampled estimator (:mod:`repro.harness.sampling`) — and
    reports the relative IPC error next to the estimator's own 95%
    confidence interval.  The sampled runs' windows and coverage land in
    the rows, so the wall-clock/accuracy trade is visible at a glance.
    """
    grid = _sampled_grid()
    tasks = [task for *_, full, sampled in grid
             for task in (full, sampled)]
    results = ensure_results(tasks)
    rows = []
    for workload, way, descriptor, full, sampled in grid:
        full_stats = _stats_of(results, full)
        sampled_stats = _stats_of(results, sampled)
        meta = sampled_stats.get("sampling") or {}
        full_ipc = full_stats["ipc"]
        sampled_ipc = sampled_stats["ipc"]
        ipc_ci = meta.get("ipc_ci95")
        ipc_mean = meta.get("ipc_mean") or sampled_ipc
        rows.append(
            {
                "workload": workload,
                "class": way,
                "isa": descriptor.name,
                "model": descriptor.default_label,
                "mode": meta.get("mode", "full"),
                "windows": meta.get("windows"),
                "coverage": round(meta["coverage"], 4)
                            if "coverage" in meta else None,
                "ipc_full": round(full_ipc, 4),
                "ipc_sampled": round(sampled_ipc, 4),
                "err_pct": round((sampled_ipc / full_ipc - 1) * 100, 3),
                "ci95_rel_pct": (None if not ipc_ci else
                                 round(ipc_ci / ipc_mean * 100, 3)),
            }
        )
    series = [
        (f"{r['workload'][:5]}/{r['class']}/{r['model']}", r["err_pct"])
        for r in rows
    ]
    return {
        "rows": rows,
        "text": format_bars(
            series,
            title="Sampled vs full simulation: IPC error (%)",
        ),
    }


def _isa_density_tasks():
    from repro import isa as isa_registry

    return [
        functional_task(workload, descriptor.default_label)
        for workload in _WORKLOADS
        for descriptor in isa_registry.descriptors()
    ]


def isa_density():
    """Encoding density (bits/instruction) across registered ISAs."""
    from repro.isa.density import density_report

    return density_report(workloads=_WORKLOADS)


def _ablations():
    from repro.harness import ablations

    return ablations


#: Registry used by the CLI example and tests.
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig11": fig11_performance_4way,
    "fig12": fig12_performance_2way,
    "fig13": fig13_mispredict_penalty,
    "attribution": attribution_breakdown,
    "fig14": fig14_tage,
    "fig15": fig15_instruction_mix,
    "fig16": fig16_distance_distribution,
    "sensitivity_maxdist": sensitivity_max_distance,
    "fig17": fig17_power,
    "ablation_re_plus": lambda: _ablations().ablate_re_plus(),
    "ablation_recovery": lambda: _ablations().ablate_recovery(),
    "ablation_spadd": lambda: _ablations().ablate_spadd_throughput(),
    "isa_grid": isa_grid,
    "isa_density": isa_density,
    "static_ilp": static_ilp,
    "sampled_error": sampled_error,
}


def _grid_builders():
    """Per-experiment task declarations for the sweep CLI / prefetch."""
    ab = _ablations()
    return {
        "fig11": lambda: _performance_tasks(ss_4way, straight_4way),
        "fig12": lambda: _performance_tasks(ss_2way, straight_2way),
        "fig13": lambda: [task for _, task in _fig13_grid()],
        "attribution": lambda: [task for _, task in _attribution_grid()],
        "fig14": lambda: [task for _, _, task in _fig14_grid()],
        "fig15": lambda: [functional_task("coremark", label)
                          for label in _BINARIES],
        "fig16": lambda: [
            functional_task(workload, "STRAIGHT-RE+", max_distance=1023)
            for workload in _WORKLOADS
        ],
        "sensitivity_maxdist": lambda: [
            task for _, task in _sensitivity_grid()
        ],
        "fig17": lambda: [
            timing_task("dhrystone", "SS", ss_2way()),
            timing_task("dhrystone", "STRAIGHT-RE+", straight_2way()),
        ],
        "ablation_re_plus": lambda: [t for _, t in ab.re_plus_grid()],
        "ablation_recovery": lambda: [t for _, t in ab.recovery_grid()],
        "ablation_spadd": lambda: [t for _, t in ab.spadd_grid()],
        "isa_grid": lambda: [task for *_, task in _isa_grid()],
        "isa_density": _isa_density_tasks,
        "static_ilp": lambda: [task for *_, task in _isa_grid()],
        "sampled_error": lambda: [
            task for *_, full, sampled in _sampled_grid()
            for task in (full, sampled)
        ],
    }


def grid_tasks(names=None):
    """The deduplicated SweepTask grid behind the named experiments.

    ``table1`` contributes nothing (it is static), unknown names raise.
    """
    builders = _grid_builders()
    names = list(names) if names else sorted(set(builders) | {"table1"})
    tasks = []
    seen = set()
    for name in names:
        if name == "table1":
            continue
        builder = builders.get(name)
        if builder is None:
            raise KeyError(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(set(builders) | {'table1'})}"
            )
        for task in builder():
            if task.task_id not in seen:
                seen.add(task.task_id)
                tasks.append(task)
    return tasks
