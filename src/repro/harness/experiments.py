"""One runner per paper table/figure (see DESIGN.md's experiment index).

Every function returns a dict with a ``rows`` list (structured results) and
a ``text`` rendering that prints the same series the paper reports.
Performance is reported as the paper does: the inverse of execution cycles,
normalized to the SS model of the same class.
"""

from repro.core.configs import ss_2way, straight_2way, ss_4way, straight_4way, table1_rows
from repro.core.api import run_functional
from repro.workloads import build_workload
from repro.power import analyze_power
from repro.harness.runner import timed_run
from repro.harness.reporting import format_table, format_bars

_WORKLOADS = ("dhrystone", "coremark")
_BINARIES = ("SS", "STRAIGHT-RAW", "STRAIGHT-RE+")


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def table1():
    """Table I: evaluated models and their parameters."""
    rows = table1_rows()
    return {"rows": rows, "text": format_table(rows, title="Table I: Evaluated Models")}


# ---------------------------------------------------------------------------
# Figs. 11/12: relative performance
# ---------------------------------------------------------------------------


def _performance_figure(ss_factory, straight_factory, label):
    rows = []
    for workload in _WORKLOADS:
        ss = timed_run(workload, "SS", ss_factory())
        raw = timed_run(workload, "STRAIGHT-RAW", straight_factory())
        re_plus = timed_run(workload, "STRAIGHT-RE+", straight_factory())
        base = ss.cycles
        for name, run in (("SS", ss), ("STRAIGHT-RAW", raw), ("STRAIGHT-RE+", re_plus)):
            rows.append(
                {
                    "workload": workload,
                    "model": name,
                    "cycles": run.cycles,
                    "relative_perf": round(base / run.cycles, 4),
                    "ipc": round(run.stats.ipc, 3),
                }
            )
    series = [
        (f"{r['workload'][:5]}/{r['model']}", r["relative_perf"]) for r in rows
    ]
    return {
        "rows": rows,
        "text": format_bars(series, title=f"{label}: relative performance (1/cycles, SS = 1.0)"),
    }


def fig11_performance_4way():
    """Fig. 11: SS vs STRAIGHT RAW vs RE+, 4-way models."""
    return _performance_figure(ss_4way, straight_4way, "Fig. 11 (4-way)")


def fig12_performance_2way():
    """Fig. 12: SS vs STRAIGHT RAW vs RE+, 2-way models."""
    return _performance_figure(ss_2way, straight_2way, "Fig. 12 (2-way)")


# ---------------------------------------------------------------------------
# Fig. 13: effect of the misprediction penalty
# ---------------------------------------------------------------------------


def fig13_mispredict_penalty():
    """Fig. 13: SS, SS-no-penalty, STRAIGHT RE+ on CoreMark, both classes.

    Normalized to SS-2way, exactly as the paper's figure.
    """
    runs = []
    base_2way = timed_run("coremark", "SS", ss_2way()).cycles
    for way, ss_f, st_f in (
        ("2-way", ss_2way, straight_2way),
        ("4-way", ss_4way, straight_4way),
    ):
        ss = timed_run("coremark", "SS", ss_f())
        ss_ideal = timed_run(
            "coremark", "SS", ss_f(ideal_recovery=True, name=f"SS-{way}-nopenalty")
        )
        st = timed_run("coremark", "STRAIGHT-RE+", st_f())
        for name, run in (
            (f"SS {way}", ss),
            (f"SS no-penalty {way}", ss_ideal),
            (f"STRAIGHT RE+ {way}", st),
        ):
            runs.append(
                {
                    "model": name,
                    "cycles": run.cycles,
                    "relative_perf": round(base_2way / run.cycles, 4),
                    "recovery_stall_cycles": run.stats.recovery_stall_cycles,
                    "mispredicts": run.stats.branch_mispredicts,
                }
            )
    series = [(r["model"], r["relative_perf"]) for r in runs]
    return {
        "rows": runs,
        "text": format_bars(
            series, title="Fig. 13: mispredict penalty effect (CoreMark, SS-2way = 1.0)"
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 14: TAGE predictor
# ---------------------------------------------------------------------------


def fig14_tage():
    """Fig. 14: CoreMark relative performance with TAGE instead of gshare."""
    rows = []
    for way, ss_f, st_f in (
        ("2-way", ss_2way, straight_2way),
        ("4-way", ss_4way, straight_4way),
    ):
        ss = timed_run("coremark", "SS", ss_f(predictor="tage"))
        raw = timed_run("coremark", "STRAIGHT-RAW", st_f(predictor="tage"))
        re_plus = timed_run("coremark", "STRAIGHT-RE+", st_f(predictor="tage"))
        base = ss.cycles
        for name, run in (("SS", ss), ("RAW", raw), ("RE+", re_plus)):
            rows.append(
                {
                    "class": way,
                    "model": name,
                    "cycles": run.cycles,
                    "relative_perf": round(base / run.cycles, 4),
                    "predictor_accuracy": round(run.stats.predictor_accuracy, 4),
                }
            )
    series = [(f"{r['class']}/{r['model']}", r["relative_perf"]) for r in rows]
    return {
        "rows": rows,
        "text": format_bars(series, title="Fig. 14: with TAGE (CoreMark, SS = 1.0/class)"),
    }


# ---------------------------------------------------------------------------
# Fig. 15: retired instruction mix
# ---------------------------------------------------------------------------


def fig15_instruction_mix(workload="coremark"):
    """Fig. 15: retired-instruction type fractions, normalized to SS total."""
    binaries = build_workload(workload)
    rows = []
    ss_total = None
    for label, binary in binaries.all().items():
        result = run_functional(binary)
        groups = result.interpreter.class_counts()
        total = sum(groups.values())
        if label == "SS":
            ss_total = total
        row = {"model": label, "total": total}
        for group, count in groups.items():
            row[group] = count
            row[f"{group}_norm"] = round(count / ss_total, 4)
        row["total_norm"] = round(total / ss_total, 4)
        rows.append(row)
    columns = ["model", "total", "total_norm", "jump_branch", "alu", "load",
               "store", "rmov", "nop", "other"]
    return {
        "rows": rows,
        "text": format_table(
            rows,
            columns=columns,
            title=f"Fig. 15: retired instruction mix ({workload}, SS total = 1.0)",
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 16: source-distance distribution
# ---------------------------------------------------------------------------


def fig16_distance_distribution():
    """Fig. 16: cumulative distribution of source operand distances.

    Measured on RE+ binaries built with the uppermost distance limit
    (1023), as in the paper.
    """
    rows = []
    for workload in _WORKLOADS:
        binaries = build_workload(workload, max_distance=1023)
        result = run_functional(binaries.straight_re)
        hist = result.interpreter.distance_hist
        total = sum(hist.values())
        running = 0
        cdf = {}
        for distance in sorted(hist):
            running += hist[distance]
            cdf[distance] = running / total
        max_distance = max(hist)
        for point in (1, 2, 4, 8, 16, 32, 64, 128):
            covered = sum(c for d, c in hist.items() if d <= point) / total
            rows.append(
                {
                    "workload": workload,
                    "distance<=": point,
                    "cumulative_fraction": round(covered, 4),
                }
            )
        rows.append(
            {
                "workload": workload,
                "distance<=": f"max={max_distance}",
                "cumulative_fraction": 1.0,
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title="Fig. 16: cumulative source-distance distribution (RE+)"
        ),
    }


# ---------------------------------------------------------------------------
# §VI-B: max-distance sensitivity
# ---------------------------------------------------------------------------


def sensitivity_max_distance(workload="coremark"):
    """§VI-B: CoreMark performance, max distance 1023 vs 31 (~1% in paper)."""
    rows = []
    base_cycles = None
    for max_distance in (1023, 127, 31):
        config = straight_4way(max_distance=max_distance,
                               name=f"STRAIGHT-4way-d{max_distance}")
        run = timed_run(
            workload, "STRAIGHT-RE+", config, max_distance=max_distance
        )
        if base_cycles is None:
            base_cycles = run.cycles
        rows.append(
            {
                "max_distance": max_distance,
                "cycles": run.cycles,
                "relative_perf": round(base_cycles / run.cycles, 4),
                "instructions": run.stats.instructions,
            }
        )
    return {
        "rows": rows,
        "text": format_table(
            rows, title=f"Max-distance sensitivity ({workload}, RE+, 4-way)"
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 17: RTL power analysis
# ---------------------------------------------------------------------------


def fig17_power(workload="dhrystone"):
    """Fig. 17: relative per-module power at 1.0x/2.5x/4.0x clocks (2-way).

    Normalized to the corresponding SS module at 1.0x, as in the paper.
    """
    ss = timed_run(workload, "SS", ss_2way())
    st = timed_run(workload, "STRAIGHT-RE+", straight_2way())
    baselines = {}
    rows = []
    for rel_f in (1.0, 2.5, 4.0):
        ss_report = analyze_power(ss.stats, False, rel_f, core_name="SS-2way")
        st_report = analyze_power(st.stats, True, rel_f, core_name="STRAIGHT-2way")
        for module in ("rename", "regfile", "other"):
            if rel_f == 1.0:
                baselines[module] = ss_report.modules[module].total
            for arch, report in (("SS", ss_report), ("STRAIGHT", st_report)):
                rows.append(
                    {
                        "module": module,
                        "clock": f"{rel_f}x",
                        "arch": arch,
                        "relative_power": round(
                            report.modules[module].total / baselines[module], 4
                        ),
                    }
                )
    return {
        "rows": rows,
        "text": format_table(
            rows,
            title="Fig. 17: relative power by module/clock (norm. to SS 1.0x)",
        ),
    }


def _ablations():
    from repro.harness import ablations

    return ablations


#: Registry used by the CLI example and tests.
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig11": fig11_performance_4way,
    "fig12": fig12_performance_2way,
    "fig13": fig13_mispredict_penalty,
    "fig14": fig14_tage,
    "fig15": fig15_instruction_mix,
    "fig16": fig16_distance_distribution,
    "sensitivity_maxdist": sensitivity_max_distance,
    "fig17": fig17_power,
    "ablation_re_plus": lambda: _ablations().ablate_re_plus(),
    "ablation_recovery": lambda: _ablations().ablate_recovery(),
    "ablation_spadd": lambda: _ablations().ablate_spadd_throughput(),
}
