"""Supervised execution layer over :func:`repro.harness.sweep.run_sweep`.

The sweep engine already degrades gracefully *within* one invocation
(structured error payloads, broken-pool inline fallback, per-task
deadlines).  This module adds the layer the ROADMAP's service tier and
design-space autopilot need to run thousands of tasks unattended:

* **Failure classification** — a worker failure is either *transient*
  (deadline expiry, OS-level hiccups, a killed worker) or *deterministic*
  (a :class:`~repro.common.errors.SimulationError`, a compile failure: the
  same inputs will fail the same way forever).  See
  :func:`classify_failure`.
* **Retry with capped exponential backoff** — transient failures re-run,
  up to a per-task attempt cap and a per-sweep retry budget
  (:class:`RetryPolicy`); deterministic failures never burn budget.
* **Quarantine** — a task that exhausts its retries, or fails
  deterministically, is *quarantined*: its crash dump is written to the
  quarantine directory and the sweep completes without it.  The sweep
  result distinguishes "completed", "quarantined" and never loses work.
* **Checkpoint/resume** — every finished task is journaled to an
  append-only, fsync'd JSONL file keyed by
  :meth:`~repro.harness.sweep.SweepTask.checkpoint_key`.  A killed or
  interrupted sweep resumes exactly where it left off:
  ``supervised_sweep(..., resume=True)`` replays the journal, skips done
  work, and produces a **byte-identical canonical manifest** to an
  uninterrupted run (pinned by a golden fixture in the test suite).

The chaos campaign (:mod:`repro.harness.chaos`) drives every one of these
paths with seeded fault injection and is gated in CI.
"""

import json
import os
import time

from repro.common.errors import ReproError, SimulationError
from repro.harness import cache as cache_mod
from repro.harness.sweep import run_sweep

#: Exception type names treated as transient: environmental, worth retrying.
#: Everything else — and every :class:`SimulationError` subclass except the
#: deadline timeout — is deterministic: same inputs, same failure.
TRANSIENT_ERROR_TYPES = frozenset({
    "RunTimeoutError",        # deadline expiry: the machine may be loaded
    "OSError",                # fork/pipe/fd pressure
    "IOError",
    "BlockingIOError",
    "InterruptedError",
    "BrokenPipeError",
    "ConnectionError",
    "ConnectionResetError",
    "EOFError",               # torn worker IPC stream
    "BrokenProcessPool",      # the pool itself died under the task
    "TimeoutError",
    "MemoryError",            # another tenant's spike, not our arithmetic
    "ProcessLookupError",
    "ChildProcessError",
})

#: Classification labels.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"


def classify_failure(payload):
    """``TRANSIENT`` or ``DETERMINISTIC`` for one structured error payload.

    The payload is the ``kind == 'error'`` record a sweep worker ships back
    (:func:`repro.harness.sweep._error_payload`).  Chaos-injected faults
    carry their intended class in the message and classify like the real
    thing — that is the point of the campaign.
    """
    etype = payload.get("type", "")
    if etype in TRANSIENT_ERROR_TYPES:
        return TRANSIENT
    return DETERMINISTIC


class SweepInterrupted(ReproError):
    """A supervised sweep stopped at a checkpoint before finishing.

    Raised by the ``interrupt_after`` test/chaos hook (and re-raised for a
    mid-sweep ``KeyboardInterrupt``).  The journal is already fsync'd at
    this point: re-running with ``resume=True`` completes the sweep.
    """

    def __init__(self, message, completed=0):
        super().__init__(message)
        self.completed = completed


class RetryPolicy:
    """Retry/backoff knobs for one supervised sweep.

    ``max_attempts`` caps how often one task runs in total;
    ``retry_budget`` caps *extra* runs across the whole sweep, so a grid
    where everything is transiently failing cannot retry forever.  Backoff
    between rounds is exponential in the round number, capped at
    ``backoff_cap_s``; ``sleep`` is injectable so tests and the chaos
    campaign never actually wait.
    """

    def __init__(self, max_attempts=3, retry_budget=32, backoff_base_s=0.25,
                 backoff_cap_s=8.0, sleep=None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.retry_budget = int(retry_budget)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.sleep = sleep if sleep is not None else time.sleep

    def backoff_s(self, round_index):
        """Delay before retry round ``round_index`` (1-based)."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (round_index - 1)))

    def as_dict(self):
        return {
            "max_attempts": self.max_attempts,
            "retry_budget": self.retry_budget,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
        }


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


class CheckpointJournal:
    """Append-only JSONL journal of finished sweep tasks.

    One record per line: ``{"record", "key", "task", "payload", "sha256"}``
    where the digest covers the canonical rendering of the record without
    its own checksum field.  Appends are flushed and ``fsync``'d before the
    caller moves on, so a record is either durably complete or (if the
    process dies mid-write) detectably truncated; :meth:`load` verifies
    every line and stops at the first torn/corrupt one, salvaging the
    intact prefix — exactly the append-only contract.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None

    # -- write side ---------------------------------------------------------

    def _open(self):
        if self._handle is None or self._handle.closed:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a")
        return self._handle

    @staticmethod
    def _seal(record):
        body = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=repr)
        record = dict(record)
        record["sha256"] = cache_mod.payload_checksum(body)
        return record

    @staticmethod
    def _verify(record):
        expected = record.pop("sha256", None)
        if expected is None:
            return False
        body = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=repr)
        return expected == cache_mod.payload_checksum(body)

    def append(self, kind, key, task_id, payload):
        """Durably journal one finished task (``kind``: done/quarantined)."""
        record = self._seal({
            "record": kind,
            "key": key,
            "task": task_id,
            "payload": payload,
        })
        handle = self._open()
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":"), default=repr) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self):
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def discard(self):
        """Start over: drop the journal file (fresh, non-resumed sweeps)."""
        self.close()
        try:
            os.remove(self.path)
        except OSError:
            pass

    # -- read side ----------------------------------------------------------

    def load(self):
        """Replay the journal: ``(records_by_key, salvage_report)``.

        ``records_by_key`` maps checkpoint key to the *latest* verified
        record for that key.  Reading stops at the first line that fails
        its checksum (a torn tail write): everything before it is salvaged,
        everything after is ignored and reported.
        """
        records = {}
        salvage = {"lines": 0, "replayed": 0, "torn": 0, "ignored_tail": 0}
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except (FileNotFoundError, OSError):
            return records, salvage
        for index, line in enumerate(lines):
            salvage["lines"] += 1
            line = line.strip()
            ok = False
            if line:
                try:
                    record = json.loads(line)
                    ok = isinstance(record, dict) and self._verify(record)
                except ValueError:
                    ok = False
            if not ok:
                salvage["torn"] += 1
                salvage["ignored_tail"] = len(lines) - index - 1
                break
            records[record["key"]] = record
            salvage["replayed"] += 1
        return records, salvage


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class SupervisedReport:
    """Results + canonical manifest + volatile telemetry of one sweep.

    ``manifest`` is *canonical*: it contains only facts that are identical
    between an uninterrupted run and any interrupted-then-resumed run of
    the same grid (task outcomes, never wall-clock, retry counts or cache
    hit rates).  ``manifest_bytes()`` is the byte-exact rendering the
    resume guarantee is pinned against.  Everything run-shaped lives in
    ``telemetry``.
    """

    def __init__(self, results, manifest, telemetry, cache_report, wall_s):
        self.results = results
        self.manifest = manifest
        self.telemetry = telemetry
        self.cache = cache_report
        self.wall_s = wall_s

    @property
    def ok(self):
        return not self.manifest["quarantined"]

    def result_hit_rate(self):
        total = len(self.manifest["requested"])
        return self.telemetry["cache_served"] / total if total else 0.0

    def manifest_bytes(self):
        """Canonical byte rendering (the resume byte-identity contract)."""
        return (json.dumps(self.manifest, sort_keys=True, indent=2)
                + "\n").encode("utf-8")

    def as_dict(self):
        return {
            "results": self.results,
            "manifest": self.manifest,
            "telemetry": self.telemetry,
            "cache": self.cache,
            "wall_s": self.wall_s,
        }


def _quarantine_failure(task, payload, attempts, quarantine_dir):
    """Crash-dump one quarantined task; returns the canonical entry."""
    entry = {
        "task": task.task_id,
        "type": payload.get("type", "Error"),
        "message": payload.get("message", ""),
        "class": classify_failure(payload),
    }
    if quarantine_dir:
        from repro.guardrails.crashdump import write_crash_dump

        exc = SimulationError(
            f"{entry['type']}: {entry['message']}",
            context={"task": task.task_id, "attempts": attempts,
                     "class": entry["class"]},
        )
        write_crash_dump(quarantine_dir, task.task_id, exc,
                         extra={"worker": payload})
    return entry


def supervised_sweep(tasks, jobs=None, progress=None, checkpoint=None,
                     resume=False, policy=None, quarantine_dir=None,
                     interrupt_after=None):
    """Run ``tasks`` under supervision; returns a :class:`SupervisedReport`.

    * ``checkpoint`` — path of the append-only journal.  ``None`` disables
      checkpointing (retry/quarantine still apply).
    * ``resume`` — replay the journal before running anything; without it
      an existing journal is discarded and the sweep starts fresh.
    * ``policy`` — a :class:`RetryPolicy` (default: 3 attempts, budget 32).
    * ``quarantine_dir`` — where quarantined tasks' crash dumps land.
    * ``interrupt_after`` — chaos/test hook: raise
      :class:`SweepInterrupted` after this many *newly executed* tasks have
      been journaled this invocation.
    """
    started = time.perf_counter()
    policy = policy or RetryPolicy()

    ordered = []
    seen = set()
    for task in tasks:
        if task.task_id not in seen:
            seen.add(task.task_id)
            ordered.append(task)
    keys = {task.task_id: task.checkpoint_key() for task in ordered}

    journal = CheckpointJournal(checkpoint) if checkpoint else None
    salvage = {"lines": 0, "replayed": 0, "torn": 0, "ignored_tail": 0}
    replayed = {}
    if journal is not None:
        if resume:
            replayed, salvage = journal.load()
        else:
            journal.discard()

    results = {}
    quarantined = {}
    resumed_ids = []
    for task in ordered:
        record = replayed.get(keys[task.task_id])
        if record is None:
            continue
        resumed_ids.append(task.task_id)
        if record["record"] == "quarantined":
            quarantined[task.task_id] = record["payload"]["entry"]
            results[task.task_id] = record["payload"]["worker"]
        else:
            results[task.task_id] = record["payload"]

    pending = [t for t in ordered if t.task_id not in results]
    attempts = {t.task_id: 0 for t in ordered}
    budget_left = policy.retry_budget
    retries_used = 0
    cache_served = 0
    executed_this_run = 0
    rounds = 0
    interrupted = False
    inline_fallback = []

    def finish(task, payload, kind, entry=None):
        nonlocal executed_this_run
        results[task.task_id] = payload
        if kind == "quarantined":
            quarantined[task.task_id] = entry
        if journal is not None:
            journal_payload = (payload if kind == "done"
                               else {"entry": entry, "worker": payload})
            journal.append(kind, keys[task.task_id], task.task_id,
                           journal_payload)
        executed_this_run += 1
        if (interrupt_after is not None
                and executed_this_run >= interrupt_after):
            raise SweepInterrupted(
                f"interrupted after {executed_this_run} tasks "
                f"(checkpoint hook)", completed=executed_this_run)

    try:
        while pending:
            rounds += 1
            if rounds > 1:
                policy.sleep(policy.backoff_s(rounds - 1))
            round_report = run_sweep(pending, jobs=jobs, progress=progress)
            cache_served += round_report.manifest["cache_served"]
            inline_fallback.extend(
                round_report.manifest.get("inline_fallback", ())
            )
            retry_next = []
            for task in pending:
                payload = round_report.results[task.task_id]
                attempts[task.task_id] += 1
                if payload.get("kind") != "error":
                    finish(task, payload, "done")
                    continue
                failure_class = classify_failure(payload)
                can_retry = (failure_class == TRANSIENT
                             and attempts[task.task_id] < policy.max_attempts
                             and budget_left > 0)
                if can_retry:
                    budget_left -= 1
                    retries_used += 1
                    retry_next.append(task)
                else:
                    entry = _quarantine_failure(
                        task, payload, attempts[task.task_id], quarantine_dir
                    )
                    finish(task, payload, "quarantined", entry=entry)
            pending = retry_next
    except SweepInterrupted:
        interrupted = True
        raise
    except KeyboardInterrupt:
        interrupted = True
        raise SweepInterrupted(
            f"interrupted by user after {executed_this_run} tasks",
            completed=executed_this_run,
        ) from None
    finally:
        if journal is not None:
            journal.close()
        if interrupted and progress is not None:
            progress(len(results), len(ordered), "<interrupted>",
                     "checkpoint", 0.0)

    manifest = {
        "requested": [t.task_id for t in ordered],
        "completed": [t.task_id for t in ordered
                      if t.task_id in results
                      and t.task_id not in quarantined],
        "quarantined": [quarantined[t.task_id] for t in ordered
                        if t.task_id in quarantined],
        "failed": [t.task_id for t in ordered if t.task_id in quarantined],
        "schema": cache_mod.SCHEMA_VERSION,
        "toolchain": cache_mod.TOOLCHAIN_TAG,
    }
    telemetry = {
        "jobs": jobs,
        "rounds": rounds,
        "attempts": {tid: n for tid, n in attempts.items() if n},
        "retries_used": retries_used,
        "retry_budget_left": budget_left,
        "resumed": resumed_ids,
        "inline_fallback": inline_fallback,
        "cache_served": cache_served,
        "journal": checkpoint,
        "journal_salvage": salvage,
        "policy": policy.as_dict(),
    }
    ordered_results = {t.task_id: results[t.task_id] for t in ordered}
    return SupervisedReport(ordered_results, manifest, telemetry,
                            cache_mod.cache_report(),
                            round(time.perf_counter() - started, 6))
