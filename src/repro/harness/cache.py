"""Persistent content-addressed caches for the sweep engine.

Two layers, both rooted in one cache directory (``STRAIGHT_CACHE_DIR`` or
``~/.cache/straight-repro``):

* :class:`ResultCache` — JSON entries holding the complete ``SimStats``
  surface (every registry counter, cache hit/miss tables, predictor
  accuracy) plus the architectural output channel of one timing run.
  Entries are keyed by the SHA-256 of a canonical JSON rendering of
  ``(schema version, binary digest, CoreConfig.cache_key(), run
  parameters)``, so *any* timing-relevant knob forces a distinct entry and
  two configs that merely share a display name can never alias.
* :class:`ArtifactCache` — pickled compiled-binary artifacts (linked
  programs / cross-validated workload builds), keyed by the SHA-256 of
  ``(schema version, source digest, backend options)``.  RAW and RE+
  compilations of the same source land on different keys (the options
  differ), while every figure that needs the same (source, options) pair —
  and every later run — shares one compilation.

Entries embed their schema version; a version bump makes old entries
*evict themselves* on first touch (the stale file is deleted and the lookup
reported as a miss), so no separate migration step exists.

The module also owns the process-global cache configuration.  The
persistent layer is **opt-in**: library code runs memory-only until an
entry point (the ``straight sweep`` CLI, ``examples/reproduce_paper.py``,
the bench harness, a worker process) calls :func:`configure`.  Setting
``STRAIGHT_CACHE_DIR`` in the environment opts in implicitly, which is how
pool workers inherit the parent's cache.
"""

import hashlib
import json
import os
import pickle

#: Bump when the serialized result entry layout changes (new stats surface,
#: different payload shape).  Old entries auto-evict.
#: 2: attribution buckets joined the SimStats surface and timing payloads
#: may carry an ``attribution`` report (PR 5).
SCHEMA_VERSION = 2

#: Bump when compiler/simulator behaviour changes in a way that must
#: invalidate *all* persisted results and artifacts (new backend pass, timing
#: model fix).  Folded into every key.
TOOLCHAIN_TAG = "straight-repro-4"


def default_cache_dir():
    env = os.environ.get("STRAIGHT_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "straight-repro")


def canonical_key(obj):
    """SHA-256 hex digest of a canonical JSON rendering of ``obj``."""
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonify)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _jsonify(obj):
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"unhashable cache key component: {obj!r}")


def source_digest(text):
    """Content digest of one compiler input."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def binary_digest(binary):
    """SHA-256 of a linked binary's full machine-visible identity.

    Hashes the encoded text segment, the data image and the load/entry
    geometry — everything the simulators consume — and memoizes the digest
    on the program object (it also survives pickling through the artifact
    cache, so cache-served builds never re-encode).
    """
    program = binary.program
    digest = getattr(program, "_repro_digest", None)
    if digest is None:
        hasher = hashlib.sha256()
        hasher.update(binary.isa.encode("utf-8"))
        for word in program.text_words:
            hasher.update(word.to_bytes(4, "little", signed=False))
        for word in program.data_words:
            hasher.update((word & 0xFFFFFFFF).to_bytes(4, "little"))
        hasher.update(
            json.dumps(
                [
                    program.data_base,
                    program.text_base,
                    program.entry_pc,
                    getattr(program, "max_distance", None),
                ]
            ).encode("utf-8")
        )
        digest = hasher.hexdigest()
        program._repro_digest = digest
    return digest


class _CacheStats:
    __slots__ = ("hits", "misses", "stores", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def merge(self, other):
        self.hits += other["hits"]
        self.misses += other["misses"]
        self.stores += other["stores"]
        self.evictions += other["evictions"]


class _DiskCache:
    """Shared machinery: sharded content-addressed files under one root."""

    subdir = "entries"
    suffix = ".json"

    def __init__(self, root):
        self.root = os.path.join(root, self.subdir)
        self.stats = _CacheStats()

    def _path(self, key_obj):
        digest = canonical_key(key_obj)
        return os.path.join(self.root, digest[:2], digest + self.suffix)

    def _evict(self, path):
        self.stats.evictions += 1
        try:
            os.remove(path)
        except OSError:
            pass

    def get(self, key_obj):
        path = self._path(key_obj)
        try:
            payload = self._read(path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupt / truncated / unreadable entry: evict and treat as miss.
            self._evict(path)
            self.stats.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["value"]

    def put(self, key_obj, value):
        path = self._path(key_obj)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}"
        try:
            self._write(tmp, {"schema": SCHEMA_VERSION, "value": value})
            os.replace(tmp, path)  # atomic: concurrent workers can't tear it
        except Exception:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self.stats.stores += 1

    def clear(self):
        import shutil

        shutil.rmtree(self.root, ignore_errors=True)


class ResultCache(_DiskCache):
    """JSON-serialized timing/functional results."""

    subdir = "results"
    suffix = ".json"

    def _read(self, path):
        with open(path) as handle:
            return json.load(handle)

    def _write(self, path, payload):
        with open(path, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))


class ArtifactCache(_DiskCache):
    """Pickled compiled-binary artifacts (linked programs, workload builds)."""

    subdir = "artifacts"
    suffix = ".pkl"

    def _read(self, path):
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def _write(self, path, payload):
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


class CacheConfigState:
    """Process-global persistent-cache switchboard."""

    def __init__(self):
        self.enabled = bool(os.environ.get("STRAIGHT_CACHE_DIR"))
        self.root = default_cache_dir()
        self._results = None
        self._artifacts = None

    def results(self):
        if not self.enabled:
            return None
        if self._results is None:
            self._results = ResultCache(self.root)
        return self._results

    def artifacts(self):
        if not self.enabled:
            return None
        if self._artifacts is None:
            self._artifacts = ArtifactCache(self.root)
        return self._artifacts


_state = CacheConfigState()


def configure(cache_dir=None, enabled=True):
    """Enable (or disable) the persistent layer for this process."""
    if cache_dir is not None and cache_dir != _state.root:
        _state.root = cache_dir
        _state._results = None
        _state._artifacts = None
    _state.enabled = enabled
    return _state


def swap_state(state=None):
    """Swap in a cache configuration; returns the previous one.

    ``state=None`` installs a fresh default state.  Scoped users (the bench
    harness, tests) save the return value and swap it back when done, so a
    temporary cache dir never leaks into the rest of the process.
    """
    global _state
    previous = _state
    _state = state if state is not None else CacheConfigState()
    return previous


def reset_cache_stats():
    """Zero the hit/miss counters of the active layers (not the contents)."""
    for layer in (_state._results, _state._artifacts):
        if layer is not None:
            layer.stats = _CacheStats()


def is_enabled():
    return _state.enabled


def cache_root():
    return _state.root


def result_cache():
    """The active :class:`ResultCache`, or ``None`` when memory-only."""
    return _state.results()


def artifact_cache():
    """The active :class:`ArtifactCache`, or ``None`` when memory-only."""
    return _state.artifacts()


def clear_persistent():
    """Delete every persisted result and artifact under the active root."""
    ResultCache(_state.root).clear()
    ArtifactCache(_state.root).clear()
    _state._results = None
    _state._artifacts = None


def cache_report():
    """Hit/miss/store counters for both layers (zeros when disabled)."""
    report = {}
    for name, layer in (("results", _state._results),
                        ("artifacts", _state._artifacts)):
        report[name] = layer.stats.as_dict() if layer is not None else (
            _CacheStats().as_dict()
        )
    report["enabled"] = _state.enabled
    report["root"] = _state.root
    return report
