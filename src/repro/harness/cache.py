"""Persistent content-addressed caches for the sweep engine.

Two layers, both rooted in one cache directory (``STRAIGHT_CACHE_DIR`` or
``~/.cache/straight-repro``):

* :class:`ResultCache` — JSON entries holding the complete ``SimStats``
  surface (every registry counter, cache hit/miss tables, predictor
  accuracy) plus the architectural output channel of one timing run.
  Entries are keyed by the SHA-256 of a canonical JSON rendering of
  ``(schema version, binary digest, CoreConfig.cache_key(), run
  parameters)``, so *any* timing-relevant knob forces a distinct entry and
  two configs that merely share a display name can never alias.
* :class:`ArtifactCache` — pickled compiled-binary artifacts (linked
  programs / cross-validated workload builds), keyed by the SHA-256 of
  ``(schema version, source digest, backend options)``.  RAW and RE+
  compilations of the same source land on different keys (the options
  differ), while every figure that needs the same (source, options) pair —
  and every later run — shares one compilation.

Entries embed their schema version; a version bump makes old entries
*evict themselves* on first touch (the stale file is deleted and the lookup
reported as a miss), so no separate migration step exists.

Every entry also carries an **end-to-end payload checksum** (SHA-256),
verified on every read.  A corrupt, truncated or bit-flipped entry is never
served and never crashes the caller: it is *quarantined* — moved into
``<root>/quarantine/<layer>/`` with its original name preserved — and the
lookup reports a miss, so the sweep recomputes and overwrites the slot.
Quarantine keeps the evidence (the supervisor's chaos campaign and ``straight
cache fsck`` both inspect it) instead of silently destroying it.  ``fsck``
scans both layers offline, classifies every entry (valid / stale / corrupt /
orphaned temp file) and, with ``repair=True``, quarantines the corrupt ones
and deletes the stale ones; a valid entry is never touched.

The module also owns the process-global cache configuration.  The
persistent layer is **opt-in**: library code runs memory-only until an
entry point (the ``straight sweep`` CLI, ``examples/reproduce_paper.py``,
the bench harness, a worker process) calls :func:`configure`.  Setting
``STRAIGHT_CACHE_DIR`` in the environment opts in implicitly, which is how
pool workers inherit the parent's cache.
"""

import hashlib
import json
import os
import pickle
import threading

#: Guards the process-global configuration singleton (``_state``) and lazy
#: layer construction.  The serve tier calls :func:`configure`/
#: :func:`result_cache` from event-loop tasks and worker-adjacent threads
#: concurrently; without the lock two racing callers could each build a
#: layer (splitting the stats surface) or observe a half-applied
#: :func:`configure`.
_config_lock = threading.RLock()

#: Bump when the serialized result entry layout changes (new stats surface,
#: different payload shape).  Old entries auto-evict.
#: 2: attribution buckets joined the SimStats surface and timing payloads
#: may carry an ``attribution`` report (PR 5).
#: 3: entries carry an end-to-end payload checksum (PR 6); pre-checksum
#: entries read as stale and self-evict.
SCHEMA_VERSION = 3

#: Bump when compiler/simulator behaviour changes in a way that must
#: invalidate *all* persisted results and artifacts (new backend pass, timing
#: model fix).  Folded into every key.
TOOLCHAIN_TAG = "straight-repro-4"


def default_cache_dir():
    env = os.environ.get("STRAIGHT_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "straight-repro")


def canonical_key(obj):
    """SHA-256 hex digest of a canonical JSON rendering of ``obj``."""
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonify)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _jsonify(obj):
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"unhashable cache key component: {obj!r}")


def source_digest(text):
    """Content digest of one compiler input."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def payload_checksum(value):
    """End-to-end integrity digest of one JSON-safe cache payload."""
    text = json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CorruptEntryError(Exception):
    """A cache entry failed its integrity check (truncated, bit-flipped,
    unparsable).  Never escapes a lookup: the entry is quarantined and the
    lookup misses."""


class StaleEntryError(Exception):
    """A cache entry predates the current on-disk layout (no checksum /
    legacy pickle format).  Self-evicts as a miss, exactly like a schema
    version mismatch."""


def binary_digest(binary):
    """SHA-256 of a linked binary's full machine-visible identity.

    Hashes the encoded text segment, the data image and the load/entry
    geometry — everything the simulators consume — and memoizes the digest
    on the program object (it also survives pickling through the artifact
    cache, so cache-served builds never re-encode).
    """
    program = binary.program
    digest = getattr(program, "_repro_digest", None)
    if digest is None:
        hasher = hashlib.sha256()
        hasher.update(binary.isa.encode("utf-8"))
        for word in program.text_words:
            hasher.update(word.to_bytes(4, "little", signed=False))
        for word in program.data_words:
            hasher.update((word & 0xFFFFFFFF).to_bytes(4, "little"))
        hasher.update(
            json.dumps(
                [
                    program.data_base,
                    program.text_base,
                    program.entry_pc,
                    getattr(program, "max_distance", None),
                ]
            ).encode("utf-8")
        )
        digest = hasher.hexdigest()
        program._repro_digest = digest
    return digest


class _CacheStats:
    """Hit/miss counters for one layer.

    Mutations go through ``_DiskCache._bump`` under the owning layer's lock — plain
    ``+= 1`` from concurrent server threads loses updates, and the serve
    scorecard's dedup/hit-rate accounting is built on these counters.
    """

    __slots__ = ("hits", "misses", "stores", "evictions", "quarantined")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.quarantined = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
        }

    def merge(self, other):
        self.hits += other["hits"]
        self.misses += other["misses"]
        self.stores += other["stores"]
        self.evictions += other["evictions"]
        self.quarantined += other.get("quarantined", 0)


class _DiskCache:
    """Shared machinery: sharded content-addressed files under one root.

    Instances are thread-safe: lookups/stores from multiple event-loop
    tasks or worker threads interleave freely (file-level atomicity comes
    from ``os.replace``; counter integrity from the per-instance lock).
    """

    subdir = "entries"
    suffix = ".json"
    _tmp_counter = 0
    _tmp_lock = threading.Lock()

    def __init__(self, root):
        self.cache_root = root
        self.root = os.path.join(root, self.subdir)
        self.stats = _CacheStats()
        self._lock = threading.Lock()

    def _bump(self, field, amount=1):
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)

    def _path(self, key_obj):
        digest = canonical_key(key_obj)
        return os.path.join(self.root, digest[:2], digest + self.suffix)

    def _evict(self, path):
        self._bump("evictions")
        try:
            os.remove(path)
        except OSError:
            pass

    def quarantine_root(self):
        return os.path.join(self.cache_root, "quarantine", self.subdir)

    def _quarantine(self, path):
        """Move a corrupt entry aside; never re-served, never destroyed."""
        self._bump("quarantined")
        dest_dir = self.quarantine_root()
        dest = os.path.join(dest_dir, os.path.basename(path))
        try:
            os.makedirs(dest_dir, exist_ok=True)
            serial = 0
            while os.path.exists(dest):
                serial += 1
                dest = os.path.join(
                    dest_dir, f"{os.path.basename(path)}.{serial}"
                )
            os.replace(path, dest)
            return dest
        except OSError:
            # Quarantine dir unusable (permissions, cross-device): the entry
            # must still never be re-served, so fall back to deletion.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def get(self, key_obj):
        path = self._path(key_obj)
        try:
            envelope = self._read(path)
        except FileNotFoundError:
            self._bump("misses")
            return None
        except StaleEntryError:
            # Pre-integrity layout: self-evict, like a schema bump.
            self._evict(path)
            self._bump("misses")
            return None
        except Exception:
            # Corrupt / truncated / bit-flipped entry: quarantine as a miss.
            self._quarantine(path)
            self._bump("misses")
            return None
        if envelope.get("schema") != SCHEMA_VERSION:
            self._evict(path)
            self._bump("misses")
            return None
        self._bump("hits")
        return envelope["value"]

    def put(self, key_obj, value):
        path = self._path(key_obj)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _DiskCache._tmp_lock:
            _DiskCache._tmp_counter += 1
            serial = _DiskCache._tmp_counter
        tmp = path + f".tmp.{os.getpid()}.{serial}"
        try:
            self._write(tmp, {"schema": SCHEMA_VERSION, "value": value})
        except Exception:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        try:
            os.replace(tmp, path)  # atomic: concurrent workers can't tear it
        except OSError:
            # A concurrent writer won the rename race (or the slot became
            # unwritable).  Content-addressed entries are interchangeable:
            # second writer loses silently, the sweep never sees an error.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._bump("stores")

    def entry_paths(self):
        """Every entry file under this layer (sorted; excludes temp files)."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(self.suffix):
                    found.append(os.path.join(dirpath, name))
        return sorted(found)

    def orphan_tmp_paths(self):
        """Leftover ``*.tmp.*`` files from writers that died mid-put."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if ".tmp." in name:
                    found.append(os.path.join(dirpath, name))
        return sorted(found)

    def classify(self, path):
        """Integrity verdict for one entry file: valid / stale / corrupt."""
        try:
            envelope = self._read(path)
        except FileNotFoundError:
            return "missing"
        except StaleEntryError:
            return "stale"
        except Exception:
            return "corrupt"
        if envelope.get("schema") != SCHEMA_VERSION:
            return "stale"
        return "valid"

    def clear(self):
        import shutil

        shutil.rmtree(self.root, ignore_errors=True)


class ResultCache(_DiskCache):
    """JSON-serialized timing/functional results.

    On-disk envelope: ``{"schema": N, "sha256": <payload digest>, "value":
    payload}``.  The digest covers the canonical JSON rendering of the
    payload, so any torn write, truncation or bit flip that still parses as
    JSON is caught exactly like one that does not.
    """

    subdir = "results"
    suffix = ".json"

    def _read(self, path):
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            raise
        except Exception as exc:
            raise CorruptEntryError(f"unparsable result entry {path}") from exc
        if not isinstance(envelope, dict):
            raise CorruptEntryError(f"malformed result entry {path}")
        digest = envelope.get("sha256")
        if digest is None:
            raise StaleEntryError(f"pre-checksum result entry {path}")
        body = {"schema": envelope.get("schema"),
                "value": envelope.get("value")}
        if digest != payload_checksum(body):
            raise CorruptEntryError(f"checksum mismatch in {path}")
        return envelope

    def _write(self, path, envelope):
        envelope = dict(envelope)
        envelope["sha256"] = payload_checksum(
            {"schema": envelope["schema"], "value": envelope["value"]}
        )
        with open(path, "w") as handle:
            json.dump(envelope, handle, separators=(",", ":"))


#: Header magic of checksummed artifact entries: ``MAGIC<hex digest>\n``
#: followed by the pickled envelope the digest covers.
ARTIFACT_MAGIC = b"straight-artifact-v1 "


class ArtifactCache(_DiskCache):
    """Pickled compiled-binary artifacts (linked programs, workload builds).

    On-disk layout: one header line ``straight-artifact-v1 <sha256>`` then
    the pickle bytes of ``{"schema": N, "value": payload}``; the digest
    covers the pickle bytes, so truncated or bit-flipped artifacts are
    detected *before* unpickling (a corrupt pickle stream can otherwise
    raise nearly anything).
    """

    subdir = "artifacts"
    suffix = ".pkl"

    def _read(self, path):
        with open(path, "rb") as handle:
            header = handle.readline()
            body = handle.read()
        if not header.startswith(ARTIFACT_MAGIC):
            if header[:1] == b"\x80":
                # Legacy headerless pickle from the pre-integrity layout.
                raise StaleEntryError(f"pre-checksum artifact entry {path}")
            raise CorruptEntryError(f"malformed artifact header in {path}")
        digest = header[len(ARTIFACT_MAGIC):].strip().decode("ascii", "replace")
        if digest != hashlib.sha256(body).hexdigest():
            raise CorruptEntryError(f"checksum mismatch in {path}")
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise CorruptEntryError(f"unpicklable artifact entry {path}") from exc

    def _write(self, path, envelope):
        body = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        header = (ARTIFACT_MAGIC
                  + hashlib.sha256(body).hexdigest().encode("ascii") + b"\n")
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(body)


class CacheConfigState:
    """Process-global persistent-cache switchboard."""

    def __init__(self):
        self.enabled = bool(os.environ.get("STRAIGHT_CACHE_DIR"))
        self.root = default_cache_dir()
        self._results = None
        self._artifacts = None

    def results(self):
        if not self.enabled:
            return None
        if self._results is None:
            with _config_lock:
                if self._results is None:
                    self._results = ResultCache(self.root)
        return self._results

    def artifacts(self):
        if not self.enabled:
            return None
        if self._artifacts is None:
            with _config_lock:
                if self._artifacts is None:
                    self._artifacts = ArtifactCache(self.root)
        return self._artifacts


_state = CacheConfigState()


def configure(cache_dir=None, enabled=True):
    """Enable (or disable) the persistent layer for this process.

    Safe to call concurrently from event-loop tasks and worker threads:
    the root swap and layer invalidation happen atomically under the
    module lock, so a racing :func:`result_cache` lookup sees either the
    old configuration or the new one, never a half-moved root.
    """
    with _config_lock:
        if cache_dir is not None and cache_dir != _state.root:
            _state.root = cache_dir
            _state._results = None
            _state._artifacts = None
        _state.enabled = enabled
        return _state


def swap_state(state=None):
    """Swap in a cache configuration; returns the previous one.

    ``state=None`` installs a fresh default state.  Scoped users (the bench
    harness, tests) save the return value and swap it back when done, so a
    temporary cache dir never leaks into the rest of the process.
    """
    global _state
    with _config_lock:
        previous = _state
        _state = state if state is not None else CacheConfigState()
        return previous


def reset_cache_stats():
    """Zero the hit/miss counters of the active layers (not the contents)."""
    with _config_lock:
        for layer in (_state._results, _state._artifacts):
            if layer is not None:
                layer.stats = _CacheStats()


def is_enabled():
    return _state.enabled


def cache_root():
    return _state.root


def result_cache():
    """The active :class:`ResultCache`, or ``None`` when memory-only."""
    return _state.results()


def artifact_cache():
    """The active :class:`ArtifactCache`, or ``None`` when memory-only."""
    return _state.artifacts()


def clear_persistent():
    """Delete every persisted result and artifact under the active root."""
    with _config_lock:
        ResultCache(_state.root).clear()
        ArtifactCache(_state.root).clear()
        _state._results = None
        _state._artifacts = None


def quarantine_paths(cache_dir=None):
    """Every quarantined entry under the active (or given) cache root."""
    root = os.path.join(cache_dir or _state.root, "quarantine")
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            found.append(os.path.join(dirpath, name))
    return sorted(found)


def fsck(cache_dir=None, repair=False):
    """Scan both persistent layers end-to-end; optionally repair.

    Every entry is classified by the same reader the hot path uses:

    * ``valid`` — parses, checksum verifies, current schema; never touched.
    * ``stale`` — pre-checksum layout or old schema; would self-evict on
      first touch anyway.  ``repair=True`` deletes it now.
    * ``corrupt`` — truncated, bit-flipped or unparsable.  ``repair=True``
      moves it into ``<root>/quarantine/<layer>/``.
    * ``orphan_tmp`` — temp file from a writer that died mid-``put``.
      ``repair=True`` deletes it.

    Returns a JSON-safe report; ``report["ok"]`` is true when no corrupt
    entry remains on the live path (always true after a repair pass).
    """
    root = cache_dir or _state.root
    report = {"root": root, "repair": bool(repair), "layers": {}}
    corrupt_total = 0
    for layer in (ResultCache(root), ArtifactCache(root)):
        entry = {
            "scanned": 0,
            "valid": 0,
            "stale": [],
            "corrupt": [],
            "orphan_tmp": layer.orphan_tmp_paths(),
            "quarantined": [],
            "deleted": [],
        }
        for path in layer.entry_paths():
            entry["scanned"] += 1
            verdict = layer.classify(path)
            if verdict == "valid":
                entry["valid"] += 1
            elif verdict == "stale":
                entry["stale"].append(path)
            elif verdict == "corrupt":
                entry["corrupt"].append(path)
        if repair:
            for path in entry["corrupt"]:
                dest = layer._quarantine(path)
                entry["quarantined"].append(dest if dest else path)
            for path in entry["stale"] + entry["orphan_tmp"]:
                try:
                    os.remove(path)
                    entry["deleted"].append(path)
                except OSError:
                    pass
        corrupt_total += len(entry["corrupt"])
        report["layers"][layer.subdir] = entry
    report["corrupt_total"] = corrupt_total
    report["quarantine"] = quarantine_paths(root)
    report["ok"] = bool(repair) or corrupt_total == 0
    return report


def cache_report():
    """Hit/miss/store counters for both layers (zeros when disabled)."""
    report = {}
    for name, layer in (("results", _state._results),
                        ("artifacts", _state._artifacts)):
        report[name] = layer.stats.as_dict() if layer is not None else (
            _CacheStats().as_dict()
        )
    report["enabled"] = _state.enabled
    report["root"] = _state.root
    return report
