"""SMARTS-style sampled timing simulation.

Full runs couple the cycle model to every dynamic instruction: the
functional ISS collects a complete trace and the out-of-order core
simulates all of it.  Sampled runs decouple the two — the functional
interpreter *fast-forwards* between periodic measurement windows on the
threaded-code fast path (:mod:`repro.fastpath`, no trace collection), and
only the windows are simulated cycle-accurately:

::

    |--- fast-forward ---|warmup|== window ==|cooldown|--- fast-forward ---|

* **warmup** instructions re-warm the microarchitectural state (caches,
  predictors, LSQ, memory-dependence predictor all *persist* across
  windows on one reused core — detailed warming in SMARTS terms) before
  measurement starts;
* the **window** is the measured region: cycles are read at its boundary
  commits by an instruction-granular pipeline sink, so event-driven cycle
  skipping stays enabled;
* **cooldown** instructions keep the pipeline fed past the last measured
  commit, killing the end-of-trace drain bias.

Extrapolation uses the ratio estimator ``IPC = Σ window instructions / Σ
window cycles`` with a CLT 95% confidence interval over per-window IPCs;
every other counter is scaled by the sampled fraction and gets a
per-bucket error bar the same way.  The estimate, schedule, seed and error
bars all land in ``SimStats.sampling`` so JSON reports are reproducible
byte-for-byte given the same parameters.

Programs too short to fill ``min_windows`` measurement windows fall back
to :func:`repro.core.api.simulate` (exact, no extrapolation), with the
fallback recorded in ``SimStats.sampling["mode"]``.
"""

import math
import random

from repro import fastpath
from repro.common.errors import SimulationError
from repro.common.layout import WORD_BYTES
from repro.obs.events import ObserverBus, PipelineSink
from repro.uarch.core import OoOCore
from repro.uarch.stats import SimStats

#: Counter fields that are assigned (not accumulated) at the end of each
#: core run — boundary deltas are meaningless for them.
_ASSIGNED_FIELDS = ("cycles", "instructions")

#: Golden-ratio conjugate: the Weyl-sequence increment for window placement
#: (equidistributed modulo 1 against any rational loop period).
_WEYL = 0.6180339887498949


class SamplingParams:
    """The sampling schedule: all units are dynamic instructions.

    The defaults are the tuned accuracy schedule (see
    ``FASTPATH_ACCURACY_PARAMS`` in :mod:`repro.harness.bench`): windows
    long enough to amortize the segment-start settling transient, one
    window per 8k-instruction stratum.
    """

    def __init__(self, period=8000, window=2000, warmup=600, cooldown=300,
                 seed=0, min_windows=3, functional_warming=True,
                 keep_checkpoints=False):
        if window < 1:
            raise ValueError("window must be >= 1 instruction")
        if warmup < 0 or cooldown < 0:
            raise ValueError("warmup/cooldown must be >= 0")
        if period < warmup + window + cooldown:
            raise ValueError(
                "period must cover warmup + window + cooldown "
                f"({warmup} + {window} + {cooldown} > {period})"
            )
        self.period = period
        self.window = window
        self.warmup = warmup
        self.cooldown = cooldown
        #: Seeds the per-stratum window-position draws; recorded in the
        #: results so any sampled run can be reproduced exactly.
        self.seed = seed
        self.min_windows = min_windows
        #: Replay fast-forwarded control transfers into the branch
        #: predictor / BTB / RAS.  Without it, predictor state inside
        #: measurement windows systematically diverges from a continuous
        #: run (SMARTS's central accuracy result; measured +2–4% IPC bias
        #: on dhrystone/SS here).
        self.functional_warming = functional_warming
        #: Keep an architectural checkpoint per window start (replay/debug).
        self.keep_checkpoints = keep_checkpoints

    def as_dict(self):
        return {
            "period": self.period,
            "window": self.window,
            "warmup": self.warmup,
            "cooldown": self.cooldown,
            "seed": self.seed,
            "min_windows": self.min_windows,
            "functional_warming": self.functional_warming,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**{key: data[key] for key in
                      ("period", "window", "warmup", "cooldown", "seed",
                       "min_windows", "functional_warming") if key in data})

    def __repr__(self):
        return (f"SamplingParams(period={self.period}, window={self.window},"
                f" warmup={self.warmup}, cooldown={self.cooldown},"
                f" seed={self.seed})")


class _WindowBoundarySink(PipelineSink):
    """Snapshots cycle + counters at the measured window's boundary commits.

    Instruction-granular on purpose (``cycle_granular`` stays False), so
    attaching it never disables the engine's idle-cycle skipping and the
    simulated cycle counts are identical to an unobserved run.
    """

    name = "sampling-boundary"

    def __init__(self, warmup, window):
        self.first = warmup
        self.second = warmup + window
        self.commits = 0
        self.start = None   # (cycle, field snapshot) at commit #warmup
        self.stop = None    # ... at commit #(warmup + window)
        self._stats = None

    def begin_run(self, core, state, sched):
        self.commits = 0
        self.stop = None
        self._stats = core.stats
        # A zero-warmup window starts measuring before the first commit.
        self.start = self._snapshot(0) if self.first == 0 else None

    def _snapshot(self, cycle):
        stats = self._stats
        return cycle, {field: getattr(stats, field)
                       for field in stats.fields
                       if field not in _ASSIGNED_FIELDS}

    def on_commit(self, seq, entry, cycle):
        self.commits += 1
        if self.commits == self.first:
            self.start = self._snapshot(cycle)
        elif self.commits == self.second:
            self.stop = self._snapshot(cycle)


class _PredictorWarmer:
    """Functional warming: trains predictor/BTB/RAS during fast-forward.

    Replicates exactly the state mutations of the fetch stage's
    ``_predict_control`` — direction-predictor train + history shift on
    conditional branches, RAS pops on predicted-taken returns, RAS pushes on
    calls, BTB fills on taken non-returns — without any cycle modeling.
    ``note`` consumes the compiled fast path's
    :data:`~repro.fastpath.codegen.CompiledProgram.term_at` descriptors;
    ``note_entry`` consumes :class:`~repro.common.trace.TraceEntry` objects
    (the baseline-interpreter fallback), and the two produce bit-identical
    predictor state for the same execution.
    """

    def __init__(self, core, text_base):
        self.predictor = core.predictor
        self.btb = core.btb
        self.ras = core.ras
        self.text_base = text_base

    def note(self, term, next_index):
        pc, is_cond, is_call, is_return, fallthrough = term
        if is_cond:
            taken = next_index != fallthrough
            predicted = self.predictor.predict(pc)
            self.predictor.update(pc, taken)
        else:
            taken = True
            predicted = True
        if predicted:
            if is_return:
                self.ras.pop()
            else:
                self.btb.predict(pc)
        if is_call:
            self.ras.push(pc + WORD_BYTES)
        if taken and not is_return:
            self.btb.update(pc, self.text_base + next_index * WORD_BYTES)

    def note_entry(self, entry):
        if not entry.is_control:
            return
        if entry.is_branch:
            predicted = self.predictor.predict(entry.pc)
            self.predictor.update(entry.pc, entry.taken)
        else:
            predicted = True
        if predicted:
            if entry.is_return:
                self.ras.pop()
            else:
                self.btb.predict(entry.pc)
        if entry.is_call:
            self.ras.push(entry.pc + WORD_BYTES)
        if entry.taken and not entry.is_return:
            self.btb.update(entry.pc, entry.next_pc)


def _rebase_segment(segment, base):
    """Shift seq-numbered trace operands to segment-relative numbering.

    STRAIGHT trace entries carry the interpreter's *global* retirement
    sequence in ``dest``/``srcs``; the timing pipeline numbers instructions
    by trace position.  On a full run the two coincide (both start at 0),
    but a window segment starts mid-run, so its entries are shifted down by
    the segment's base sequence.  Producers from before the segment go
    negative — never in flight, exactly the "long retired, operand ready"
    case the dispatcher already handles.  Register-named ISAs (``dest`` is
    an architectural register) never take this path.
    """
    for entry in segment:
        entry.dest -= base
        if entry.srcs:
            entry.srcs = tuple(s - base for s in entry.srcs)


def _ci95(values):
    """Half-width of the CLT 95% confidence interval (None for n < 2)."""
    n = len(values)
    if n < 2:
        return None
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return 1.96 * math.sqrt(var / n)


class SampledRunner:
    """Drives one binary × core-config pair through sampled simulation.

    One :class:`~repro.uarch.core.OoOCore` is reused for every window, so
    caches, branch predictor, BTB, RAS and the memory-dependence predictor
    stay warm across the fast-forwarded gaps; only the counter object is
    swapped per window.  The functional interpreter is the compiled
    fast path when enabled — fast-forwarding costs no trace memory at all.
    """

    def __init__(self, binary, config, params=None):
        self.binary = binary
        self.config = config
        self.params = params or SamplingParams()

    # -- window measurement ----------------------------------------------------

    def _simulate_segment(self, core, segment, warmup, warm):
        """Cycle-simulate one warmup+window+cooldown trace segment.

        Returns the measured window ``{"cycles", "instructions", "fields"}``
        or None when the program ended before filling the window.
        """
        window = self.params.window
        if len(segment) < warmup + window:
            return None
        stats = SimStats()
        core.stats = stats
        # The front-end model binds the counter object at core construction;
        # rebinding both keeps every component writing into this window.
        core.frontend.stats = stats
        sink = _WindowBoundarySink(warmup, window)
        core.run(segment, warm=warm, observer=ObserverBus([sink]))
        if sink.start is None or sink.stop is None:  # pragma: no cover
            return None
        start_cycle, start_fields = sink.start
        stop_cycle, stop_fields = sink.stop
        return {
            "cycles": max(1, stop_cycle - start_cycle),
            "instructions": window,
            "fields": {field: stop_fields[field] - start_fields[field]
                       for field in start_fields},
        }

    # -- fast-forward ------------------------------------------------------------

    def _fast_forward(self, interp, count, warmer):
        """Execute ``count`` instructions trace-less, warming the predictor.

        The compiled fast path reports control transfers through its
        terminator descriptors (one callback per basic block); the baseline
        interpreter fallback collects the gap's trace and replays its
        control entries — slower, but state-identical.
        """
        if warmer is None:
            return interp.run(max_steps=count).steps
        if getattr(interp, "_fast", None) is not None:
            return fastpath.run_compiled_warming(interp, count, warmer.note)
        interp.trace = []
        interp.collect_trace = True
        steps = interp.run(max_steps=count).steps
        interp.collect_trace = False
        for entry in interp.trace:
            warmer.note_entry(entry)
        interp.trace = []
        return steps

    # -- the sampled run ---------------------------------------------------------

    def run(self, max_steps=50_000_000, warm_caches=False):
        """Sampled counterpart of :func:`repro.core.api.simulate`."""
        from repro.core.api import SimulationResult

        p = self.params
        interp = self.binary.interpreter()
        core = OoOCore(self.config)
        # Functional warming only makes sense for predictor-driven front
        # ends; models that resolve control flow themselves (bb) never
        # consult the predictor, and warming would skew its accuracy stat.
        warmer = None
        if (p.functional_warming
                and getattr(core.frontend, "predict_control", None) is None):
            warmer = _PredictorWarmer(core, self.binary.program.text_base)
        # Stratified low-discrepancy sampling: one window per period-sized
        # stratum, placed by a golden-ratio Weyl sequence from a seeded
        # random phase.  A single fixed offset (classic systematic
        # sampling) aliases with loop periods — coremark's ~40k-instruction
        # iteration sampled every 8k lands on five fixed phases, skewing
        # the windows' instruction mix by several percent.  Independent
        # per-stratum draws fix the aliasing but waste the strong
        # autocorrelation of loop phases (measured ±8% swings on phase-rich
        # cells); the Weyl sequence gets both — it sweeps the phase space
        # evenly like systematic sampling yet is equidistributed against
        # any loop period.  The draw range keeps each segment inside its
        # stratum, so segments never overlap and stay in program order.
        phase = random.Random(p.seed).random()
        span = max(1, p.period - p.window - p.cooldown - p.warmup)
        stratum = 0
        executed = 0
        windows = []
        checkpoints = []
        outputs = interp.output

        while not interp.halted and executed < max_steps:
            draw = int(((phase + stratum * _WEYL) % 1.0) * span)
            next_start = stratum * p.period + p.warmup + draw
            stratum += 1
            seg_begin = max(0, next_start - p.warmup)
            if seg_begin > executed:
                skip = min(seg_begin, max_steps) - executed
                executed += self._fast_forward(interp, skip, warmer)
                if interp.halted or executed >= max_steps:
                    break
            warm_actual = next_start - executed
            seg_len = min(warm_actual + p.window + p.cooldown,
                          max_steps - executed)
            if p.keep_checkpoints:
                checkpoints.append(interp.checkpoint())
            seq_base = getattr(interp, "seq", None)
            interp.trace = []
            interp.collect_trace = True
            executed += interp.run(max_steps=seg_len).steps
            interp.collect_trace = False
            segment = interp.trace
            interp.trace = []
            if seq_base:
                _rebase_segment(segment, seq_base)
            window = self._simulate_segment(
                core, segment, warm_actual, warm_caches
            )
            if window is not None:
                windows.append(window)

        if not interp.halted:
            raise SimulationError(
                f"functional run did not finish within {max_steps} steps"
            )
        run_result = _FunctionalResult(interp, executed, outputs)

        if len(windows) < p.min_windows:
            # Too short to sample: exact full simulation, flagged as such.
            from repro.core.api import simulate

            result = simulate(self.binary, self.config, max_steps=max_steps,
                              warm_caches=warm_caches)
            result.stats.sampling = {
                "mode": "full-fallback",
                "params": p.as_dict(),
                "windows": len(windows),
                "total_instructions": result.stats.instructions,
            }
            return result

        stats = self._extrapolate(core, windows, executed)
        result = SimulationResult(self.binary, self.config, run_result,
                                  interp, stats)
        if p.keep_checkpoints:
            result.checkpoints = checkpoints
        return result

    # -- extrapolation ----------------------------------------------------------

    def _extrapolate(self, core, windows, total_instructions):
        """Ratio-estimator scale-up of the measured windows to the full run."""
        p = self.params
        measured_instr = sum(w["instructions"] for w in windows)
        measured_cycles = sum(w["cycles"] for w in windows)
        ipc_hat = measured_instr / measured_cycles
        window_ipcs = [w["instructions"] / w["cycles"] for w in windows]
        scale = total_instructions / measured_instr

        stats = SimStats()
        stats.instructions = total_instructions
        stats.cycles = max(1, round(total_instructions / ipc_hat))
        buckets = {}
        for field in windows[0]["fields"]:
            deltas = [w["fields"][field] for w in windows]
            estimate = round(sum(deltas) * scale)
            setattr(stats, field, estimate)
            rates = [d / w["instructions"]
                     for d, w in zip(deltas, windows)]
            rate_ci = _ci95(rates)
            buckets[field] = {
                "estimate": estimate,
                "ci95": (None if rate_ci is None
                         else rate_ci * total_instructions),
            }
        # Cumulative over the measured windows (the reused hierarchy and
        # predictor are never reset) — representative, not extrapolated.
        stats.cache_stats = core.hierarchy.stats()
        stats.predictor_accuracy = core.predictor.accuracy
        ipc_ci = _ci95(window_ipcs)
        stats.sampling = {
            "mode": "sampled",
            "schedule": "stratified-weyl",
            "params": p.as_dict(),
            "windows": len(windows),
            "measured_instructions": measured_instr,
            "measured_cycles": measured_cycles,
            "total_instructions": total_instructions,
            "coverage": measured_instr / total_instructions,
            "ipc": ipc_hat,
            "ipc_mean": sum(window_ipcs) / len(window_ipcs),
            "ipc_ci95": ipc_ci,
            "buckets": buckets,
        }
        return stats


class _FunctionalResult:
    """RunResult-shaped summary of the windowed functional execution."""

    def __init__(self, interp, steps, output):
        self.status = "halt" if interp.halted else "limit"
        self.steps = steps
        self.output = output
        self.exit_code = getattr(interp, "exit_code", None)

    def __repr__(self):
        return f"RunResult({self.status}, steps={self.steps})"


def simulate_sampled(binary, config, params=None, max_steps=50_000_000,
                     warm_caches=False):
    """Sampled drop-in for :func:`repro.core.api.simulate`.

    Returns a :class:`~repro.core.api.SimulationResult` whose
    ``stats.sampling`` dict records the schedule, seed, coverage and
    per-bucket 95% confidence intervals.  Guardrails are not supported on
    sampled runs (lockstep needs every committed instruction) — attach
    them to full runs instead.
    """
    return SampledRunner(binary, config, params).run(
        max_steps=max_steps, warm_caches=warm_caches
    )
