"""Plain-text rendering of experiment results (paper-style tables/series)."""


def format_table(rows, columns=None, title=None):
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def format_bars(series, width=40, title=None):
    """Render (label, value) pairs as a normalized ASCII bar chart."""
    if not series:
        return "(no data)"
    peak = max(value for _, value in series) or 1.0
    lines = []
    if title:
        lines.append(title)
    label_width = max(len(label) for label, _ in series)
    for label, value in series:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)
