"""Mini-C recursive-descent parser."""

from repro.common.errors import CompileError
from repro.frontend import ast_nodes as ast
from repro.frontend.ast_nodes import CType


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind, text=None):
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {tok.text!r}", line=tok.line
            )
        return self.advance()

    def error(self, message):
        raise CompileError(message, line=self.peek().line)

    # -- types ---------------------------------------------------------------

    def at_type(self):
        return self.check("keyword", "int") or self.check(
            "keyword", "uint"
        ) or self.check("keyword", "void")

    def parse_type(self):
        tok = self.advance()
        if tok.text not in ("int", "uint", "void"):
            raise CompileError(f"expected a type, found {tok.text!r}", tok.line)
        depth = 0
        while self.accept("op", "*"):
            depth += 1
        if tok.text == "void" and depth > 0:
            # void* is not part of the dialect; keep the type system tiny.
            self.error("pointer to void is not supported")
        return CType(tok.text, depth)

    # -- top level ---------------------------------------------------------------

    def parse_program(self):
        decls = []
        while not self.check("eof"):
            decls.append(self.parse_top_level())
        return ast.Program(decls)

    def parse_top_level(self):
        line = self.peek().line
        ctype = self.parse_type()
        name = self.expect("ident").text
        if self.check("op", "("):
            return self.parse_func_def(ctype, name, line)
        return self.parse_global(ctype, name, line)

    def parse_global(self, ctype, name, line):
        if ctype.is_void():
            self.error("global cannot have type void")
        array_size = None
        if self.accept("op", "["):
            array_size = self.expect("number").value
            self.expect("op", "]")
            if array_size <= 0:
                self.error("array size must be positive")
        initializer = None
        if self.accept("op", "="):
            if self.accept("op", "{"):
                initializer = [self.parse_init_constant()]
                while self.accept("op", ","):
                    if self.check("op", "}"):
                        break
                    initializer.append(self.parse_init_constant())
                self.expect("op", "}")
                if array_size is None:
                    array_size = len(initializer)
            else:
                initializer = self.parse_init_constant()
        self.expect("op", ";")
        return ast.GlobalDecl(ctype, name, array_size, initializer, line)

    def parse_init_constant(self):
        negative = bool(self.accept("op", "-"))
        value = self.expect("number").value
        return -value if negative else value

    def parse_func_def(self, return_type, name, line):
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.peek(1).text == ")":
                self.advance()
            else:
                while True:
                    p_line = self.peek().line
                    p_type = self.parse_type()
                    if p_type.is_void():
                        self.error("parameter cannot have type void")
                    p_name = self.expect("ident").text
                    params.append(ast.Param(p_type, p_name, p_line))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDef(return_type, name, params, body, line)

    # -- statements ---------------------------------------------------------------

    def parse_block(self):
        line = self.expect("op", "{").line
        statements = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(statements, line)

    def parse_statement(self):
        tok = self.peek()
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_var_decl()
        if tok.kind == "keyword":
            handler = {
                "if": self.parse_if,
                "while": self.parse_while,
                "do": self.parse_do_while,
                "for": self.parse_for,
                "return": self.parse_return,
                "break": self.parse_break,
                "continue": self.parse_continue,
            }.get(tok.text)
            if handler:
                return handler()
        if self.accept("op", ";"):
            return ast.Block([], tok.line)
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, tok.line)

    def parse_var_decl(self):
        line = self.peek().line
        ctype = self.parse_type()
        if ctype.is_void():
            self.error("variable cannot have type void")
        name = self.expect("ident").text
        array_size = None
        if self.accept("op", "["):
            array_size = self.expect("number").value
            self.expect("op", "]")
            if array_size <= 0:
                self.error("array size must be positive")
        init_expr = None
        if self.accept("op", "="):
            if array_size is not None:
                self.error("array initializers are only supported for globals")
            init_expr = self.parse_expression()
        self.expect("op", ";")
        return ast.VarDecl(ctype, name, array_size, init_expr, line)

    def parse_if(self):
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self.accept("keyword", "else"):
            else_stmt = self.parse_statement()
        return ast.If(cond, then_stmt, else_stmt, line)

    def parse_while(self):
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def parse_do_while(self):
        line = self.expect("keyword", "do").line
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond, line)

    def parse_for(self):
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self.at_type():
                init = self.parse_var_decl()  # consumes trailing ';'
            else:
                expr = self.parse_expression()
                self.expect("op", ";")
                init = ast.ExprStmt(expr, line)
        else:
            self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line)

    def parse_return(self):
        line = self.expect("keyword", "return").line
        value = None
        if not self.check("op", ";"):
            value = self.parse_expression()
        self.expect("op", ";")
        return ast.Return(value, line)

    def parse_break(self):
        line = self.expect("keyword", "break").line
        self.expect("op", ";")
        node = ast.Break()
        node.line = line
        return node

    def parse_continue(self):
        line = self.expect("keyword", "continue").line
        self.expect("op", ";")
        node = ast.Continue()
        node.line = line
        return node

    # -- expressions (precedence climbing) ----------------------------------------

    ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

    def parse_expression(self):
        return self.parse_assignment()

    def parse_assignment(self):
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.text in self.ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(tok.text, lhs, rhs, tok.line)
        return lhs

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            iftrue = self.parse_expression()
            self.expect("op", ":")
            iffalse = self.parse_ternary()
            return ast.Ternary(cond, iftrue, iffalse, cond.line)
        return cond

    # Precedence levels, loosest first.
    BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level):
        if level >= len(self.BINARY_LEVELS):
            return self.parse_unary()
        ops = self.BINARY_LEVELS[level]
        lhs = self.parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            tok = self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = ast.Binary(tok.text, lhs, rhs, tok.line)
        return lhs

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, tok.line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.text + "pre", operand, tok.line)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.IndexExpr(expr, index, tok.line)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(tok.text + "post", expr, tok.line)
            else:
                return expr

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return ast.IntLiteral(tok.value, tok.line)
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.CallExpr(tok.text, args, tok.line)
            return ast.Identifier(tok.text, tok.line)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        self.error(f"unexpected token {tok.text!r} in expression")


def parse(tokens):
    """Parse a token list into an :class:`~repro.frontend.ast_nodes.Program`."""
    return _Parser(tokens).parse_program()
