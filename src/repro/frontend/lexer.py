"""Mini-C lexer."""

from repro.common.errors import CompileError

KEYWORDS = {
    "int",
    "uint",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "return",
    "break",
    "continue",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "?",
    ":",
]


class Token:
    """A lexical token: ``kind`` in {'ident','number','keyword','op','eof'}."""

    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind, text, line, column, value=None):
        self.kind = kind
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source):
    """Tokenize mini-C source text; returns a list ending with an EOF token."""
    tokens = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def error(message):
        raise CompileError(message, line=line, column=pos - line_start + 1)

    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            nl = source.find("\n", pos)
            pos = length if nl < 0 else nl
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                error("unterminated block comment")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue

        column = pos - line_start + 1
        if ch.isdigit():
            start = pos
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                value = int(text, 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                value = int(text)
            if value >= 1 << 32:
                error(f"integer literal {text} exceeds 32 bits")
            tokens.append(Token("number", text, line, column, value))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            continue
        if ch == "'":
            if pos + 2 < length and source[pos + 1] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39, "r": 13}
                esc = source[pos + 2]
                if esc not in escapes or source[pos + 3] != "'":
                    error("bad character literal")
                tokens.append(
                    Token("number", source[pos : pos + 4], line, column, escapes[esc])
                )
                pos += 4
            elif pos + 2 < length and source[pos + 2] == "'":
                tokens.append(
                    Token(
                        "number",
                        source[pos : pos + 3],
                        line,
                        column,
                        ord(source[pos + 1]),
                    )
                )
                pos += 3
            else:
                error("bad character literal")
            continue

        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line, column))
                pos += len(op)
                break
        else:
            error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
