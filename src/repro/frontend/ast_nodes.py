"""Mini-C abstract syntax tree nodes.

Nodes are plain data carriers; semantic analysis (:mod:`repro.frontend.sema`)
annotates expressions with a ``ctype`` attribute and declarations with symbol
information, which lowering then consumes.
"""


class Node:
    """Base AST node carrying a source line for diagnostics."""

    def __init__(self, line=None):
        self.line = line


# -- types (the front end's C types, distinct from IR types) -------------------


class CType:
    """A mini-C type: ``int``/``uint``/``void`` with a pointer depth."""

    def __init__(self, base, pointer_depth=0):
        if base not in ("int", "uint", "void"):
            raise ValueError(f"bad base type {base!r}")
        self.base = base
        self.pointer_depth = pointer_depth

    def is_pointer(self):
        return self.pointer_depth > 0

    def is_void(self):
        return self.base == "void" and self.pointer_depth == 0

    def is_unsigned_arith(self):
        """Unsigned semantics: ``uint`` values and all pointers."""
        return self.is_pointer() or self.base == "uint"

    def pointee(self):
        if not self.is_pointer():
            raise ValueError("pointee() of non-pointer")
        return CType(self.base, self.pointer_depth - 1)

    def pointer_to(self):
        return CType(self.base, self.pointer_depth + 1)

    def __eq__(self, other):
        return (
            isinstance(other, CType)
            and other.base == self.base
            and other.pointer_depth == self.pointer_depth
        )

    def __hash__(self):
        return hash((self.base, self.pointer_depth))

    def __repr__(self):
        return self.base + "*" * self.pointer_depth


INT = CType("int")
UINT = CType("uint")
VOID_T = CType("void")


# -- declarations ---------------------------------------------------------------


class Program(Node):
    def __init__(self, decls):
        super().__init__()
        self.decls = decls  # GlobalDecl | FuncDef


class GlobalDecl(Node):
    def __init__(self, ctype, name, array_size, initializer, line):
        super().__init__(line)
        self.ctype = ctype
        self.name = name
        self.array_size = array_size  # None for scalars
        self.initializer = initializer  # None | int | list[int]


class Param(Node):
    def __init__(self, ctype, name, line):
        super().__init__(line)
        self.ctype = ctype
        self.name = name


class FuncDef(Node):
    def __init__(self, return_type, name, params, body, line):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


# -- statements ---------------------------------------------------------------


class Block(Node):
    def __init__(self, statements, line):
        super().__init__(line)
        self.statements = statements


class VarDecl(Node):
    def __init__(self, ctype, name, array_size, init_expr, line):
        super().__init__(line)
        self.ctype = ctype
        self.name = name
        self.array_size = array_size
        self.init_expr = init_expr


class If(Node):
    def __init__(self, cond, then_stmt, else_stmt, line):
        super().__init__(line)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt


class While(Node):
    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    def __init__(self, body, cond, line):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Node):
    def __init__(self, init, cond, step, body, line):
        super().__init__(line)
        self.init = init  # stmt or None
        self.cond = cond  # expr or None
        self.step = step  # expr or None
        self.body = body


class Return(Node):
    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Break(Node):
    pass


class Continue(Node):
    pass


class ExprStmt(Node):
    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


# -- expressions ---------------------------------------------------------------


class Expr(Node):
    """Base expression; ``ctype`` is filled in by sema."""

    def __init__(self, line=None):
        super().__init__(line)
        self.ctype = None


class IntLiteral(Expr):
    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Identifier(Expr):
    def __init__(self, name, line):
        super().__init__(line)
        self.name = name
        self.symbol = None  # filled by sema


class Unary(Expr):
    """op in {'-','!','~','*','&','++pre','--pre','++post','--post'}."""

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    def __init__(self, op, lhs, rhs, line):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """``op`` is '=' or a compound operator like '+='."""

    def __init__(self, op, target, value, line):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Ternary(Expr):
    def __init__(self, cond, iftrue, iffalse, line):
        super().__init__(line)
        self.cond = cond
        self.iftrue = iftrue
        self.iffalse = iffalse


class IndexExpr(Expr):
    def __init__(self, base, index, line):
        super().__init__(line)
        self.base = base
        self.index = index


class CallExpr(Expr):
    def __init__(self, name, args, line):
        super().__init__(line)
        self.name = name
        self.args = args
        self.func = None  # filled by sema (FuncDef or builtin marker)
