"""Mini-C front end (the reproduction's clang substitute).

A small C dialect sufficient to express the paper's benchmarks: 32-bit
``int``/``uint``, pointers and one-dimensional arrays, full statement-level
control flow, functions, globals, and an ``__out(x)`` builtin writing to the
validation output channel.  Compilation goes AST -> alloca-form IR ->
(mem2reg) -> SSA, mirroring clang -> LLVM IR.

Use :func:`compile_source` to get an optimized SSA module from source text.
"""

from repro.frontend.lexer import tokenize, Token
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.frontend.lowering import lower_program
from repro.ir.passes import default_pipeline
from repro.ir.verifier import verify_module


def compile_source(source, module_name="main", optimize=True):
    """Compile mini-C ``source`` into a verified (optionally optimized) SSA module."""
    program = parse(tokenize(source))
    analyze(program)
    module = lower_program(program, module_name)
    verify_module(module)
    if optimize:
        default_pipeline().run(module)
        verify_module(module)
    return module


__all__ = ["tokenize", "Token", "parse", "analyze", "lower_program", "compile_source"]
