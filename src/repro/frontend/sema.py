"""Mini-C semantic analysis: scopes, symbols, and type checking.

Annotates every expression node with ``ctype`` and every identifier with its
``symbol``; raises :class:`CompileError` on violations.  Signedness rules
follow C: an operation is unsigned when either operand is ``uint`` (or a
pointer), which later selects between the signed/unsigned instruction pairs
of both target ISAs (``DIV``/``DIVU``, ``SLT``/``SLTU``, ``SRA``/``SRL``).
"""

from repro.common.errors import CompileError
from repro.frontend import ast_nodes as ast
from repro.frontend.ast_nodes import CType, INT, UINT

#: Builtin functions: name -> (arg count, returns value).
BUILTINS = {"__out": (1, False), "__halt": (0, False)}


class VarSymbol:
    """A variable: global, parameter, or local (optionally an array)."""

    def __init__(self, name, ctype, kind, array_size=None):
        self.name = name
        self.ctype = ctype
        self.kind = kind  # 'global' | 'param' | 'local'
        self.array_size = array_size

    @property
    def is_array(self):
        return self.array_size is not None

    def value_type(self):
        """Type when read as an expression (arrays decay to pointers)."""
        if self.is_array:
            return self.ctype.pointer_to()
        return self.ctype


class FuncSymbol:
    def __init__(self, node):
        self.node = node
        self.name = node.name
        self.return_type = node.return_type
        self.param_types = [p.ctype for p in node.params]


class Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.symbols = {}

    def define(self, symbol, line):
        if symbol.name in self.symbols:
            raise CompileError(f"redefinition of {symbol.name!r}", line=line)
        self.symbols[symbol.name] = symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, program):
        self.program = program
        self.globals = Scope()
        self.functions = {}
        self.current_function = None
        self.loop_depth = 0

    # -- entry ------------------------------------------------------------------

    def run(self):
        for decl in self.program.decls:
            if isinstance(decl, ast.GlobalDecl):
                self._declare_global(decl)
            else:
                self._declare_function(decl)
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                self._check_function(decl)
        return self.program

    def _declare_global(self, decl):
        symbol = VarSymbol(decl.name, decl.ctype, "global", decl.array_size)
        self.globals.define(symbol, decl.line)
        decl.symbol = symbol

    def _declare_function(self, decl):
        if decl.name in self.functions or decl.name in BUILTINS:
            raise CompileError(
                f"redefinition of function {decl.name!r}", line=decl.line
            )
        self.functions[decl.name] = FuncSymbol(decl)

    def _check_function(self, func):
        self.current_function = func
        scope = Scope(self.globals)
        for param in func.params:
            symbol = VarSymbol(param.name, param.ctype, "param")
            scope.define(symbol, param.line)
            param.symbol = symbol
        self.check_block(func.body, scope)
        self.current_function = None

    # -- statements ----------------------------------------------------------------

    def check_block(self, block, parent_scope):
        scope = Scope(parent_scope)
        for stmt in block.statements:
            self.check_statement(stmt, scope)

    def check_statement(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            self.check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init_expr is not None:
                self.check_expr(stmt.init_expr, scope)
                self._check_assignable(stmt.ctype, stmt.init_expr, stmt.line)
            symbol = VarSymbol(stmt.name, stmt.ctype, "local", stmt.array_size)
            scope.define(symbol, stmt.line)
            stmt.symbol = symbol
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond, scope)
            self.check_statement(stmt.then_stmt, Scope(scope))
            if stmt.else_stmt is not None:
                self.check_statement(stmt.else_stmt, Scope(scope))
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond, scope)
            self._check_loop_body(stmt.body, Scope(scope))
        elif isinstance(stmt, ast.DoWhile):
            self._check_loop_body(stmt.body, Scope(scope))
            self.check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self.check_statement(stmt.init, inner)
            if stmt.cond is not None:
                self.check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self.check_expr(stmt.step, inner)
            self._check_loop_body(stmt.body, Scope(inner))
        elif isinstance(stmt, ast.Return):
            ret_type = self.current_function.return_type
            if stmt.value is None:
                if not ret_type.is_void():
                    raise CompileError(
                        "non-void function must return a value", line=stmt.line
                    )
            else:
                if ret_type.is_void():
                    raise CompileError(
                        "void function cannot return a value", line=stmt.line
                    )
                self.check_expr(stmt.value, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"{keyword} outside a loop", line=stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        else:
            raise CompileError(f"unknown statement {stmt!r}", line=stmt.line)

    def _check_loop_body(self, body, scope):
        self.loop_depth += 1
        try:
            self.check_statement(body, scope)
        finally:
            self.loop_depth -= 1

    # -- expressions ----------------------------------------------------------------

    def check_expr(self, expr, scope):
        method = getattr(self, f"_check_{type(expr).__name__}", None)
        if method is None:
            raise CompileError(f"unknown expression {expr!r}", line=expr.line)
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _check_IntLiteral(self, expr, scope):
        return UINT if expr.value > 0x7FFF_FFFF else INT

    def _check_Identifier(self, expr, scope):
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)
        expr.symbol = symbol
        return symbol.value_type()

    def _check_Unary(self, expr, scope):
        op = expr.op
        operand_type = self.check_expr(expr.operand, scope)
        if op in ("-", "~"):
            self._require_arith(operand_type, expr.line, op)
            return operand_type
        if op == "!":
            return INT
        if op == "*":
            if not operand_type.is_pointer():
                raise CompileError("cannot dereference a non-pointer", expr.line)
            return operand_type.pointee()
        if op == "&":
            self._require_lvalue(expr.operand, expr.line)
            return operand_type.pointer_to()
        if op in ("++pre", "--pre", "++post", "--post"):
            self._require_lvalue(expr.operand, expr.line)
            return operand_type
        raise CompileError(f"unknown unary operator {op!r}", expr.line)

    def _check_Binary(self, expr, scope):
        lt = self.check_expr(expr.lhs, scope)
        rt = self.check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT
        if op in ("+", "-"):
            if lt.is_pointer() and rt.is_pointer():
                if op == "-":
                    return INT  # element difference
                raise CompileError("cannot add two pointers", expr.line)
            if lt.is_pointer():
                return lt
            if rt.is_pointer():
                if op == "-":
                    raise CompileError("cannot subtract pointer from int", expr.line)
                return rt
            return self._usual_arith(lt, rt)
        if op in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            self._require_arith(lt, expr.line, op)
            self._require_arith(rt, expr.line, op)
            if op in ("<<", ">>"):
                return lt
            return self._usual_arith(lt, rt)
        raise CompileError(f"unknown binary operator {op!r}", expr.line)

    def _check_Assign(self, expr, scope):
        self._require_lvalue(expr.target, expr.line)
        target_type = self.check_expr(expr.target, scope)
        self.check_expr(expr.value, scope)
        if expr.op == "=":
            self._check_assignable(target_type, expr.value, expr.line)
        elif target_type.is_pointer() and expr.op not in ("+=", "-="):
            raise CompileError(
                f"operator {expr.op!r} not valid on pointers", expr.line
            )
        return target_type

    def _check_Ternary(self, expr, scope):
        self.check_expr(expr.cond, scope)
        t_type = self.check_expr(expr.iftrue, scope)
        f_type = self.check_expr(expr.iffalse, scope)
        if t_type.is_pointer() != f_type.is_pointer():
            raise CompileError("ternary arms have incompatible types", expr.line)
        if t_type.is_pointer():
            return t_type
        return self._usual_arith(t_type, f_type)

    def _check_IndexExpr(self, expr, scope):
        base_type = self.check_expr(expr.base, scope)
        self.check_expr(expr.index, scope)
        if not base_type.is_pointer():
            raise CompileError("indexing a non-pointer", expr.line)
        return base_type.pointee()

    def _check_CallExpr(self, expr, scope):
        if expr.name in BUILTINS:
            arg_count, returns_value = BUILTINS[expr.name]
            if len(expr.args) != arg_count:
                raise CompileError(
                    f"{expr.name} expects {arg_count} argument(s)", expr.line
                )
            for arg in expr.args:
                self.check_expr(arg, scope)
            expr.func = expr.name
            return INT if returns_value else ast.VOID_T
        func = self.functions.get(expr.name)
        if func is None:
            raise CompileError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(func.param_types):
            raise CompileError(
                f"{expr.name} expects {len(func.param_types)} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        for arg, param_type in zip(expr.args, func.param_types):
            self.check_expr(arg, scope)
            self._check_assignable(param_type, arg, expr.line)
        expr.func = func
        return func.return_type

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _usual_arith(lt, rt):
        return UINT if lt.is_unsigned_arith() or rt.is_unsigned_arith() else INT

    @staticmethod
    def _require_arith(ctype, line, op):
        if ctype.is_pointer():
            raise CompileError(f"operator {op!r} not valid on pointers", line)
        if ctype.is_void():
            raise CompileError(f"operator {op!r} on void value", line)

    @staticmethod
    def _require_lvalue(expr, line):
        if isinstance(expr, ast.Identifier):
            return  # array-ness checked via assignment type rules
        if isinstance(expr, ast.IndexExpr):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise CompileError("expression is not assignable", line)

    @staticmethod
    def _check_assignable(target_type, value_expr, line):
        value_type = value_expr.ctype
        if value_type is None or value_type.is_void():
            raise CompileError("cannot use a void value", line)
        if target_type.is_pointer() != value_type.is_pointer():
            # Allow literal 0 as a null pointer.
            if (
                target_type.is_pointer()
                and isinstance(value_expr, ast.IntLiteral)
                and value_expr.value == 0
            ):
                return
            raise CompileError(
                f"incompatible assignment: {target_type!r} = {value_type!r}", line
            )
        if (
            target_type.is_pointer()
            and value_type.is_pointer()
            and target_type != value_type
        ):
            raise CompileError(
                f"incompatible pointer assignment: {target_type!r} = {value_type!r}",
                line,
            )


def analyze(program):
    """Type-check ``program`` in place; returns it for chaining."""
    return _Analyzer(program).run()
