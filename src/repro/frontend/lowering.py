"""AST -> IR lowering.

Locals are lowered to allocas with explicit loads/stores (clang's strategy);
the mem2reg pass then rewrites them into phi-form SSA.  Short-circuit
operators and ternaries also use temporary allocas, so *every* merge-point
phi in the final IR comes out of mem2reg by one mechanism.
"""

from repro.common.errors import CompileError
from repro.frontend import ast_nodes as ast
from repro.frontend.sema import BUILTINS
from repro.ir import Module, IRBuilder
from repro.ir.values import ConstantInt


def lower_program(program, module_name="main"):
    """Lower a type-checked program into an IR :class:`Module`."""
    module = Module(module_name)
    for decl in program.decls:
        if isinstance(decl, ast.GlobalDecl):
            size = decl.array_size if decl.array_size is not None else 1
            init = decl.initializer
            if init is not None and not isinstance(init, list):
                init = [init]
            module.add_global(decl.name, size, init)
    for decl in program.decls:
        if isinstance(decl, ast.FuncDef):
            _FunctionLowerer(module, decl).run()
    return module


class _FunctionLowerer:
    def __init__(self, module, func_def):
        self.module = module
        self.func_def = func_def
        returns_value = not func_def.return_type.is_void()
        self.func = module.add_function(
            func_def.name,
            [p.name for p in func_def.params],
            returns_value,
        )
        self.builder = IRBuilder(self.func)
        self.slots = {}  # VarSymbol -> alloca (or GlobalVariable)
        self.break_targets = []
        self.continue_targets = []

    # -- driver ----------------------------------------------------------------

    def run(self):
        entry = self.func.add_block("entry")
        self.builder.set_insert_point(entry)
        for param, arg in zip(self.func_def.params, self.func.params):
            slot = self.builder.alloca(1, name=param.name)
            self.builder.store(arg, slot)
            self.slots[param.symbol] = slot
        self.lower_block(self.func_def.body)
        if not self.builder.block.is_terminated():
            if self.func.return_type.is_void():
                self.builder.ret()
            else:
                self.builder.ret(ConstantInt(0))

    # -- statements ----------------------------------------------------------------

    def lower_block(self, block):
        for stmt in block.statements:
            self.lower_statement(stmt)

    def _start_dead_block(self):
        dead = self.func.add_block("dead")
        self.builder.set_insert_point(dead)

    def lower_statement(self, stmt):
        if self.builder.block.is_terminated():
            # Code after return/break/continue: emit into an unreachable
            # block and let simplify-cfg delete it.
            self._start_dead_block()
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.builder.ret()
            else:
                self.builder.ret(self.rvalue(stmt.value))
        elif isinstance(stmt, ast.Break):
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            self.builder.br(self.continue_targets[-1])
        elif isinstance(stmt, ast.ExprStmt):
            self.rvalue(stmt.expr, discard=True)
        else:
            raise CompileError(f"cannot lower statement {stmt!r}", line=stmt.line)

    def _lower_var_decl(self, stmt):
        size = stmt.array_size if stmt.array_size is not None else 1
        slot = self.builder.alloca(size, name=stmt.name)
        self.slots[stmt.symbol] = slot
        if stmt.init_expr is not None:
            self.builder.store(self.rvalue(stmt.init_expr), slot)

    def _lower_if(self, stmt):
        then_block = self.func.add_block("if.then")
        end_block = self.func.add_block("if.end")
        else_block = (
            self.func.add_block("if.else") if stmt.else_stmt is not None else end_block
        )
        self.builder.cond_br(self.rvalue(stmt.cond), then_block, else_block)

        self.builder.set_insert_point(then_block)
        self.lower_statement(stmt.then_stmt)
        if not self.builder.block.is_terminated():
            self.builder.br(end_block)

        if stmt.else_stmt is not None:
            self.builder.set_insert_point(else_block)
            self.lower_statement(stmt.else_stmt)
            if not self.builder.block.is_terminated():
                self.builder.br(end_block)

        self.builder.set_insert_point(end_block)

    def _lower_while(self, stmt):
        cond_block = self.func.add_block("while.cond")
        body_block = self.func.add_block("while.body")
        end_block = self.func.add_block("while.end")
        self.builder.br(cond_block)
        self.builder.set_insert_point(cond_block)
        self.builder.cond_br(self.rvalue(stmt.cond), body_block, end_block)
        self._lower_loop_body(stmt.body, body_block, cond_block, end_block)
        self.builder.set_insert_point(end_block)

    def _lower_do_while(self, stmt):
        body_block = self.func.add_block("do.body")
        cond_block = self.func.add_block("do.cond")
        end_block = self.func.add_block("do.end")
        self.builder.br(body_block)
        self._lower_loop_body(stmt.body, body_block, cond_block, end_block)
        self.builder.set_insert_point(cond_block)
        self.builder.cond_br(self.rvalue(stmt.cond), body_block, end_block)
        self.builder.set_insert_point(end_block)

    def _lower_for(self, stmt):
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        cond_block = self.func.add_block("for.cond")
        body_block = self.func.add_block("for.body")
        step_block = self.func.add_block("for.step")
        end_block = self.func.add_block("for.end")
        self.builder.br(cond_block)
        self.builder.set_insert_point(cond_block)
        if stmt.cond is not None:
            self.builder.cond_br(self.rvalue(stmt.cond), body_block, end_block)
        else:
            self.builder.br(body_block)
        self._lower_loop_body(stmt.body, body_block, step_block, end_block)
        self.builder.set_insert_point(step_block)
        if stmt.step is not None:
            self.rvalue(stmt.step, discard=True)
        self.builder.br(cond_block)
        self.builder.set_insert_point(end_block)

    def _lower_loop_body(self, body, body_block, continue_target, break_target):
        self.builder.set_insert_point(body_block)
        self.break_targets.append(break_target)
        self.continue_targets.append(continue_target)
        try:
            self.lower_statement(body)
        finally:
            self.break_targets.pop()
            self.continue_targets.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(continue_target)

    # -- expression lowering ----------------------------------------------------

    def rvalue(self, expr, discard=False):
        """Lower ``expr`` for its value (``discard=True`` for expr-statements)."""
        if isinstance(expr, ast.IntLiteral):
            return ConstantInt(expr.value)
        if isinstance(expr, ast.Identifier):
            if expr.symbol.is_array:
                return self._address_of_symbol(expr.symbol)
            return self.builder.load(self.lvalue(expr), name=expr.name)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.IndexExpr):
            return self.builder.load(self.lvalue(expr))
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr, discard)
        raise CompileError(f"cannot lower expression {expr!r}", line=expr.line)

    def lvalue(self, expr):
        """Lower ``expr`` to the address it denotes."""
        if isinstance(expr, ast.Identifier):
            return self._address_of_symbol(expr.symbol)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.rvalue(expr.operand)
        if isinstance(expr, ast.IndexExpr):
            base = self.rvalue(expr.base)
            return self.builder.gep(base, self.rvalue(expr.index))
        raise CompileError("expression is not addressable", line=expr.line)

    def _address_of_symbol(self, symbol):
        if symbol.kind == "global":
            return self.module.globals[symbol.name]
        return self.slots[symbol]

    def _lower_unary(self, expr):
        op = expr.op
        if op == "-":
            return self.builder.sub(ConstantInt(0), self.rvalue(expr.operand))
        if op == "~":
            return self.builder.xor(self.rvalue(expr.operand), ConstantInt(0xFFFFFFFF))
        if op == "!":
            return self.builder.icmp("eq", self.rvalue(expr.operand), ConstantInt(0))
        if op == "*":
            return self.builder.load(self.rvalue(expr.operand))
        if op == "&":
            return self.lvalue(expr.operand)
        if op in ("++pre", "--pre", "++post", "--post"):
            slot = self.lvalue(expr.operand)
            old = self.builder.load(slot)
            delta = 1 if op.startswith("++") else -1
            if expr.operand.ctype.is_pointer():
                new = self.builder.gep(old, ConstantInt(delta))
            else:
                new = self.builder.add(old, ConstantInt(delta))
            self.builder.store(new, slot)
            return old if op.endswith("post") else new
        raise CompileError(f"cannot lower unary {op!r}", line=expr.line)

    #: Mini-C operator -> (signed IR opcode, unsigned IR opcode).
    _ARITH_OPS = {
        "+": ("add", "add"),
        "-": ("sub", "sub"),
        "*": ("mul", "mul"),
        "/": ("sdiv", "udiv"),
        "%": ("srem", "urem"),
        "&": ("and", "and"),
        "|": ("or", "or"),
        "^": ("xor", "xor"),
        "<<": ("shl", "shl"),
        ">>": ("ashr", "lshr"),
    }
    _CMP_OPS = {
        "==": ("eq", "eq"),
        "!=": ("ne", "ne"),
        "<": ("slt", "ult"),
        "<=": ("sle", "ule"),
        ">": ("sgt", "ugt"),
        ">=": ("sge", "uge"),
    }

    @staticmethod
    def _operands_unsigned(lhs, rhs):
        return lhs.ctype.is_unsigned_arith() or rhs.ctype.is_unsigned_arith()

    def _lower_binary(self, expr):
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lt, rt = expr.lhs.ctype, expr.rhs.ctype
        if op in ("+", "-") and (lt.is_pointer() or rt.is_pointer()):
            return self._lower_pointer_arith(expr, lt, rt)
        lhs = self.rvalue(expr.lhs)
        rhs = self.rvalue(expr.rhs)
        unsigned = self._operands_unsigned(expr.lhs, expr.rhs)
        if op in self._CMP_OPS:
            pred = self._CMP_OPS[op][1 if unsigned else 0]
            return self.builder.icmp(pred, lhs, rhs)
        if op == ">>":
            # Shift signedness follows the *shifted* operand, as in C.
            unsigned = expr.lhs.ctype.is_unsigned_arith()
        opcode = self._ARITH_OPS[op][1 if unsigned else 0]
        return self.builder.binop(opcode, lhs, rhs)

    def _lower_pointer_arith(self, expr, lt, rt):
        op = expr.op
        if lt.is_pointer() and rt.is_pointer():
            diff = self.builder.sub(self.rvalue(expr.lhs), self.rvalue(expr.rhs))
            return self.builder.ashr(diff, ConstantInt(2))
        if lt.is_pointer():
            index = self.rvalue(expr.rhs)
            if op == "-":
                index = self.builder.sub(ConstantInt(0), index)
            return self.builder.gep(self.rvalue(expr.lhs), index)
        # int + ptr
        return self.builder.gep(self.rvalue(expr.rhs), self.rvalue(expr.lhs))

    def _lower_short_circuit(self, expr):
        result = self.builder.alloca(1, name="sc")
        rhs_block = self.func.add_block("sc.rhs")
        end_block = self.func.add_block("sc.end")
        lhs = self.rvalue(expr.lhs)
        lhs_bool = self.builder.icmp("ne", lhs, ConstantInt(0))
        self.builder.store(lhs_bool, result)
        if expr.op == "&&":
            self.builder.cond_br(lhs_bool, rhs_block, end_block)
        else:
            self.builder.cond_br(lhs_bool, end_block, rhs_block)
        self.builder.set_insert_point(rhs_block)
        rhs = self.rvalue(expr.rhs)
        rhs_bool = self.builder.icmp("ne", rhs, ConstantInt(0))
        self.builder.store(rhs_bool, result)
        self.builder.br(end_block)
        self.builder.set_insert_point(end_block)
        return self.builder.load(result)

    def _lower_ternary(self, expr):
        result = self.builder.alloca(1, name="tern")
        true_block = self.func.add_block("tern.true")
        false_block = self.func.add_block("tern.false")
        end_block = self.func.add_block("tern.end")
        self.builder.cond_br(self.rvalue(expr.cond), true_block, false_block)
        self.builder.set_insert_point(true_block)
        self.builder.store(self.rvalue(expr.iftrue), result)
        self.builder.br(end_block)
        self.builder.set_insert_point(false_block)
        self.builder.store(self.rvalue(expr.iffalse), result)
        self.builder.br(end_block)
        self.builder.set_insert_point(end_block)
        return self.builder.load(result)

    def _lower_assign(self, expr):
        slot = self.lvalue(expr.target)
        if expr.op == "=":
            value = self.rvalue(expr.value)
            self.builder.store(value, slot)
            return value
        base_op = expr.op[:-1]  # '+=' -> '+'
        old = self.builder.load(slot)
        rhs = self.rvalue(expr.value)
        if expr.target.ctype.is_pointer():
            if base_op == "-":
                rhs = self.builder.sub(ConstantInt(0), rhs)
            new = self.builder.gep(old, rhs)
        else:
            unsigned = expr.target.ctype.is_unsigned_arith() or (
                expr.value.ctype.is_unsigned_arith() and base_op not in ("<<", ">>")
            )
            if base_op == ">>":
                unsigned = expr.target.ctype.is_unsigned_arith()
            opcode = self._ARITH_OPS[base_op][1 if unsigned else 0]
            new = self.builder.binop(opcode, old, rhs)
        self.builder.store(new, slot)
        return new

    def _lower_call(self, expr, discard):
        args = [self.rvalue(arg) for arg in expr.args]
        if expr.name in BUILTINS:
            if expr.name == "__out":
                self.builder.output(args[0])
                return ConstantInt(0)
            # __halt and any future builtins become named void calls the
            # backends recognize.
            self.builder.call(expr.name, args, returns_value=False)
            return ConstantInt(0)
        callee = self.module.get_function(expr.name)
        returns_value = not callee.return_type.is_void()
        result = self.builder.call(callee, args, returns_value=returns_value)
        if returns_value:
            return result
        if not discard:
            raise CompileError(
                f"void call to {expr.name!r} used as a value", line=expr.line
            )
        return ConstantInt(0)
