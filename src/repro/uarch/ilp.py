"""Trace-level ILP analysis: dataflow limits and dependence profiles.

Companions to the timing model: given a dynamic trace, compute the
*dataflow-limit* IPC (infinite window, infinite width, perfect prediction —
only true data dependences and operation latencies constrain issue) and
dependence-distance profiles.  The paper's motivation — a scalable window
exploits "much larger ILP" (§I) — is quantified by comparing a real
configuration's IPC against this ceiling.
"""


class IlpReport:
    """Results of a dataflow-limit analysis."""

    def __init__(self, instructions, critical_path, dataflow_ipc, histogram):
        self.instructions = instructions
        #: cycles of the longest latency-weighted dependence chain
        self.critical_path = critical_path
        #: instructions / critical path: the infinite-machine IPC ceiling
        self.dataflow_ipc = dataflow_ipc
        #: dependence distance (in dynamic instructions) -> count
        self.dependence_distance_histogram = histogram

    def __repr__(self):
        return (
            f"IlpReport(n={self.instructions}, critical={self.critical_path}, "
            f"dataflow_ipc={self.dataflow_ipc:.2f})"
        )


def _latency_of(entry, latencies):
    return latencies.get(entry.op_class, 1)


DEFAULT_LATENCIES = {
    "alu": 1,
    "mul": 3,
    "div": 12,
    "load": 4,
    "store": 1,
    "branch": 1,
    "jump": 1,
    "sys": 1,
    "nop": 1,
}


def dataflow_limit(trace, latencies=None, track_memory=True):
    """Compute the dataflow-limit schedule of a trace.

    Register dependences come from the trace's producer tags; memory
    dependences (store -> later load of the same address) are included when
    ``track_memory`` is true.  Control dependences are ignored — this is the
    oracle-fetch limit.
    """
    latencies = latencies or DEFAULT_LATENCIES
    finish = {}  # producer tag (seq for STRAIGHT, logical reg for SS) -> time
    # For SS traces, srcs are logical register numbers; for STRAIGHT traces
    # they are producer sequence numbers.  Both work as dependence keys as
    # long as writers update the same keyspace, which `dest` provides.
    last_store_to = {}
    critical = 0
    histogram = {}
    for index, entry in enumerate(trace):
        ready = 0
        for src in entry.srcs:
            ready = max(ready, finish.get(src, 0))
        if track_memory and entry.mem_addr is not None:
            if entry.op_class == "load":
                producer = last_store_to.get(entry.mem_addr)
                if producer is not None:
                    ready = max(ready, producer)
        done = ready + _latency_of(entry, latencies)
        if entry.dest is not None:
            finish[entry.dest] = done
        if track_memory and entry.op_class == "store":
            last_store_to[entry.mem_addr] = done
        if done > critical:
            critical = done
        if entry.src_distances:
            for distance in entry.src_distances:
                if distance > 0:
                    histogram[distance] = histogram.get(distance, 0) + 1
    n = len(trace)
    return IlpReport(n, critical, n / critical if critical else 0.0, histogram)


def window_limited_ipc(trace, window, latencies=None):
    """Dataflow IPC under a finite instruction window of ``window`` entries.

    A simple in-order-window model: instruction ``i`` cannot start before
    instruction ``i - window`` has finished (it must have left the window).
    Shows how the achievable ILP grows with window size — the scalability
    argument behind STRAIGHT's cheap large ROB.
    """
    latencies = latencies or DEFAULT_LATENCIES
    finish = {}
    finish_times = []
    critical = 0
    for index, entry in enumerate(trace):
        ready = 0
        for src in entry.srcs:
            ready = max(ready, finish.get(src, 0))
        if index >= window:
            ready = max(ready, finish_times[index - window])
        done = ready + _latency_of(entry, latencies)
        if entry.dest is not None:
            finish[entry.dest] = done
        finish_times.append(done)
        critical = max(critical, done)
    return len(trace) / critical if critical else 0.0
