"""Pluggable front-end models: register renaming vs. RP operand determination.

This module is the heart of the reproduction's architectural comparison:

* :class:`RenameFrontEnd` models the conventional superscalar front end —
  RAM-based RMT lookups, free-list allocation (dispatch stalls when physical
  registers run out), and the recovery cost of *walking the ROB to restore
  the RMT* after a branch misprediction (paper §II-A, [14]);
* :class:`StraightFrontEnd` models STRAIGHT's operand determination — an
  adder per operand against the running RP, no table, no free list, and a
  *single ROB-entry read* on recovery (paper §III-B, Figs. 3 and 4).  Its
  only dispatch restriction is one SPADD per group (the cascaded-SPADD
  frequency concern of §III-B);
* :class:`BasicBlockFrontEnd` models a BasicBlocker-style RV32IM front end
  (the ``bb`` ISA): a conventional rename stage, but control flow resolved
  from block-header annotations instead of prediction — sequential fetch
  within an announced basic block, no speculation, no mispredictions.

Models register in :data:`FRONTEND_MODELS`; a
:class:`~repro.uarch.config.CoreConfig` names one via its
``frontend_model`` property and :class:`~repro.uarch.core.OoOCore` looks it
up there.
"""


class RenameFrontEnd:
    """Conventional rename stage with a RAM-based RMT and a free list."""

    name = "rename"
    #: counters this model increments, contributed to the StatsRegistry
    STAT_FIELDS = ("rob_walk_cycles", "freelist_stall_cycles",
                   "rename_src_reads", "rename_writes")

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        # 32 architectural registers hold mappings at all times; the rest of
        # the physical register file backs in-flight instructions.
        self.free_regs = config.phys_regs - 32
        self.last_writer = {}  # logical reg -> producer trace seq

    def reset_run(self):
        """Clear per-run state before a new trace (seq numbering restarts).

        ``last_writer`` maps logical registers to producer *trace positions*;
        carrying mappings across runs on a reused core (sampled simulation
        windows) would alias unrelated instructions in the new numbering —
        including future positions, which can deadlock the issue queue.  A
        producer from before this trace is architecturally long-retired, and
        an empty map yields exactly that ("operand ready").
        """
        self.free_regs = self.config.phys_regs - 32
        self.last_writer = {}

    def can_dispatch(self, entry, group_state):
        """Structural check; may record a stall reason in ``stats``."""
        if entry.dest is not None and self.free_regs <= 0:
            self.stats.freelist_stall_cycles += 1
            return False
        return True

    def rename(self, entry, seq):
        """Map source logical registers to producer tags; allocate the dest.

        Returns the list of producer tags (trace sequence numbers).
        """
        tags = [self.last_writer.get(reg) for reg in entry.srcs]
        self.stats.rename_src_reads += len(entry.srcs) + (
            1 if entry.dest is not None else 0
        )  # sources + previous-mapping read of the destination
        if entry.dest is not None:
            self.free_regs -= 1
            self.last_writer[entry.dest] = seq
            self.stats.rename_writes += 1
        return [t for t in tags if t is not None]

    def on_commit(self, entry):
        """Freeing the previous mapping returns one register per writer."""
        if entry.dest is not None:
            self.free_regs += 1

    def recovery_block_until(self, resolve_cycle, fetch_cycle, rob_free):
        """When dispatch may resume after a mispredict resolved at
        ``resolve_cycle`` for a branch fetched at ``fetch_cycle``.

        The RMT must be restored by walking the wrong-path ROB entries at
        front-end width; re-fetched instructions reaching the rename stage
        earlier than that must stall (paper §V-A).  Wrong-path occupancy is
        estimated as fetch-width instructions per cycle of resolution delay,
        capped by the ROB space that was available.
        """
        if self.config.ideal_recovery:
            return resolve_cycle
        wrong_path = min(
            self.config.fetch_width * max(0, resolve_cycle - fetch_cycle),
            max(rob_free, 0),
        )
        walk_width = self.config.fetch_width
        walk_cycles = -(-wrong_path // walk_width) if wrong_path else 0
        self.stats.rob_walk_cycles += walk_cycles
        # The walk overlaps the re-fetched instructions' trip to the rename
        # stage; only the excess shows up as an extra stall.
        overlap = self.config.rename_stage_depth
        return resolve_cycle + max(0, walk_cycles - overlap)


class StraightFrontEnd:
    """STRAIGHT operand determination: RP arithmetic instead of renaming."""

    name = "straight"
    #: counters this model increments, contributed to the StatsRegistry
    STAT_FIELDS = ("spadd_stall_cycles", "opdet_ops")

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        # MAX_RP = maximum distance + ROB entries (paper §III-B) never
        # aliases live registers, so there is no free-list stall by design.
        self.max_rp = config.max_distance + config.rob_entries

    def reset_run(self):
        pass  # operand determination is stateless across runs

    def can_dispatch(self, entry, group_state):
        limit = getattr(self.config, "spadd_per_group", 1)
        if entry.is_spadd and group_state.get("spadds", 0) >= limit:
            self.stats.spadd_stall_cycles += 1
            return False
        return True

    def rename(self, entry, seq):
        """Operand determination: one subtraction per source operand."""
        if entry.is_spadd:
            pass  # group accounting is done by the dispatcher
        self.stats.opdet_ops += len(entry.srcs)
        # Trace sources already are producer sequence numbers.
        return list(entry.srcs)

    def on_commit(self, entry):
        pass  # RP reclamation is implicit in the circular register file

    def recovery_block_until(self, resolve_cycle, fetch_cycle, rob_free):
        """One ROB-entry read restores RP/SP/PC (paper Fig. 4)."""
        if self.config.ideal_recovery:
            return resolve_cycle
        return resolve_cycle + 1


class BasicBlockFrontEnd(RenameFrontEnd):
    """BasicBlocker-style front end: block headers instead of prediction.

    The ``bb`` ISA marks every basic-block head with a ``BB`` instruction
    announcing the block's instruction count, so fetch always knows where
    the current block ends and control transfers are resolved at decode —
    there is no branch predictor and therefore no misprediction recovery.
    The model charges that as: fetch groups stop at taken control transfers
    (sequential fetch never crosses a block boundary speculatively), with
    no recovery stalls; the dynamic cost of the scheme is the ``BB`` header
    instruction itself, which occupies fetch/decode/ROB slots in every
    executed block.  Register renaming is inherited unchanged — the ISA is
    RV32IM plus headers.
    """

    name = "bb"

    def predict_control(self, stats, entry):
        """The FetchStage control hook: (mispredicted, stop_group, penalty).

        Mirrors the predictor path's accounting (every control transfer
        counts as a fetched branch) but never mispredicts and never pays a
        redirect: the block header resolved the boundary ahead of fetch.
        """
        stats.branches += 1
        return False, entry.taken, 0


#: Registered front-end models by name (``CoreConfig.frontend_model``).
FRONTEND_MODELS = {
    "rename": RenameFrontEnd,
    "straight": StraightFrontEnd,
    "bb": BasicBlockFrontEnd,
}
