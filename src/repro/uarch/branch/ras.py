"""Return address stack: predicts return targets at fetch."""


class ReturnAddressStack:
    """Fixed-depth circular return-address stack (overwrites on overflow)."""

    def __init__(self, depth=16):
        self.depth = depth
        self.stack = []
        self.pushes = 0
        self.pops = 0

    def push(self, return_pc):
        self.pushes += 1
        self.stack.append(return_pc)
        if len(self.stack) > self.depth:
            self.stack.pop(0)

    def pop(self):
        """Predicted return target, or ``None`` when empty."""
        self.pops += 1
        if self.stack:
            return self.stack.pop()
        return None
