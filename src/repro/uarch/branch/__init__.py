"""Branch prediction: gshare, TAGE, BTB, and a return-address stack."""

from repro.uarch.branch.gshare import GsharePredictor
from repro.uarch.branch.tage import TagePredictor
from repro.uarch.branch.btb import BranchTargetBuffer
from repro.uarch.branch.ras import ReturnAddressStack

PREDICTORS = {"gshare": GsharePredictor, "tage": TagePredictor}


def make_predictor(name, **kwargs):
    """Instantiate a direction predictor by name ('gshare' or 'tage')."""
    try:
        return PREDICTORS[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown predictor {name!r}") from None


__all__ = [
    "GsharePredictor",
    "TagePredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "make_predictor",
    "PREDICTORS",
]
