"""TAGE direction predictor (8-component CBP-style, paper §VI-A Fig. 14).

A faithful small-scale TAGE: a bimodal base predictor plus seven tagged
components indexed by geometrically-growing global history lengths, with
provider/altpred selection, the useful-bit policy, and the canonical
allocate-on-mispredict rule.
"""


class _TaggedTable:
    __slots__ = ("entries", "index_mask", "tag_mask", "history_length",
                 "tags", "counters", "useful")

    def __init__(self, entries, tag_bits, history_length):
        self.entries = entries
        self.index_mask = entries - 1
        self.tag_mask = (1 << tag_bits) - 1
        self.history_length = history_length
        self.tags = [0] * entries
        self.counters = [0] * entries  # 3-bit signed, -4..3; >=0 means taken
        self.useful = [0] * entries  # 2-bit


class TagePredictor:
    """8-component TAGE (bimodal + 7 tagged tables)."""

    HISTORY_LENGTHS = (4, 8, 16, 32, 64, 128, 256)

    def __init__(self, bimodal_entries=8192, tagged_entries=1024, tag_bits=9):
        self.bimodal = [2] * bimodal_entries  # 2-bit counters
        self.bimodal_mask = bimodal_entries - 1
        self.tables = [
            _TaggedTable(tagged_entries, tag_bits, length)
            for length in self.HISTORY_LENGTHS
        ]
        self.max_history = max(self.HISTORY_LENGTHS)
        self.history = 0  # low bit = most recent outcome
        self.use_alt_on_new = 8  # 4-bit counter, >=8 prefers altpred
        self.predictions = 0
        self.correct = 0

    # -- hashing ----------------------------------------------------------------

    def _folded_history(self, length, width):
        """Fold ``length`` history bits into ``width`` bits by XOR."""
        history = self.history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << width) - 1)
            history >>= width
        return folded

    def _index(self, table, pc):
        width = table.index_mask.bit_length()
        return (
            (pc >> 2)
            ^ (pc >> 6)
            ^ self._folded_history(table.history_length, width)
        ) & table.index_mask

    def _tag(self, table, pc):
        width = table.tag_mask.bit_length()
        return (
            (pc >> 2)
            ^ self._folded_history(table.history_length, width)
            ^ (self._folded_history(table.history_length, width - 1) << 1)
        ) & table.tag_mask

    # -- prediction ----------------------------------------------------------------

    def _lookup(self, pc):
        """Returns (provider_idx|None, provider_entry_idx, alt prediction...)."""
        provider = None
        altpred_source = None
        for level in range(len(self.tables) - 1, -1, -1):
            table = self.tables[level]
            index = self._index(table, pc)
            if table.tags[index] == self._tag(table, pc):
                if provider is None:
                    provider = (level, index)
                elif altpred_source is None:
                    altpred_source = (level, index)
                    break
        return provider, altpred_source

    def _bimodal_predict(self, pc):
        return self.bimodal[(pc >> 2) & self.bimodal_mask] >= 2

    def predict(self, pc):
        provider, alt_source = self._lookup(pc)
        if provider is None:
            return self._bimodal_predict(pc)
        level, index = provider
        table = self.tables[level]
        counter = table.counters[index]
        weak = counter in (-1, 0)
        newly_allocated = weak and table.useful[index] == 0
        if newly_allocated and self.use_alt_on_new >= 8:
            if alt_source is not None:
                alt_level, alt_index = alt_source
                return self.tables[alt_level].counters[alt_index] >= 0
            return self._bimodal_predict(pc)
        return counter >= 0

    # -- update ----------------------------------------------------------------

    def update(self, pc, taken):
        prediction = self.predict(pc)
        provider, alt_source = self._lookup(pc)
        self.predictions += 1
        if prediction == taken:
            self.correct += 1

        if provider is not None:
            level, index = provider
            table = self.tables[level]
            counter = table.counters[index]
            provider_pred = counter >= 0
            if alt_source is not None:
                alt_level, alt_index = alt_source
                alt_pred = self.tables[alt_level].counters[alt_index] >= 0
            else:
                alt_pred = self._bimodal_predict(pc)
            # Useful bit: provider was right where altpred was wrong.
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    table.useful[index] = min(3, table.useful[index] + 1)
                else:
                    table.useful[index] = max(0, table.useful[index] - 1)
            # use_alt_on_new bookkeeping for weak new entries.
            if counter in (-1, 0) and table.useful[index] == 0:
                if provider_pred != alt_pred:
                    if alt_pred == taken:
                        self.use_alt_on_new = min(15, self.use_alt_on_new + 1)
                    else:
                        self.use_alt_on_new = max(0, self.use_alt_on_new - 1)
            table.counters[index] = _update_signed(counter, taken)
        else:
            index = (pc >> 2) & self.bimodal_mask
            self.bimodal[index] = _update_2bit(self.bimodal[index], taken)

        if prediction != taken:
            self._allocate(pc, taken, provider)

        self.history = ((self.history << 1) | (1 if taken else 0)) & (
            (1 << self.max_history) - 1
        )

    def _allocate(self, pc, taken, provider):
        """Allocate one entry in a longer-history table on a mispredict."""
        start = provider[0] + 1 if provider is not None else 0
        for level in range(start, len(self.tables)):
            table = self.tables[level]
            index = self._index(table, pc)
            if table.useful[index] == 0:
                table.tags[index] = self._tag(table, pc)
                table.counters[index] = 0 if taken else -1
                table.useful[index] = 0
                return
        # No victim found: age the candidates.
        for level in range(start, len(self.tables)):
            table = self.tables[level]
            index = self._index(table, pc)
            table.useful[index] = max(0, table.useful[index] - 1)

    @property
    def accuracy(self):
        return self.correct / self.predictions if self.predictions else 1.0


def _update_signed(counter, taken, low=-4, high=3):
    if taken:
        return min(high, counter + 1)
    return max(low, counter - 1)


def _update_2bit(counter, taken):
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)
