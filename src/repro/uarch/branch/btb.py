"""Branch target buffer: predicts taken-control-flow targets at fetch."""


class BranchTargetBuffer:
    """Direct-mapped tagged BTB."""

    def __init__(self, entries=4096):
        self.entries = entries
        self.index_mask = entries - 1
        self.tags = [None] * entries
        self.targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def _index(self, pc):
        return (pc >> 2) & self.index_mask

    def predict(self, pc):
        """Predicted target for ``pc``, or ``None`` on a BTB miss."""
        index = self._index(pc)
        if self.tags[index] == pc:
            self.hits += 1
            return self.targets[index]
        self.misses += 1
        return None

    def update(self, pc, target):
        index = self._index(pc)
        self.tags[index] = pc
        self.targets[index] = target
