"""gshare direction predictor (Table I: 10-bit global history, 32K entries)."""


class GsharePredictor:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    def __init__(self, history_bits=10, table_entries=32 * 1024):
        self.history_bits = history_bits
        self.table_entries = table_entries
        self.index_mask = table_entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self.table = [2] * table_entries  # weakly taken
        self.predictions = 0
        self.correct = 0

    def _index(self, pc):
        # Fold the history into the *upper* index bits: small-footprint code
        # has all branch PCs in a narrow range, and XORing the history into
        # the dense low bits would alias hot branches onto one another for
        # many history values (destructive interference).
        shift = max(0, self.index_mask.bit_length() - self.history_bits)
        return ((pc >> 2) ^ (self.history << shift)) & self.index_mask

    def predict(self, pc):
        """Predicted direction for the conditional branch at ``pc``."""
        return self.table[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train with the resolved outcome and shift the global history."""
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            self.table[index] = min(3, counter + 1)
        else:
            self.table[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask
        self.predictions += 1
        if (counter >= 2) == taken:
            self.correct += 1

    @property
    def accuracy(self):
        return self.correct / self.predictions if self.predictions else 1.0
