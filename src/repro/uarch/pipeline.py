"""Stage-decomposed timing engine with an event-driven, cycle-skipping clock.

This replaces the seed's monolithic ``OoOCore._run`` closure with explicit
pipeline-stage components that communicate through one typed
:class:`PipelineState` object:

* :class:`CompletionStage` — retires completion events, wakes issue-queue
  consumers, resolves awaited branches and charges recovery stalls;
* :class:`CommitStage` — in-order commit at commit width, guardrail commit
  hooks, LSQ deallocation, and pruning of per-seq bookkeeping;
* :class:`IssueStage` — wakeup-select with per-class ports, LSQ issue
  (forwarding / memory-dependence waits / violation replays);
* :class:`DispatchStage` — ROB/IQ/LSQ structural stalls, front-end model
  rename / operand determination, dependence capture;
* :class:`FetchStage` — I-cache access, branch/target/return prediction and
  misprediction handling.

Stage order within one cycle is exactly the seed's: completion, commit,
issue, dispatch, fetch — so all timing is bit-identical to the monolithic
engine (enforced by the golden snapshots in ``tests/test_golden_snapshots``).

The clock is owned by an :class:`~repro.uarch.scheduler.EventScheduler`.
Every stage implements ``can_tick()`` (could it make progress or count a
stall *this* cycle?) and ``next_wake()`` (the earliest future cycle at which
it could, when that cycle is not already in the scheduler's event heap).
When every stage is idle the engine jumps the clock to the next scheduled
event instead of stepping cycle-by-cycle, which is where the wall-clock
speedup on stall-heavy traces comes from.  Guardrailed runs never jump, so
per-cycle hooks observe every cycle.
"""

import heapq

from repro.common.errors import SimulationError
from repro.uarch.frontend_models import RenameFrontEnd, StraightFrontEnd
from repro.uarch.lsq import LoadStoreQueue

_PORT_CLASS = {
    "alu": "alu",
    "mul": "mul",
    "div": "div",
    "branch": "bc",
    "jump": "bc",
    "load": "mem",
    "store": "mem",
    "sys": "alu",
    "nop": "alu",
}


class _IQEntry:
    """An issue-queue entry; the ready heap selects oldest-first."""

    __slots__ = ("seq", "entry", "remaining", "min_issue")

    def __init__(self, seq, entry):
        self.seq = seq
        self.entry = entry
        self.remaining = 0
        self.min_issue = 0

    def __lt__(self, other):
        return self.seq < other.seq


class _RobEntry:
    __slots__ = ("seq", "entry", "done", "fetch_cycle")

    def __init__(self, seq, entry, fetch_cycle):
        self.seq = seq
        self.entry = entry
        self.done = False
        self.fetch_cycle = fetch_cycle


class PipelineState:
    """All mutable pipeline state crossing stage boundaries, in one place.

    The seed engine held these as closure-local variables; making them
    attributes of one shared object is what lets stages be separate
    components and lets guardrail checkers observe stage-boundary state
    without reaching into closures.
    """

    __slots__ = (
        "trace",            # the dynamic instruction trace (list of TraceEntry)
        "n",                # len(trace)
        "committed",        # instructions retired so far
        "fetch_idx",        # next trace index to fetch
        "fetch_resume",     # earliest cycle fetch may proceed
        "awaiting_branch",  # seq of unresolved mispredicted branch, or None
        "rename_blocked_until",  # dispatch blocked during recovery until here
        "pipe",             # front-end pipe: (seq, dispatch_ready_cycle, fetch_cycle)
        "rob",              # deque of _RobEntry, program order
        "rob_by_seq",       # seq -> _RobEntry for in-flight instructions
        "iq_count",         # issue-queue occupancy
        "events",           # cycle -> [seq, ...] completing that cycle
        "ready_buckets",    # cycle -> [_IQEntry, ...] becoming ready
        "ready_heap",       # heap of ready _IQEntry (oldest-first select)
        "waiting",          # producer seq -> [_IQEntry, ...] blocked on it
        "reg_ready",        # in-flight producer seq -> result-available cycle
        "iq_entries_by_seq",  # in-flight seq -> _IQEntry (pruned at commit)
        "last_fetch_line",  # last I-cache line touched by fetch
        "line_shift",       # log2(cache line bytes)
    )

    def __init__(self, trace, line_shift):
        from collections import deque

        self.trace = trace
        self.n = len(trace)
        self.committed = 0
        self.fetch_idx = 0
        self.fetch_resume = 0
        self.awaiting_branch = None
        self.rename_blocked_until = 0
        self.pipe = deque()
        self.rob = deque()
        self.rob_by_seq = {}
        self.iq_count = 0
        self.events = {}
        self.ready_buckets = {}
        self.ready_heap = []
        self.waiting = {}
        self.reg_ready = {}
        self.iq_entries_by_seq = {}
        self.last_fetch_line = -1
        self.line_shift = line_shift

    def occupancy(self, lsq, fetched=None):
        """Per-structure occupancy snapshot (error payloads, guard views)."""
        return {
            "rob": len(self.rob),
            "iq": self.iq_count,
            "lsq_loads": len(lsq.loads),
            "lsq_stores": len(lsq.stores),
            "pipe": len(self.pipe),
            "fetched": self.fetch_idx if fetched is None else fetched,
            "committed": self.committed,
        }


class PipelineStage:
    """Base class: one pipeline stage ticking against the shared state.

    ``tick()`` performs this cycle's work.  ``can_tick()`` answers whether
    the stage could make progress — or count a stall — at the scheduler's
    current cycle; it must err on the side of ``True``, since a wrongly-idle
    verdict would let the clock jump over an observable cycle.
    ``next_wake()`` names the earliest future cycle the stage could act at
    when that cycle is *not* carried by the scheduler's event heap (front-end
    pipe readiness, fetch resumption, rename unblocking).
    """

    name = "stage"
    STAT_FIELDS = ()

    def __init__(self, core, state, sched, stats, guard=None, obs=None):
        self.core = core
        self.cfg = core.config
        self.state = state
        self.sched = sched
        self.stats = stats
        self.guard = guard
        # Observer bus (repro.obs) or None; stages publish lifecycle events
        # behind the same ``is not None`` pattern the guard hooks use, so an
        # unobserved run pays nothing beyond the existing-style checks.
        self.obs = obs

    def tick(self):
        raise NotImplementedError

    def can_tick(self):
        return True

    def next_wake(self):
        return None


class CompletionStage(PipelineStage):
    """Retire completion events; wake consumers; resolve awaited branches."""

    name = "completion"
    STAT_FIELDS = ("recovery_stall_cycles", "iq_wakeups")

    def tick(self):
        state = self.state
        cycle = self.sched.cycle
        seqs = state.events.pop(cycle, None)
        if not seqs:
            return
        stats = self.stats
        waiting = state.waiting
        ready_buckets = state.ready_buckets
        rob_by_seq = state.rob_by_seq
        schedule = self.sched.schedule
        obs = self.obs
        for seq in seqs:
            rob_entry = rob_by_seq.get(seq)
            if rob_entry is not None:
                rob_entry.done = True
            if obs is not None:
                obs.on_complete(seq, cycle)
            for consumer in waiting.pop(seq, ()):
                consumer.remaining -= 1
                if consumer.min_issue < cycle:
                    consumer.min_issue = cycle
                if consumer.remaining == 0:
                    bucket_at = consumer.min_issue
                    if bucket_at <= cycle:
                        bucket_at = cycle + 1
                    ready_buckets.setdefault(bucket_at, []).append(consumer)
                    schedule(bucket_at)
                stats.iq_wakeups += 1
            if seq == state.awaiting_branch:
                state.awaiting_branch = None
                state.fetch_resume = cycle + 1
                rob_free = self.cfg.rob_entries - len(state.rob)
                blocked = self.core.frontend.recovery_block_until(
                    cycle, rob_by_seq[seq].fetch_cycle, rob_free
                )
                if blocked > state.rename_blocked_until:
                    state.rename_blocked_until = blocked
                stats.recovery_stall_cycles += max(0, blocked - cycle)
                if obs is not None:
                    obs.on_recovery(seq, rob_by_seq[seq].entry, cycle, blocked)

    def can_tick(self):
        return self.sched.cycle in self.state.events


class CommitStage(PipelineStage):
    """In-order commit at commit width, plus per-seq bookkeeping pruning."""

    name = "commit"

    def tick(self):
        state = self.state
        rob = state.rob
        if not rob or not rob[0].done:
            return
        cycle = self.sched.cycle
        guard = self.guard
        lsq = self.core.lsq
        frontend = self.core.frontend
        rob_by_seq = state.rob_by_seq
        reg_ready = state.reg_ready
        iq_entries_by_seq = state.iq_entries_by_seq
        slots = self.cfg.commit_width
        obs = self.obs
        while rob and slots > 0:
            head = rob[0]
            if not head.done:
                break
            if guard is not None:
                guard.on_commit(head, cycle)
            if obs is not None:
                obs.on_commit(head.seq, head.entry, cycle)
            rob.popleft()
            seq = head.seq
            del rob_by_seq[seq]
            frontend.on_commit(head.entry)
            if head.entry.op_class == "store":
                lsq.commit_store(seq)
            elif head.entry.op_class == "load":
                lsq.commit_load(seq)
            # Retired instructions need no further wakeup bookkeeping: a
            # consumer dispatched after this point finds the seq absent from
            # both maps and treats the operand as ready, which is exactly
            # what the result-available cycle would have said (completion
            # always precedes commit).  Without this pruning both dicts grew
            # O(trace) on long runs.
            reg_ready.pop(seq, None)
            iq_entries_by_seq.pop(seq, None)
            state.committed += 1
            slots -= 1

    def can_tick(self):
        rob = self.state.rob
        return bool(rob) and rob[0].done


class IssueStage(PipelineStage):
    """Wakeup-select issue with per-class ports and LSQ execution."""

    name = "issue"
    STAT_FIELDS = ("regfile_reads", "regfile_writes", "alu_ops", "mul_ops",
                   "div_ops", "mem_violations")

    def tick(self):
        state = self.state
        cycle = self.sched.cycle
        ready_heap = state.ready_heap
        bucket = state.ready_buckets.pop(cycle, None)
        if bucket:
            for iq_entry in bucket:
                heapq.heappush(ready_heap, iq_entry)
        if not ready_heap:
            return
        cfg = self.cfg
        stats = self.stats
        reg_ready = state.reg_ready
        events = state.events
        schedule = self.sched.schedule
        ports = dict(cfg.units)
        obs = self.obs
        issued = 0
        deferred = []
        while ready_heap and issued < cfg.issue_width:
            iq_entry = heapq.heappop(ready_heap)
            if iq_entry.min_issue > cycle:
                deferred.append(iq_entry)
                continue
            port = _PORT_CLASS[iq_entry.entry.op_class]
            if ports.get(port, 0) <= 0:
                deferred.append(iq_entry)
                continue
            latency = self._issue_latency(iq_entry, cycle)
            if latency is None:
                continue  # stays in the IQ, now waiting on a store
            ports[port] -= 1
            issued += 1
            state.iq_count -= 1
            seq = iq_entry.seq
            done_at = cycle + latency
            reg_ready[seq] = done_at
            events.setdefault(done_at, []).append(seq)
            schedule(done_at)
            if obs is not None:
                obs.on_issue(seq, iq_entry.entry, cycle, done_at)
            stats.regfile_reads += len(iq_entry.entry.srcs)
            if iq_entry.entry.dest is not None or cfg.is_straight:
                stats.regfile_writes += 1
            cls = iq_entry.entry.op_class
            if cls in ("alu", "sys"):
                stats.alu_ops += 1
            elif cls == "mul":
                stats.mul_ops += 1
            elif cls == "div":
                stats.div_ops += 1
        for iq_entry in deferred:
            heapq.heappush(ready_heap, iq_entry)

    def _issue_latency(self, iq_entry, cycle):
        """Latency for an issuing instruction; ``None`` defers the issue."""
        state = self.state
        entry = iq_entry.entry
        cls = entry.op_class
        lsq = self.core.lsq
        latencies = self.cfg.latencies
        if cls == "load":
            kind, payload = lsq.try_issue_load(
                iq_entry.seq, cycle, self.core.mdp, self.core.hierarchy,
                self.stats
            )
            if kind == "wait":
                # Forbidden to speculate past this older store; sleep until
                # it executes and recheck.
                state.waiting.setdefault(payload, []).append(iq_entry)
                iq_entry.remaining += 1
                return None
            return payload
        if cls == "store":
            violations = lsq.store_executed(
                iq_entry.seq, entry.mem_addr, cycle + latencies["store"]
            )
            if violations:
                self.stats.mem_violations += len(violations)
                obs = self.obs
                for load_seq in violations:
                    self.core.mdp.train_conflict(lsq.load_pc(load_seq))
                    if obs is not None:
                        obs.on_squash(load_seq, cycle, "mem-order")
                # Replay of the violating loads and their dependents,
                # modeled as a short pipeline penalty.
                resume = cycle + self.cfg.mdp_replay_penalty
                if resume > state.fetch_resume:
                    state.fetch_resume = resume
            return latencies["store"]
        return latencies.get(cls, 1)

    def can_tick(self):
        state = self.state
        return bool(state.ready_heap) or self.sched.cycle in state.ready_buckets


class DispatchStage(PipelineStage):
    """Structural stalls, front-end rename/operand-determination, wakeup."""

    name = "dispatch"
    STAT_FIELDS = ("rob_full_stalls", "iq_full_stalls", "lsq_full_stalls",
                   "rob_writes", "loads", "stores")

    def tick(self):
        state = self.state
        cycle = self.sched.cycle
        if cycle < state.rename_blocked_until:
            return
        pipe = state.pipe
        if not pipe or pipe[0][1] > cycle:
            return
        cfg = self.cfg
        stats = self.stats
        guard = self.guard
        trace = state.trace
        rob = state.rob
        rob_by_seq = state.rob_by_seq
        lsq = self.core.lsq
        frontend = self.core.frontend
        reg_ready = state.reg_ready
        waiting = state.waiting
        ready_buckets = state.ready_buckets
        schedule = self.sched.schedule
        obs = self.obs
        slots = cfg.fetch_width
        group_state = {"spadds": 0}
        while pipe and slots > 0:
            seq, ready_at, fetch_cycle = pipe[0]
            if ready_at > cycle:
                break
            entry = trace[seq]
            if len(rob) >= cfg.rob_entries:
                stats.rob_full_stalls += 1
                break
            if entry.op_class != "nop" and state.iq_count >= cfg.iq_entries:
                stats.iq_full_stalls += 1
                break
            if entry.op_class == "load" and not lsq.can_add_load():
                stats.lsq_full_stalls += 1
                break
            if entry.op_class == "store" and not lsq.can_add_store():
                stats.lsq_full_stalls += 1
                break
            if not frontend.can_dispatch(entry, group_state):
                break
            pipe.popleft()
            slots -= 1
            if entry.is_spadd:
                group_state["spadds"] = group_state.get("spadds", 0) + 1
            tags = frontend.rename(entry, seq)
            rob_entry = _RobEntry(seq, entry, fetch_cycle)
            rob.append(rob_entry)
            rob_by_seq[seq] = rob_entry
            stats.rob_writes += 1
            if guard is not None:
                guard.on_dispatch(seq, entry, cycle)
            if obs is not None:
                obs.on_dispatch(seq, entry, cycle, tags)
            if entry.op_class == "nop":
                rob_entry.done = True
                continue
            if entry.op_class == "load":
                lsq.add_load(seq, entry.mem_addr, entry.pc)
                stats.loads += 1
            elif entry.op_class == "store":
                lsq.add_store(seq)
                stats.stores += 1
            iq_entry = _IQEntry(seq, entry)
            iq_entry.min_issue = cycle + 1
            for tag in tags:
                ready_at_tag = reg_ready.get(tag)
                if ready_at_tag is None:
                    if tag in rob_by_seq:
                        waiting.setdefault(tag, []).append(iq_entry)
                        iq_entry.remaining += 1
                    # else: producer long retired; operand ready
                elif ready_at_tag > iq_entry.min_issue:
                    iq_entry.min_issue = ready_at_tag
            state.iq_count += 1
            state.iq_entries_by_seq[seq] = iq_entry
            if iq_entry.remaining == 0:
                ready_buckets.setdefault(iq_entry.min_issue, []).append(iq_entry)
                schedule(iq_entry.min_issue)

    def can_tick(self):
        state = self.state
        cycle = self.sched.cycle
        if cycle < state.rename_blocked_until:
            return False
        pipe = state.pipe
        return bool(pipe) and pipe[0][1] <= cycle

    def next_wake(self):
        state = self.state
        if not state.pipe:
            return None
        ready_at = state.pipe[0][1]
        blocked_until = state.rename_blocked_until
        return ready_at if ready_at > blocked_until else blocked_until


class FetchStage(PipelineStage):
    """Fetch with I-cache stalls and branch/target/return prediction."""

    name = "fetch"
    #: fetch_stall_cycles is a legacy always-zero counter kept for output
    #: compatibility with the seed engine's as_dict() surface.
    STAT_FIELDS = ("fetch_stall_cycles", "icache_stall_cycles", "branches",
                   "branch_mispredicts", "target_mispredicts",
                   "return_mispredicts", "btb_redirects")

    def tick(self):
        state = self.state
        cycle = self.sched.cycle
        if state.awaiting_branch is not None or cycle < state.fetch_resume:
            return
        n = state.n
        fetch_idx = state.fetch_idx
        if fetch_idx >= n:
            return
        cfg = self.cfg
        trace = state.trace
        hierarchy = self.core.hierarchy
        pipe = state.pipe
        line_shift = state.line_shift
        obs = self.obs
        dispatch_at = cycle + cfg.frontend_depth
        fetched = 0
        while fetched < cfg.fetch_width and fetch_idx < n:
            entry = trace[fetch_idx]
            line = entry.pc >> line_shift
            if line != state.last_fetch_line:
                latency = hierarchy.access_instr(entry.pc)
                state.last_fetch_line = line
                if latency > hierarchy.l1i.hit_latency:
                    extra = latency - hierarchy.l1i.hit_latency
                    state.fetch_resume = cycle + extra
                    self.stats.icache_stall_cycles += extra
                    break
            pipe.append((fetch_idx, dispatch_at, cycle))
            seq = fetch_idx
            fetch_idx += 1
            fetched += 1
            if obs is not None:
                obs.on_fetch(seq, entry, cycle)
            if entry.is_control:
                mispredicted, stop_group, redirect = self._predict_control(
                    entry, seq
                )
                if mispredicted:
                    state.awaiting_branch = seq
                    if obs is not None:
                        obs.on_mispredict(seq, entry, cycle)
                    break
                if redirect:
                    state.fetch_resume = cycle + 1 + redirect
                    break
                if stop_group:
                    break
        state.fetch_idx = fetch_idx

    def _predict_control(self, entry, seq):
        """Returns (mispredicted, stop_fetch_group, redirect_penalty)."""
        stats = self.stats
        core = self.core
        # Front-end models may resolve control flow without prediction (the
        # bb block-header scheme); models without the hook take the classic
        # predictor path below unchanged.
        resolve = getattr(core.frontend, "predict_control", None)
        if resolve is not None:
            return resolve(stats, entry)
        stats.branches += 1
        actual_taken = entry.taken
        actual_target = entry.next_pc if actual_taken else None
        if entry.op_class == "branch":
            predicted_taken = core.predictor.predict(entry.pc)
            core.predictor.update(entry.pc, actual_taken)
        else:
            predicted_taken = True
        predicted_target = None
        if predicted_taken:
            if entry.is_return:
                predicted_target = core.ras.pop()
            else:
                predicted_target = core.btb.predict(entry.pc)
        if entry.is_call:
            core.ras.push(entry.pc + 4)
        if actual_taken and not entry.is_return:
            core.btb.update(entry.pc, entry.next_pc)
        if self.cfg.ideal_recovery:
            return False, actual_taken, 0
        if predicted_taken != actual_taken:
            stats.branch_mispredicts += 1
            return True, True, 0
        if actual_taken and predicted_target != actual_target:
            if entry.is_return:
                stats.return_mispredicts += 1
                stats.branch_mispredicts += 1
                return True, True, 0
            # Direct jump/branch with a BTB miss: the target is computed at
            # decode; short front-end redirect, not a full recovery.
            stats.btb_redirects += 1
            stats.target_mispredicts += 1
            return False, True, self.cfg.btb_miss_penalty
        return False, actual_taken, 0

    def can_tick(self):
        state = self.state
        return (state.awaiting_branch is None
                and self.sched.cycle >= state.fetch_resume
                and state.fetch_idx < state.n)

    def next_wake(self):
        state = self.state
        if state.awaiting_branch is not None or state.fetch_idx >= state.n:
            return None  # resumption rides on a completion event
        return state.fetch_resume


class TimingEngine:
    """Wires the five stages to one state object and one event scheduler.

    One engine instance drives one ``run``; the owning
    :class:`~repro.uarch.core.OoOCore` holds the cross-run structures
    (predictor, caches, LSQ, front-end model) that stages reach through
    ``core``.  ``idle_skip=False`` forces seed-style cycle-by-cycle stepping
    (used by benchmarks to measure the skip win, and implied whenever a
    guardrail suite is attached).
    """

    STAT_FIELDS = ("cycles", "instructions")

    def __init__(self, core, trace, guardrails=None, idle_skip=True,
                 observer=None):
        self.core = core
        self.guard = guardrails
        # Normalize an empty bus to None: the stages then skip even the
        # ``is not None`` publish checks' bodies, and the run is exactly the
        # unobserved hot path.
        obs = observer if (observer is not None and observer.active) else None
        self.obs = obs
        line_shift = (core.hierarchy.line_bytes - 1).bit_length()
        self.state = PipelineState(trace, line_shift)

        from repro.uarch.scheduler import EventScheduler

        self.sched = EventScheduler()
        # Guardrailed runs step every cycle so per-cycle hooks (watchdog,
        # fault schedules, periodic deep scans) observe the exact cadence
        # the seed engine gave them.  Cycle-granular observers (the stall
        # accountant) need the same: on_cycle_end must fire once per
        # simulated cycle for slot accounting to be conservative.
        # Instruction-granular sinks keep skipping — by the idle-skip
        # invariant no lifecycle event can fire on a jumped-over cycle.
        self.idle_skip = (idle_skip and guardrails is None
                          and (obs is None or not obs.cycle_granular))
        args = (core, self.state, self.sched, core.stats)
        self.completion = CompletionStage(*args, obs=obs)
        self.commit = CommitStage(*args, guard=guardrails, obs=obs)
        self.issue = IssueStage(*args, obs=obs)
        self.dispatch = DispatchStage(*args, guard=guardrails, obs=obs)
        self.fetch = FetchStage(*args, obs=obs)
        self.stages = (self.completion, self.commit, self.issue,
                       self.dispatch, self.fetch)

    def run(self, max_cycles=200_000_000):
        state = self.state
        stats = self.core.stats
        n = state.n
        if n == 0:
            return stats
        sched = self.sched
        guard = self.guard
        obs = self.obs
        if guard is not None:
            guard.begin_run(core=self.core, state=state, sched=sched)
        if obs is not None:
            obs.begin_run(self.core, state, sched)

        completion, commit, issue, dispatch, fetch = self.stages
        idle_skip = self.idle_skip
        while state.committed < n:
            # The cheap pre-filter first: a non-empty ready heap or front-end
            # pipe almost always means some stage can act, and reading two
            # attributes costs far less per executed cycle than five
            # can_tick() calls.  Only quiet windows (both empty) pay for the
            # full stage-by-stage idleness check.
            if (idle_skip
                    and not state.ready_heap
                    and not state.pipe
                    and not (
                        completion.can_tick()
                        or commit.can_tick()
                        or issue.can_tick()
                        or dispatch.can_tick()
                        or fetch.can_tick()
                    )):
                self._skip_to_next_event(max_cycles)
                continue
            completion.tick()
            commit.tick()
            issue.tick()
            dispatch.tick()
            fetch.tick()
            # Observer cycle-end precedes the guard hook so the attribution
            # conservation checker sees this cycle's fresh charges.
            if obs is not None:
                obs.on_cycle_end(sched.cycle)
            if guard is not None:
                guard.on_cycle()
            sched.advance()
            if sched.cycle > max_cycles:
                raise self._exceeded(max_cycles)

        stats.cycles = sched.cycle
        stats.instructions = n
        stats.cache_stats = self.core.hierarchy.stats()
        stats.predictor_accuracy = self.core.predictor.accuracy
        # Sinks flush before the guard's end-of-run pass so final-state
        # checkers (attribution conservation) see the exported buckets.
        if obs is not None:
            obs.end_run(stats)
        if guard is not None:
            guard.end_run(stats)
        return stats

    # -- cycle skipping ------------------------------------------------------

    def _skip_to_next_event(self, max_cycles):
        """Jump the clock to the next cycle at which any stage can act.

        Candidates are the scheduler's event heap (completions and ready
        buckets) plus the stage-computed wakes that are not heap-carried:
        front-end pipe readiness / rename unblocking (dispatch) and fetch
        resumption (fetch).  Idle-skip invariant: every candidate is
        strictly in the future, and no statistic can change on the cycles
        jumped over.
        """
        sched = self.sched
        target = sched.next_event()
        for wake in (self.dispatch.next_wake(), self.fetch.next_wake()):
            if wake is not None and (target is None or wake < target):
                target = wake
        if target is None or target > max_cycles:
            # The seed engine would have idled cycle-by-cycle up to the
            # budget and raised there; reproduce that exactly.
            sched.jump(max_cycles + 1)
            raise self._exceeded(max_cycles)
        sched.jump(target)

    def _exceeded(self, max_cycles):
        state = self.state
        occupancy = state.occupancy(self.core.lsq)
        return SimulationError(
            f"{self.cfg_name}: exceeded {max_cycles} cycles "
            f"({state.committed}/{state.n} committed)",
            cycle=self.sched.cycle,
            occupancy=occupancy,
        )

    @property
    def cfg_name(self):
        return self.core.config.name


def contribute_default_stats(registry):
    """Assemble the canonical counter set from every pipeline component."""
    from repro.obs.attribution import StallAttributionAccountant

    registry.contribute("engine", TimingEngine.STAT_FIELDS)
    registry.contribute("fetch", FetchStage.STAT_FIELDS)
    registry.contribute("completion", CompletionStage.STAT_FIELDS)
    registry.contribute("dispatch", DispatchStage.STAT_FIELDS)
    registry.contribute("issue", IssueStage.STAT_FIELDS)
    registry.contribute("frontend.rename", RenameFrontEnd.STAT_FIELDS)
    registry.contribute("frontend.straight", StraightFrontEnd.STAT_FIELDS)
    registry.contribute("lsq", LoadStoreQueue.STAT_FIELDS)
    registry.contribute("obs.attribution",
                        StallAttributionAccountant.STAT_FIELDS)
