"""The event scheduler: one owner for the clock and every wake-up cycle.

The timing engine registers every future cycle at which *anything* can
happen — completion events, issue-queue ready buckets, fetch resumption,
rename unblocking — with one :class:`EventScheduler`.  While any stage can
make progress the clock steps cycle-by-cycle exactly like the monolithic
seed engine.  When every stage reports idle (see
:meth:`repro.uarch.pipeline.TimingEngine.run`), the engine asks the
scheduler for the next scheduled cycle and *jumps* the clock there
directly, skipping the Python-interpreter iterations the seed engine burned
on cycles where provably nothing could change.

The idle-skip invariant: the clock may only jump over cycles in which no
stage could have made progress and no statistic could have been
incremented.  Guardrailed runs disable jumping entirely so per-cycle hooks
(watchdog, fault-injection schedules, periodic deep scans) observe every
cycle, exactly as the seed engine did.

Scheduled cycles are deduplicated: the seed engine pushed the same cycle
onto its ``event_cycles`` heap once per event source (a completion and a
ready bucket landing on the same cycle produced two heap entries), which
inflated the heap on wakeup-heavy traces.  Here a shadow set keeps each
pending cycle in the heap exactly once.
"""

from heapq import heappop, heappush


class EventScheduler:
    """Deduplicated min-heap of wake cycles plus the simulation clock."""

    __slots__ = ("cycle", "executed_cycles", "skipped_cycles", "_heap",
                 "_scheduled")

    def __init__(self, start=0):
        self.cycle = start
        #: cycles in which the stages actually ticked
        self.executed_cycles = 0
        #: cycles the clock jumped over because every stage was idle
        self.skipped_cycles = 0
        self._heap = []
        self._scheduled = set()

    # -- event registration --------------------------------------------------

    def schedule(self, at):
        """Register ``at`` as a cycle where some stage may make progress."""
        scheduled = self._scheduled
        if at not in scheduled:
            scheduled.add(at)
            heappush(self._heap, at)

    def pending(self):
        """Number of distinct future cycles currently scheduled."""
        return len(self._scheduled)

    def next_event(self):
        """Earliest scheduled cycle strictly after the clock, or ``None``.

        Entries at or before the current cycle are stale — their events were
        consumed when that cycle executed — and are dropped on the way.
        """
        heap = self._heap
        cycle = self.cycle
        while heap and heap[0] <= cycle:
            self._scheduled.discard(heappop(heap))
        return heap[0] if heap else None

    # -- clock ---------------------------------------------------------------

    def advance(self):
        """Step the clock by one executed cycle."""
        self.cycle += 1
        self.executed_cycles += 1

    def jump(self, target):
        """Move the clock directly to ``target`` without executing cycles."""
        delta = target - self.cycle
        if delta <= 0:
            raise ValueError(
                f"scheduler jump must move forward: {self.cycle} -> {target}"
            )
        self.skipped_cycles += delta
        self.cycle = target

    def __repr__(self):
        return (f"EventScheduler(cycle={self.cycle}, "
                f"pending={self.pending()}, "
                f"executed={self.executed_cycles}, "
                f"skipped={self.skipped_cycles})")
