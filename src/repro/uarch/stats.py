"""Simulation statistics: a registry of counters owned by pipeline components.

The seed engine hard-coded every counter name in one ad-hoc ``_FIELDS``
tuple inside the core.  Here each pipeline component (stage class,
front-end model, load-store queue) declares the counters it increments in a
``STAT_FIELDS`` class attribute, and a :class:`StatsRegistry` assembles the
full set — so a new stage or front-end model contributes its counters by
declaration instead of by editing the core, and the registry can answer
"which component owns this counter" for reporting and doc generation.

:class:`SimStats` keeps the seed's exact public surface (one integer
attribute per counter, ``ipc``, ``as_dict()``, ``cache_stats``,
``predictor_accuracy``) so downstream consumers — the power model, the
experiment harness, the CLI JSON output — are unaffected.
"""


class StatsRegistry:
    """Ordered registry mapping counter fields to their owning component."""

    def __init__(self):
        self._fields = []
        self._owners = {}

    def contribute(self, owner, fields):
        """Register ``fields`` (an ordered iterable) as owned by ``owner``."""
        for field in fields:
            existing = self._owners.get(field)
            if existing is not None:
                raise ValueError(
                    f"stat field {field!r} already contributed by {existing!r}"
                )
            self._owners[field] = owner
            self._fields.append(field)

    @property
    def fields(self):
        return tuple(self._fields)

    def owner_of(self, field):
        return self._owners.get(field)

    def by_owner(self):
        """``{owner: [field, ...]}`` in contribution order."""
        grouped = {}
        for field in self._fields:
            grouped.setdefault(self._owners[field], []).append(field)
        return grouped

    def __contains__(self, field):
        return field in self._owners

    def __len__(self):
        return len(self._fields)


def _deep_sorted(value):
    """Recursively key-sort nested dicts (deterministic JSON export)."""
    if isinstance(value, dict):
        return {key: _deep_sorted(value[key]) for key in sorted(value)}
    return value


_default_registry = None


def default_registry():
    """The canonical registry, assembled from every pipeline component."""
    global _default_registry
    if _default_registry is None:
        registry = StatsRegistry()
        # Imported lazily: pipeline pulls in the stage classes and the
        # front-end/LSQ components whose STAT_FIELDS declarations make up
        # the canonical counter set.
        from repro.uarch.pipeline import contribute_default_stats

        contribute_default_stats(registry)
        _default_registry = registry
    return _default_registry


class SimStats:
    """Counters accumulated during one timing run."""

    def __init__(self, registry=None):
        if registry is None:
            registry = default_registry()
        self._registry = registry
        for field in registry.fields:
            setattr(self, field, 0)
        self.cache_stats = {}
        self.predictor_accuracy = 1.0
        #: Sampled-simulation metadata (:mod:`repro.harness.sampling`):
        #: window schedule, coverage, per-bucket error bars.  ``None`` for
        #: full (non-sampled) runs, and omitted from :meth:`as_dict` so
        #: existing payloads stay byte-identical.
        self.sampling = None

    @property
    def fields(self):
        return self._registry.fields

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self):
        """Export every counter, in deterministic order.

        Registry fields come first, in contribution (declaration) order;
        the nested cache tables are deep-sorted by key.  Two runs with equal
        counters therefore serialize to byte-identical JSON, so trace and
        attribution payload diffs are stable across runs and processes.
        """
        data = {field: getattr(self, field) for field in self._registry.fields}
        data["ipc"] = self.ipc
        data["cache"] = _deep_sorted(self.cache_stats)
        data["predictor_accuracy"] = self.predictor_accuracy
        if self.sampling is not None:
            data["sampling"] = _deep_sorted(self.sampling)
        return data

    @classmethod
    def from_dict(cls, data, registry=None):
        """Rebuild a stats object from :meth:`as_dict` output.

        The persistent result cache round-trips runs through this; every
        registry counter, the cache hit/miss tables and the predictor
        accuracy are integers/floats, so the reconstruction is exact and
        cache-served results stay bit-identical to fresh ones.
        """
        stats = cls(registry)
        for field in stats._registry.fields:
            if field in data:
                setattr(stats, field, data[field])
        stats.cache_stats = dict(data.get("cache", {}))
        stats.predictor_accuracy = data.get("predictor_accuracy", 1.0)
        stats.sampling = data.get("sampling")
        return stats

    def __repr__(self):
        return (
            f"SimStats(cycles={self.cycles}, instrs={self.instructions}, "
            f"ipc={self.ipc:.3f}, mispredicts={self.branch_mispredicts})"
        )
