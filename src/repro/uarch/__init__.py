"""Cycle-level out-of-order timing model shared by both architectures.

The paper's two in-house simulators "share common codes for the most part"
(§V-A) because STRAIGHT's back end is a conventional OoO back end; the
differences live in the front end (rename vs. RP-based operand
determination) and in recovery (ROB walk vs. single ROB-entry read).  This
package mirrors that: one timing engine (:mod:`.core`), pluggable front-end
models (:mod:`.frontend_models`), and shared branch predictors, caches, and
load-store queue.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore, SimStats
from repro.uarch.frontend_models import RenameFrontEnd, StraightFrontEnd
from repro.uarch.ilp import dataflow_limit, window_limited_ipc, IlpReport

__all__ = [
    "CoreConfig",
    "OoOCore",
    "SimStats",
    "RenameFrontEnd",
    "StraightFrontEnd",
    "dataflow_limit",
    "window_limited_ipc",
    "IlpReport",
]
