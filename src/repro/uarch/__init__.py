"""Cycle-level out-of-order timing model shared by both architectures.

The paper's two in-house simulators "share common codes for the most part"
(§V-A) because STRAIGHT's back end is a conventional OoO back end; the
differences live in the front end (rename vs. RP-based operand
determination) and in recovery (ROB walk vs. single ROB-entry read).  This
package mirrors that: one timing engine — per-core structures in
:mod:`.core`, stage components and the event-driven clock in
:mod:`.pipeline` / :mod:`.scheduler`, counters in :mod:`.stats` — pluggable
front-end models (:mod:`.frontend_models`), and shared branch predictors,
caches, and load-store queue.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore, SimStats
from repro.uarch.frontend_models import RenameFrontEnd, StraightFrontEnd
from repro.uarch.ilp import dataflow_limit, window_limited_ipc, IlpReport
from repro.uarch.pipeline import (
    CommitStage,
    CompletionStage,
    DispatchStage,
    FetchStage,
    IssueStage,
    PipelineStage,
    PipelineState,
    TimingEngine,
)
from repro.uarch.scheduler import EventScheduler
from repro.uarch.stats import StatsRegistry, default_registry

__all__ = [
    "CoreConfig",
    "OoOCore",
    "SimStats",
    "StatsRegistry",
    "default_registry",
    "RenameFrontEnd",
    "StraightFrontEnd",
    "dataflow_limit",
    "window_limited_ipc",
    "IlpReport",
    "EventScheduler",
    "PipelineState",
    "PipelineStage",
    "TimingEngine",
    "FetchStage",
    "DispatchStage",
    "IssueStage",
    "CommitStage",
    "CompletionStage",
]
