"""The shared out-of-order timing core (trace-driven, component-based).

Models, per cycle: fetch with branch/target/return prediction and I-cache
stalls; a fixed-depth front-end pipe; dispatch with ROB/IQ/LSQ/rename
structural stalls; wakeup-select issue with per-class ports; load-store
queue with store-to-load forwarding, memory-dependence prediction and
violation replays; data-cache hierarchy with a stream prefetcher; in-order
commit.  Misprediction recovery timing is delegated to the front-end model
(the architectural difference under study).

Trace-driven means wrong-path instructions are not executed: fetch stalls at
a mispredicted branch until it resolves, then pays the front-end refill plus
the model-specific recovery cost (SS: RMT restore by ROB walking; STRAIGHT:
one ROB-entry read).  Wrong-path cache pollution is not modeled (see
DESIGN.md).

This module owns the per-core structures that persist across runs (caches,
predictors, LSQ, front-end model) and the public ``run`` entry point.  The
cycle-by-cycle machinery lives in :mod:`repro.uarch.pipeline` as explicit
stage components driven by an event scheduler (:mod:`repro.uarch.scheduler`)
that skips provably-idle cycles; :class:`~repro.uarch.stats.SimStats` and
its :class:`~repro.uarch.stats.StatsRegistry` are re-exported here for
backwards compatibility.
"""

from repro.uarch.branch import make_predictor, BranchTargetBuffer, ReturnAddressStack
from repro.uarch.frontend_models import FRONTEND_MODELS
from repro.uarch.lsq import LoadStoreQueue, MemDependencePredictor
from repro.uarch.stats import SimStats, StatsRegistry, default_registry

__all__ = ["OoOCore", "SimStats", "StatsRegistry", "default_registry"]


class OoOCore:
    """One configured core; ``run(trace)`` returns :class:`SimStats`.

    ``guardrails`` is an optional :class:`~repro.guardrails.GuardrailSuite`;
    when ``None`` (the default) no hook is consulted and the run takes the
    exact fast path — including event-driven cycle skipping — so cycle
    counts are identical to a guardrail-free build.
    """

    def __init__(self, config, guardrails=None):
        self.config = config
        self.guardrails = guardrails
        self.stats = SimStats()
        self.hierarchy = config.build_hierarchy()
        self.predictor = make_predictor(config.predictor)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.frontend = FRONTEND_MODELS[config.frontend_model](config, self.stats)
        self.lsq = LoadStoreQueue(config.lsq_loads, config.lsq_stores)
        self.mdp = MemDependencePredictor()
        self.engine = None  # the TimingEngine of the most recent run

    def warm_caches(self, trace):
        """Pre-touch every instruction and data line of ``trace``.

        The paper measures thousands of benchmark iterations, so cold
        compulsory misses are negligible; a Python-scale run is short enough
        that they would dominate.  Warming reproduces the steady state the
        paper measures (hit/miss statistics are reset afterwards).
        """
        for entry in trace:
            self.hierarchy.access_instr(entry.pc)
            if entry.mem_addr is not None:
                self.hierarchy.access_data(
                    entry.mem_addr, is_store=entry.op_class == "store"
                )
        for level in (
            self.hierarchy.l1i,
            self.hierarchy.l1d,
            self.hierarchy.l2,
            self.hierarchy.l3,
        ):
            if level is not None:
                level.hits = 0
                level.misses = 0

    # ------------------------------------------------------------------ run --

    def run(self, trace, max_cycles=200_000_000, warm=False, idle_skip=True,
            observer=None):
        """Simulate ``trace`` to completion and return the stats.

        ``idle_skip=False`` forces cycle-by-cycle stepping (benchmarks use
        it to measure the event-driven speedup); attaching a guardrail suite
        disables skipping regardless, so per-cycle hooks see every cycle.
        ``observer`` is an optional :class:`~repro.obs.ObserverBus`; an empty
        or ``None`` bus leaves the hot path untouched, and a bus with a
        cycle-granular sink (the stall accountant) also disables skipping.
        """
        if warm:
            self.warm_caches(trace)
        # Trace positions restart at 0 every run: per-run front-end state
        # (the rename table) must not leak across runs on a reused core.
        self.frontend.reset_run()
        from repro.uarch.pipeline import TimingEngine

        self.engine = TimingEngine(
            self, trace, guardrails=self.guardrails, idle_skip=idle_skip,
            observer=observer,
        )
        return self.engine.run(max_cycles)
