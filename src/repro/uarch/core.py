"""The shared out-of-order timing engine (trace-driven, cycle-stepped).

Models, per cycle: fetch with branch/target/return prediction and I-cache
stalls; a fixed-depth front-end pipe; dispatch with ROB/IQ/LSQ/rename
structural stalls; wakeup-select issue with per-class ports; load-store
queue with store-to-load forwarding, memory-dependence prediction and
violation replays; data-cache hierarchy with a stream prefetcher; in-order
commit.  Misprediction recovery timing is delegated to the front-end model
(the architectural difference under study).

Trace-driven means wrong-path instructions are not executed: fetch stalls at
a mispredicted branch until it resolves, then pays the front-end refill plus
the model-specific recovery cost (SS: RMT restore by ROB walking; STRAIGHT:
one ROB-entry read).  Wrong-path cache pollution is not modeled (see
DESIGN.md).
"""

import heapq
from collections import deque

from repro.common.errors import SimulationError
from repro.uarch.branch import make_predictor, BranchTargetBuffer, ReturnAddressStack
from repro.uarch.frontend_models import RenameFrontEnd, StraightFrontEnd
from repro.uarch.lsq import LoadStoreQueue, MemDependencePredictor

_PORT_CLASS = {
    "alu": "alu",
    "mul": "mul",
    "div": "div",
    "branch": "bc",
    "jump": "bc",
    "load": "mem",
    "store": "mem",
    "sys": "alu",
    "nop": "alu",
}


class SimStats:
    """Counters accumulated during one timing run."""

    _FIELDS = (
        "cycles",
        "instructions",
        "fetch_stall_cycles",
        "branches",
        "branch_mispredicts",
        "target_mispredicts",
        "return_mispredicts",
        "btb_redirects",
        "recovery_stall_cycles",
        "rob_walk_cycles",
        "rob_full_stalls",
        "iq_full_stalls",
        "lsq_full_stalls",
        "freelist_stall_cycles",
        "spadd_stall_cycles",
        "rename_src_reads",
        "rename_writes",
        "opdet_ops",
        "regfile_reads",
        "regfile_writes",
        "iq_wakeups",
        "rob_writes",
        "alu_ops",
        "mul_ops",
        "div_ops",
        "loads",
        "stores",
        "store_forwards",
        "mem_violations",
        "icache_stall_cycles",
    )

    def __init__(self):
        for field in self._FIELDS:
            setattr(self, field, 0)
        self.cache_stats = {}
        self.predictor_accuracy = 1.0

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    def as_dict(self):
        data = {field: getattr(self, field) for field in self._FIELDS}
        data["ipc"] = self.ipc
        data["cache"] = dict(self.cache_stats)
        data["predictor_accuracy"] = self.predictor_accuracy
        return data

    def __repr__(self):
        return (
            f"SimStats(cycles={self.cycles}, instrs={self.instructions}, "
            f"ipc={self.ipc:.3f}, mispredicts={self.branch_mispredicts})"
        )


class _IQEntry:
    """An issue-queue entry; the ready heap selects oldest-first."""

    __slots__ = ("seq", "entry", "remaining", "min_issue")

    def __init__(self, seq, entry):
        self.seq = seq
        self.entry = entry
        self.remaining = 0
        self.min_issue = 0

    def __lt__(self, other):
        return self.seq < other.seq


class _RobEntry:
    __slots__ = ("seq", "entry", "done", "fetch_cycle")

    def __init__(self, seq, entry, fetch_cycle):
        self.seq = seq
        self.entry = entry
        self.done = False
        self.fetch_cycle = fetch_cycle


class OoOCore:
    """One configured core; ``run(trace)`` returns :class:`SimStats`.

    ``guardrails`` is an optional :class:`~repro.guardrails.GuardrailSuite`;
    when ``None`` (the default) no hook is consulted and the run takes the
    exact fast path, so cycle counts are identical to a guardrail-free build.
    """

    def __init__(self, config, guardrails=None):
        self.config = config
        self.guardrails = guardrails
        self.stats = SimStats()
        self.hierarchy = config.build_hierarchy()
        self.predictor = make_predictor(config.predictor)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack(config.ras_depth)
        frontend_cls = StraightFrontEnd if config.is_straight else RenameFrontEnd
        self.frontend = frontend_cls(config, self.stats)
        self.lsq = LoadStoreQueue(config.lsq_loads, config.lsq_stores)
        self.mdp = MemDependencePredictor()

    def warm_caches(self, trace):
        """Pre-touch every instruction and data line of ``trace``.

        The paper measures thousands of benchmark iterations, so cold
        compulsory misses are negligible; a Python-scale run is short enough
        that they would dominate.  Warming reproduces the steady state the
        paper measures (hit/miss statistics are reset afterwards).
        """
        for entry in trace:
            self.hierarchy.access_instr(entry.pc)
            if entry.mem_addr is not None:
                self.hierarchy.access_data(
                    entry.mem_addr, is_store=entry.op_class == "store"
                )
        for level in (
            self.hierarchy.l1i,
            self.hierarchy.l1d,
            self.hierarchy.l2,
            self.hierarchy.l3,
        ):
            if level is not None:
                level.hits = 0
                level.misses = 0

    # ------------------------------------------------------------------ run --

    def run(self, trace, max_cycles=200_000_000, warm=False):
        if warm:
            self.warm_caches(trace)
        return self._run(trace, max_cycles)

    def _run(self, trace, max_cycles):
        cfg = self.config
        stats = self.stats
        n = len(trace)
        if n == 0:
            return stats

        cycle = 0
        fetch_idx = 0
        fetch_resume = 0  # earliest cycle fetch may proceed
        awaiting_branch = None  # seq of unresolved mispredicted branch
        mispredict_fetch_cycle = 0
        rename_blocked_until = 0
        pipe = deque()  # (seq, dispatch_ready_cycle, fetch_cycle)
        rob = deque()
        committed = 0
        iq_count = 0

        events = {}  # cycle -> list of seq completing
        event_cycles = []  # heap of event cycles
        ready_buckets = {}  # cycle -> list of _IQEntry
        ready_heap = []
        waiting = {}  # producer seq -> list of _IQEntry
        reg_ready = {}  # producer seq -> result-available cycle
        iq_entries_by_seq = {}

        latencies = cfg.latencies
        line_shift = (self.hierarchy.line_bytes - 1).bit_length()
        last_fetch_line = -1

        def schedule_completion(seq, at):
            events.setdefault(at, []).append(seq)
            heapq.heappush(event_cycles, at)

        def wake_consumers(seq, at):
            for consumer in waiting.pop(seq, ()):
                consumer.remaining -= 1
                if consumer.min_issue < at:
                    consumer.min_issue = at
                if consumer.remaining == 0:
                    bucket_at = max(consumer.min_issue, cycle + 1)
                    ready_buckets.setdefault(bucket_at, []).append(consumer)
                    heapq.heappush(event_cycles, bucket_at)
                stats.iq_wakeups += 1

        rob_by_seq = {}

        guard = self.guardrails
        if guard is not None:
            guard.begin_run(
                core=self,
                trace=trace,
                rob=rob,
                rob_by_seq=rob_by_seq,
                pipe=pipe,
                reg_ready=reg_ready,
                lsq=self.lsq,
            )

        # ------------------------------------------------------------ stages

        def do_completions():
            nonlocal awaiting_branch, fetch_resume, rename_blocked_until
            for seq in events.pop(cycle, ()):
                entry = trace[seq]
                rob_entry = rob_by_seq.get(seq)
                if rob_entry is not None:
                    rob_entry.done = True
                wake_consumers(seq, cycle)
                if seq == awaiting_branch:
                    awaiting_branch = None
                    fetch_resume = cycle + 1
                    rob_free = cfg.rob_entries - len(rob)
                    blocked = self.frontend.recovery_block_until(
                        cycle, rob_by_seq[seq].fetch_cycle, rob_free
                    )
                    rename_blocked_until = max(rename_blocked_until, blocked)
                    stats.recovery_stall_cycles += max(0, blocked - cycle)

        def do_commit():
            nonlocal committed
            slots = cfg.commit_width
            while rob and slots > 0:
                head = rob[0]
                if not head.done:
                    break
                if guard is not None:
                    guard.on_commit(head, cycle)
                rob.popleft()
                del rob_by_seq[head.seq]
                self.frontend.on_commit(head.entry)
                if head.entry.op_class == "store":
                    self.lsq.commit_store(head.seq)
                elif head.entry.op_class == "load":
                    self.lsq.commit_load(head.seq)
                committed += 1
                slots -= 1

        def issue_latency(iq_entry):
            """Latency for an issuing instruction; None defers the issue."""
            nonlocal fetch_resume
            entry = iq_entry.entry
            cls = entry.op_class
            if cls == "load":
                kind, payload = self.lsq.try_issue_load(
                    iq_entry.seq, cycle, self.mdp, self.hierarchy, stats
                )
                if kind == "wait":
                    # Forbidden to speculate past this older store; sleep
                    # until it executes and recheck.
                    waiting.setdefault(payload, []).append(iq_entry)
                    iq_entry.remaining += 1
                    return None
                return payload
            if cls == "store":
                violations = self.lsq.store_executed(
                    iq_entry.seq, entry.mem_addr, cycle + latencies["store"]
                )
                if violations:
                    stats.mem_violations += len(violations)
                    for load_seq in violations:
                        self.mdp.train_conflict(self.lsq.load_pc(load_seq))
                    # Replay of the violating loads and their dependents,
                    # modeled as a short pipeline penalty.
                    fetch_resume = max(
                        fetch_resume, cycle + cfg.mdp_replay_penalty
                    )
                return latencies["store"]
            return latencies.get(cls, 1)

        def do_issue():
            nonlocal iq_count
            for iq_entry in ready_buckets.pop(cycle, ()):
                heapq.heappush(ready_heap, iq_entry)
            ports = dict(cfg.units)
            issued = 0
            deferred = []
            while ready_heap and issued < cfg.issue_width:
                iq_entry = heapq.heappop(ready_heap)
                if iq_entry.min_issue > cycle:
                    deferred.append(iq_entry)
                    continue
                port = _PORT_CLASS[iq_entry.entry.op_class]
                if ports.get(port, 0) <= 0:
                    deferred.append(iq_entry)
                    continue
                latency = issue_latency(iq_entry)
                if latency is None:
                    continue  # stays in the IQ, now waiting on a store
                ports[port] -= 1
                issued += 1
                iq_count -= 1
                seq = iq_entry.seq
                done_at = cycle + latency
                reg_ready[seq] = done_at
                schedule_completion(seq, done_at)
                stats.regfile_reads += len(iq_entry.entry.srcs)
                if iq_entry.entry.dest is not None or self.config.is_straight:
                    stats.regfile_writes += 1
                cls = iq_entry.entry.op_class
                if cls in ("alu", "sys"):
                    stats.alu_ops += 1
                elif cls == "mul":
                    stats.mul_ops += 1
                elif cls == "div":
                    stats.div_ops += 1
            for iq_entry in deferred:
                heapq.heappush(ready_heap, iq_entry)

        def do_dispatch():
            nonlocal iq_count
            if cycle < rename_blocked_until:
                return
            slots = cfg.fetch_width
            group_state = {"spadds": 0}
            while pipe and slots > 0:
                seq, ready_at, fetch_cycle = pipe[0]
                if ready_at > cycle:
                    break
                entry = trace[seq]
                if len(rob) >= cfg.rob_entries:
                    stats.rob_full_stalls += 1
                    break
                if entry.op_class != "nop" and iq_count >= cfg.iq_entries:
                    stats.iq_full_stalls += 1
                    break
                if entry.op_class == "load" and not self.lsq.can_add_load():
                    stats.lsq_full_stalls += 1
                    break
                if entry.op_class == "store" and not self.lsq.can_add_store():
                    stats.lsq_full_stalls += 1
                    break
                if not self.frontend.can_dispatch(entry, group_state):
                    break
                pipe.popleft()
                slots -= 1
                if entry.is_spadd:
                    group_state["spadds"] = group_state.get("spadds", 0) + 1
                tags = self.frontend.rename(entry, seq)
                rob_entry = _RobEntry(seq, entry, fetch_cycle)
                rob.append(rob_entry)
                rob_by_seq[seq] = rob_entry
                stats.rob_writes += 1
                if guard is not None:
                    guard.on_dispatch(seq, entry, cycle)
                if entry.op_class == "nop":
                    rob_entry.done = True
                    continue
                if entry.op_class == "load":
                    self.lsq.add_load(seq, entry.mem_addr, entry.pc)
                    stats.loads += 1
                elif entry.op_class == "store":
                    self.lsq.add_store(seq)
                    stats.stores += 1
                iq_entry = _IQEntry(seq, entry)
                iq_entry.min_issue = cycle + 1
                for tag in tags:
                    ready_at_tag = reg_ready.get(tag)
                    if ready_at_tag is None:
                        if tag in rob_by_seq:
                            waiting.setdefault(tag, []).append(iq_entry)
                            iq_entry.remaining += 1
                        # else: producer long retired; operand ready
                    elif ready_at_tag > iq_entry.min_issue:
                        iq_entry.min_issue = ready_at_tag
                iq_count += 1
                iq_entries_by_seq[seq] = iq_entry
                if iq_entry.remaining == 0:
                    ready_buckets.setdefault(iq_entry.min_issue, []).append(iq_entry)
                    heapq.heappush(event_cycles, iq_entry.min_issue)

        def predict_control(entry, seq):
            """Returns (mispredicted, stop_fetch_group, redirect_penalty)."""
            stats.branches += 1
            actual_taken = entry.taken
            actual_target = entry.next_pc if actual_taken else None
            if entry.op_class == "branch":
                predicted_taken = self.predictor.predict(entry.pc)
                self.predictor.update(entry.pc, actual_taken)
            else:
                predicted_taken = True
            predicted_target = None
            if predicted_taken:
                if entry.is_return:
                    predicted_target = self.ras.pop()
                else:
                    predicted_target = self.btb.predict(entry.pc)
            if entry.is_call:
                self.ras.push(entry.pc + 4)
            if actual_taken and not entry.is_return:
                self.btb.update(entry.pc, entry.next_pc)
            if cfg.ideal_recovery:
                return False, actual_taken, 0
            if predicted_taken != actual_taken:
                stats.branch_mispredicts += 1
                return True, True, 0
            if actual_taken and predicted_target != actual_target:
                if entry.is_return:
                    stats.return_mispredicts += 1
                    stats.branch_mispredicts += 1
                    return True, True, 0
                # Direct jump/branch with a BTB miss: the target is computed
                # at decode; short front-end redirect, not a full recovery.
                stats.btb_redirects += 1
                stats.target_mispredicts += 1
                return False, True, cfg.btb_miss_penalty
            return False, actual_taken, 0

        def do_fetch():
            nonlocal fetch_idx, fetch_resume, awaiting_branch, last_fetch_line
            nonlocal mispredict_fetch_cycle
            if awaiting_branch is not None or cycle < fetch_resume:
                return
            fetched = 0
            while fetched < cfg.fetch_width and fetch_idx < n:
                entry = trace[fetch_idx]
                line = entry.pc >> line_shift
                if line != last_fetch_line:
                    latency = self.hierarchy.access_instr(entry.pc)
                    last_fetch_line = line
                    if latency > self.hierarchy.l1i.hit_latency:
                        extra = latency - self.hierarchy.l1i.hit_latency
                        fetch_resume = cycle + extra
                        stats.icache_stall_cycles += extra
                        return
                pipe.append((fetch_idx, cycle + cfg.frontend_depth, cycle))
                seq = fetch_idx
                fetch_idx += 1
                fetched += 1
                if entry.changes_flow():
                    mispredicted, stop_group, redirect = predict_control(entry, seq)
                    if mispredicted:
                        awaiting_branch = seq
                        return
                    if redirect:
                        fetch_resume = cycle + 1 + redirect
                        return
                    if stop_group:
                        return

        # ------------------------------------------------------------ loop --

        while committed < n:
            do_completions()
            do_commit()
            do_issue()
            do_dispatch()
            do_fetch()
            if guard is not None:
                guard.on_cycle(cycle, committed, iq_count, fetch_idx)
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"{cfg.name}: exceeded {max_cycles} cycles "
                    f"({committed}/{n} committed)",
                    cycle=cycle,
                    occupancy={
                        "rob": len(rob),
                        "iq": iq_count,
                        "lsq_loads": len(self.lsq.loads),
                        "lsq_stores": len(self.lsq.stores),
                        "pipe": len(pipe),
                        "fetched": fetch_idx,
                        "committed": committed,
                    },
                )

        stats.cycles = cycle
        stats.instructions = n
        stats.cache_stats = self.hierarchy.stats()
        stats.predictor_accuracy = self.predictor.accuracy
        if guard is not None:
            guard.end_run(stats)
        return stats

