"""Load-store queue: forwarding, memory-dependence prediction, violations.

Loads may issue past older stores with unknown addresses (speculative
disambiguation).  A PC-indexed memory-dependence predictor forces loads that
have violated before to wait for older stores instead.  When a store
executes and an already-issued younger load turns out to alias it, the core
charges a replay penalty and the predictor is trained (both simulated
architectures share this machinery, as in the paper's simulators).
"""


class MemDependencePredictor:
    """PC-indexed 2-bit 'wait for older stores' predictor."""

    def __init__(self):
        self.counters = {}

    def predicts_conflict(self, pc):
        return self.counters.get(pc, 0) >= 2

    def train_conflict(self, pc):
        self.counters[pc] = min(3, self.counters.get(pc, 0) + 2)

    def train_no_conflict(self, pc):
        if pc in self.counters:
            self.counters[pc] = max(0, self.counters[pc] - 1)


class _Load:
    __slots__ = ("addr", "pc", "issued_cycle")

    def __init__(self, addr, pc):
        self.addr = addr
        self.pc = pc
        self.issued_cycle = None


class _Store:
    __slots__ = ("addr", "data_ready")

    def __init__(self):
        self.addr = None  # unknown until the store executes
        self.data_ready = None


class LoadStoreQueue:
    """Split load/store queues keyed by trace sequence number."""

    #: counters this component increments, contributed to the StatsRegistry
    STAT_FIELDS = ("store_forwards",)

    def __init__(self, load_entries, store_entries):
        self.load_entries = load_entries
        self.store_entries = store_entries
        self.loads = {}  # seq -> _Load (insertion = program order)
        self.stores = {}  # seq -> _Store

    # -- occupancy ------------------------------------------------------------

    def can_add_load(self):
        return len(self.loads) < self.load_entries

    def can_add_store(self):
        return len(self.stores) < self.store_entries

    def add_load(self, seq, addr, pc):
        self.loads[seq] = _Load(addr, pc)

    def add_store(self, seq):
        self.stores[seq] = _Store()

    def commit_load(self, seq):
        self.loads.pop(seq, None)

    def commit_store(self, seq):
        self.stores.pop(seq, None)

    def load_pc(self, seq):
        return self.loads[seq].pc

    # -- execution ----------------------------------------------------------------

    def try_issue_load(self, seq, cycle, mdp, hierarchy, stats):
        """Attempt to issue the load ``seq``.

        Returns ``('ok', latency)`` or ``('wait', store_seq)`` when the
        memory-dependence predictor forbids speculating past an older store
        whose address is still unknown.
        """
        load = self.loads[seq]
        must_wait = mdp.predicts_conflict(load.pc)
        for store_seq in reversed(self.stores):
            if store_seq > seq:
                continue
            store = self.stores[store_seq]
            if store.addr is None:
                if must_wait:
                    return ("wait", store_seq)
                continue  # speculate past the unknown address
            if store.addr == load.addr:
                stats.store_forwards += 1
                load.issued_cycle = cycle
                wait = max(0, store.data_ready - cycle)
                return ("ok", 2 + wait)
        load.issued_cycle = cycle
        latency = 1 + hierarchy.access_data(load.addr)
        return ("ok", latency)

    def store_executed(self, seq, addr, data_ready):
        """Record an executed store; returns seqs of violated younger loads."""
        store = self.stores[seq]
        store.addr = addr
        store.data_ready = data_ready
        violations = []
        for load_seq, load in self.loads.items():
            if (
                load_seq > seq
                and load.issued_cycle is not None
                and load.addr == addr
            ):
                violations.append(load_seq)
        return violations
