"""Cache hierarchy model: set-associative LRU caches plus a stream prefetcher.

Latency convention follows Table I: each level has an absolute hit latency
(L1 4, L2 12, L3 42, memory 200 cycles); an access costs the hit latency of
the closest level that holds the line, and the line is filled into every
upper level on the way back (inclusive hierarchy).
"""


class CacheLevel:
    """One set-associative cache level with true-LRU replacement."""

    def __init__(self, size_bytes, ways, line_bytes, hit_latency, name=""):
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError(f"{name}: geometry does not divide evenly")
        self.name = name
        self.ways = ways
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (ways * line_bytes)
        # Per set: dict line_addr -> None; insertion order is LRU order
        # (oldest first) because we re-insert on every touch.
        self.sets = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line_addr):
        return self.sets[line_addr % self.num_sets]

    def lookup(self, line_addr):
        """True on hit (and refreshes LRU position)."""
        cache_set = self._set_of(line_addr)
        if line_addr in cache_set:
            del cache_set[line_addr]
            cache_set[line_addr] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line_addr):
        cache_set = self._set_of(line_addr)
        if line_addr in cache_set:
            del cache_set[line_addr]
        elif len(cache_set) >= self.ways:
            oldest = next(iter(cache_set))
            del cache_set[oldest]
        cache_set[line_addr] = None

    def contains(self, line_addr):
        """Non-updating probe (used by tests and the prefetcher)."""
        return line_addr in self._set_of(line_addr)


class StreamPrefetcher:
    """Ascending-stream detector issuing next-line prefetches on L1D misses.

    Tracks up to ``streams`` recent miss streams; a miss extending a stream
    by one line triggers prefetch of the following ``degree`` lines.
    """

    def __init__(self, streams=8, degree=2):
        self.streams = streams
        self.degree = degree
        self.recent = []  # list of last-line addresses, most recent last
        self.issued = 0

    def on_miss(self, line_addr):
        """Returns the list of line addresses to prefetch."""
        for index, last in enumerate(self.recent):
            if line_addr == last + 1:
                self.recent[index] = line_addr
                self.issued += self.degree
                return [line_addr + k for k in range(1, self.degree + 1)]
        self.recent.append(line_addr)
        if len(self.recent) > self.streams:
            self.recent.pop(0)
        return []


class MemoryHierarchy:
    """L1I + L1D over shared L2 (and optional L3) over main memory."""

    def __init__(self, l1i, l1d, l2, l3=None, mem_latency=200, prefetcher=None):
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.l3 = l3
        self.mem_latency = mem_latency
        self.prefetcher = prefetcher
        self.line_bytes = l1d.line_bytes

    def _line(self, addr):
        return addr // self.line_bytes

    def _shared_levels(self):
        return [lvl for lvl in (self.l2, self.l3) if lvl is not None]

    def _access(self, l1, addr):
        """Returns (latency, l1_missed)."""
        line = self._line(addr)
        if l1.lookup(line):
            return l1.hit_latency, False
        latency = None
        filled = [l1]
        for level in self._shared_levels():
            if level.lookup(line):
                latency = level.hit_latency
                break
            filled.append(level)
        if latency is None:
            latency = self.mem_latency
        for level in filled:
            level.insert(line)
        return latency, True

    def access_instr(self, pc):
        """Instruction fetch: returns total latency in cycles."""
        latency, _ = self._access(self.l1i, pc)
        return latency

    def access_data(self, addr, is_store=False):
        """Data access: returns total latency; drives the prefetcher."""
        latency, missed = self._access(self.l1d, addr)
        if missed and self.prefetcher is not None and not is_store:
            for line in self.prefetcher.on_miss(self._line(addr)):
                self._prefetch_line(line)
        return latency

    def _prefetch_line(self, line):
        # Background fill: no cycle charge to the demand stream (both
        # architectures share this optimism, so comparisons are unaffected).
        for level in self._shared_levels():
            level.insert(line)
        self.l1d.insert(line)

    def stats(self):
        data = {
            "l1i_hits": self.l1i.hits,
            "l1i_misses": self.l1i.misses,
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
        }
        if self.l3 is not None:
            data["l3_hits"] = self.l3.hits
            data["l3_misses"] = self.l3.misses
        if self.prefetcher is not None:
            data["prefetches"] = self.prefetcher.issued
        return data
