"""Core timing-model configuration (the knobs of Table I)."""


class CacheConfig:
    """Geometry + latency for one cache level."""

    def __init__(self, size_kib, ways, line_bytes, hit_latency):
        self.size_kib = size_kib
        self.ways = ways
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency

    def build(self, name):
        from repro.uarch.caches import CacheLevel

        return CacheLevel(
            self.size_kib * 1024, self.ways, self.line_bytes, self.hit_latency, name
        )


class CoreConfig:
    """Every parameter of one simulated core (one column of Table I)."""

    def __init__(
        self,
        name,
        is_straight,
        fetch_width,
        issue_width,
        commit_width,
        frontend_depth,
        rename_stage_depth,
        rob_entries,
        iq_entries,
        phys_regs,
        lsq_loads,
        lsq_stores,
        units,
        predictor="gshare",
        btb_entries=4096,
        ras_depth=16,
        l1i=CacheConfig(32, 4, 64, 4),
        l1d=CacheConfig(32, 4, 64, 4),
        l2=CacheConfig(256, 4, 64, 12),
        l3=None,
        mem_latency=200,
        max_distance=31,
        ideal_recovery=False,
        mdp_replay_penalty=8,
        spadd_per_group=1,
        btb_miss_penalty=2,
        latencies=None,
        prefetch_streams=8,
        prefetch_degree=2,
        guardrails=False,
        watchdog_cycles=50_000,
        deep_check_interval=64,
        predictor_check_interval=4096,
        frontend=None,
    ):
        self.name = name
        self.is_straight = is_straight
        #: Explicit front-end model name (see
        #: :data:`repro.uarch.frontend_models.FRONTEND_MODELS`); ``None``
        #: keeps the classic two-model selection via ``is_straight``.
        self.frontend = frontend
        self.fetch_width = fetch_width
        self.issue_width = issue_width
        self.commit_width = commit_width
        #: cycles from fetch to dispatch (Table I "Front-end latency").
        self.frontend_depth = frontend_depth
        #: stages between fetch and the rename stage (SS recovery overlap).
        self.rename_stage_depth = rename_stage_depth
        self.rob_entries = rob_entries
        self.iq_entries = iq_entries
        self.phys_regs = phys_regs
        self.lsq_loads = lsq_loads
        self.lsq_stores = lsq_stores
        self.units = dict(units)  # e.g. {'alu': 4, 'mul': 2, 'div': 1, 'bc': 4, 'mem': 4}
        self.predictor = predictor
        self.btb_entries = btb_entries
        self.ras_depth = ras_depth
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.l3 = l3
        self.mem_latency = mem_latency
        self.max_distance = max_distance
        self.ideal_recovery = ideal_recovery
        self.mdp_replay_penalty = mdp_replay_penalty
        self.spadd_per_group = spadd_per_group
        self.btb_miss_penalty = btb_miss_penalty
        self.latencies = dict(latencies or {"alu": 1, "mul": 3, "div": 12,
                                            "branch": 1, "jump": 1, "store": 1,
                                            "sys": 1, "nop": 1})
        self.prefetch_streams = prefetch_streams
        self.prefetch_degree = prefetch_degree
        #: Opt-in invariant checking + lockstep (see repro.guardrails); the
        #: default keeps the zero-overhead fast path.
        self.guardrails = guardrails
        #: Forward-progress watchdog: cycles without a commit before the run
        #: dies with a DeadlockError (only when guardrails are enabled).
        self.watchdog_cycles = watchdog_cycles
        #: Cycle stride of the expensive consistency scans (ROB index walk,
        #: free-list conservation).
        self.deep_check_interval = deep_check_interval
        #: Cycle stride of the predictor-storage range sweep.
        self.predictor_check_interval = predictor_check_interval

    def cache_key(self):
        """Full timing-relevant identity of this configuration.

        Two configs with equal keys produce identical timing results, so the
        harness memoizes runs on this (never on ``name``, which is a display
        alias that experiments freely reuse across different parameters).
        """

        def cache(level):
            if level is None:
                return None
            return (level.size_kib, level.ways, level.line_bytes,
                    level.hit_latency)

        key = (
            self.is_straight,
            self.fetch_width,
            self.issue_width,
            self.commit_width,
            self.frontend_depth,
            self.rename_stage_depth,
            self.rob_entries,
            self.iq_entries,
            self.phys_regs,
            self.lsq_loads,
            self.lsq_stores,
            tuple(sorted(self.units.items())),
            self.predictor,
            self.btb_entries,
            self.ras_depth,
            cache(self.l1i),
            cache(self.l1d),
            cache(self.l2),
            cache(self.l3),
            self.mem_latency,
            self.max_distance,
            self.ideal_recovery,
            self.mdp_replay_penalty,
            self.spadd_per_group,
            self.btb_miss_penalty,
            tuple(sorted(self.latencies.items())),
            self.prefetch_streams,
            self.prefetch_degree,
        )
        # Appended only when set, so every pre-existing config keeps its
        # exact historical cache key (persistent result caches stay warm).
        if self.frontend is not None:
            key += (self.frontend,)
        return key

    @property
    def frontend_model(self):
        """The front-end model name this config simulates."""
        if self.frontend is not None:
            return self.frontend
        return "straight" if self.is_straight else "rename"

    def copy(self, **overrides):
        """A modified copy (used for Fig. 13's no-penalty and Fig. 14's TAGE)."""
        import copy as _copy

        clone = _copy.deepcopy(self)
        for key, value in overrides.items():
            if not hasattr(clone, key):
                raise AttributeError(f"unknown CoreConfig field {key!r}")
            setattr(clone, key, value)
        return clone

    def build_hierarchy(self):
        from repro.uarch.caches import MemoryHierarchy, StreamPrefetcher

        return MemoryHierarchy(
            self.l1i.build(f"{self.name}.l1i"),
            self.l1d.build(f"{self.name}.l1d"),
            self.l2.build(f"{self.name}.l2"),
            self.l3.build(f"{self.name}.l3") if self.l3 else None,
            mem_latency=self.mem_latency,
            prefetcher=StreamPrefetcher(self.prefetch_streams, self.prefetch_degree),
        )

    def __repr__(self):
        return f"CoreConfig({self.name})"
