"""The ``straight`` command-line interface.

Subcommands::

    straight compile  prog.c --target straight        # print assembly
    straight disasm   prog.c --target riscv           # linked image listing
    straight run      prog.c --target straight-raw    # functional run
    straight simulate prog.c --core STRAIGHT-4way     # timing run (JSON)
    straight trace    --workload dhrystone --core SS-2way --kanata d.kanata
    straight profile  --workload coremark --core STRAIGHT-2way --top 10
    straight verify   prog.c --target both --lint     # static verification
    straight verify   --all-shipped                   # CI workload gate
    straight experiments fig11 fig16                  # regenerate figures
    straight guardrails --workload dhrystone          # lockstep smoke run
    straight guardrails --faults 100 --seed 7         # fault campaign
    straight bench --smoke --json bench.json          # simulator throughput
    straight isa list                                 # registered ISAs
    straight isa density --json                       # bits/instruction report

Targets come from the ISA registry (:mod:`repro.isa`): ``riscv`` (the SS
baseline), ``straight`` (RE+), ``straight-raw``, ``bb`` — plus any
third-party registration.  Cores: the Table I names (``SS-2way``,
``STRAIGHT-2way``, ``SS-4way``, ``STRAIGHT-4way``) and the BB pair
(``BB-2way``, ``BB-4way``).
"""

import argparse
import json
import sys

from repro import isa as isa_registry
from repro.frontend import compile_source
from repro.core.api import Binary, simulate, run_functional
from repro.core.configs import ALL_CORES

#: CLI target names, enumerated from the registry (registration order).
TARGETS = tuple(isa_registry.target_map())

#: Registered ISA names (for ``--isa`` flags and ``straight isa list``).
ISA_NAMES = isa_registry.names()


def _compile_target(source, target, max_distance=1023):
    descriptor, opts = isa_registry.resolve_target(target)
    module = compile_source(source)
    compilation = descriptor.compile_module(
        module, max_distance=max_distance, **opts
    )
    return Binary(descriptor.name, compilation.link(), compilation)


def _target_of(args):
    """The effective target: ``--isa NAME`` selects that ISA's default."""
    if getattr(args, "isa", None):
        return next(iter(isa_registry.get(args.isa).targets))
    return args.target


def _read_source(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def cmd_compile(args):
    binary = _compile_target(_read_source(args.file), _target_of(args),
                             args.max_distance)
    print(binary.compilation.asm_text())
    return 0


def cmd_disasm(args):
    binary = _compile_target(_read_source(args.file), _target_of(args),
                             args.max_distance)
    print(binary.program.disassemble())
    return 0


def cmd_run(args):
    binary = _compile_target(_read_source(args.file), _target_of(args),
                             args.max_distance)
    if args.sampled:
        from repro.harness.sampling import SamplingParams, simulate_sampled

        factory = ALL_CORES.get(args.core)
        if factory is None:
            print(f"unknown core {args.core!r}; choose from "
                  f"{sorted(ALL_CORES)}", file=sys.stderr)
            return 1
        config = factory()
        expected = isa_registry.for_config(config).name
        if binary.isa != expected:
            print(f"core {args.core} simulates {expected!r} binaries, but "
                  f"--target produced a {binary.isa!r} binary",
                  file=sys.stderr)
            return 1
        params = SamplingParams(
            period=args.sampling_period, window=args.sampling_window,
            warmup=args.sampling_warmup, cooldown=args.sampling_cooldown,
            seed=args.seed,
        )
        result = simulate_sampled(binary, config, params,
                                  max_steps=args.max_steps, warm_caches=True)
        payload = result.stats.as_dict()
        payload["output"] = result.output
        payload["core"] = args.core
        print(json.dumps(payload, indent=2))
        return 0
    compiled = None
    if args.compiled:
        compiled = True
    elif args.no_compiled:
        compiled = False
    result = run_functional(binary, max_steps=args.max_steps,
                            compiled=compiled)
    for word in result.output:
        print(word)
    print(f"# {result.run_result.steps} instructions retired", file=sys.stderr)
    return 0


def cmd_simulate(args):
    factory = ALL_CORES.get(args.core)
    if factory is None:
        print(f"unknown core {args.core!r}; choose from {sorted(ALL_CORES)}",
              file=sys.stderr)
        return 1
    config = factory()
    descriptor = isa_registry.for_config(config)
    # ``--raw`` picks the ISA's secondary target (STRAIGHT's no-RE+ binary);
    # ISAs with a single target ignore it.
    targets = list(descriptor.targets)
    target = targets[1] if args.raw and len(targets) > 1 else targets[0]
    max_distance = (config.max_distance
                    if descriptor.register_model == "distance" else 1023)
    binary = _compile_target(_read_source(args.file), target, max_distance)
    result = simulate(binary, config, warm_caches=not args.cold,
                      guardrails=args.guardrails)
    payload = result.stats.as_dict()
    payload["output"] = result.output
    payload["core"] = args.core
    payload["target"] = target
    if result.guardrail_report is not None:
        payload["guardrails"] = result.guardrail_report
    print(json.dumps(payload, indent=2))
    return 0


def cmd_guardrails(args):
    """Guarded smoke run (lockstep + checkers) or a fault-injection campaign."""
    from repro.common.errors import RunTimeoutError
    from repro.guardrails import run_campaign
    from repro.harness.runner import timed_run, deadline

    factory = ALL_CORES.get(args.core)
    if factory is None:
        print(f"unknown core {args.core!r}; choose from {sorted(ALL_CORES)}",
              file=sys.stderr)
        return 1
    config = factory(guardrails=True)
    try:
        if args.faults:
            with deadline(args.timeout, "fault-injection campaign"):
                report = run_campaign(config=config, n_faults=args.faults,
                                      seed=args.seed)
            print(json.dumps(report.as_dict(), indent=2))
            print(report.text(), file=sys.stderr)
            if report.escaped_silent:
                print("FAIL: silent fault escapes detected", file=sys.stderr)
                return 1
            return 0
        descriptor = isa_registry.for_config(config)
        binary_label = descriptor.label_for_config(config)
        from repro.guardrails import static_precheck
        from repro.workloads.common import build_workload

        built = build_workload(args.workload, iterations=args.iterations,
                               max_distance=config.max_distance)
        static_report = static_precheck(built.all()[binary_label])
        if static_report is not None:
            print(f"static verify: {static_report.summary()}",
                  file=sys.stderr)
        run = timed_run(args.workload, binary_label, config,
                        iterations=args.iterations, timeout_s=args.timeout,
                        guardrails=True)
    except RunTimeoutError as exc:
        print(f"timeout: {exc}", file=sys.stderr)
        return 1
    payload = {
        "workload": args.workload,
        "core": args.core,
        "binary": binary_label,
        "cycles": run.cycles,
        "ipc": round(run.ipc, 4),
        "guardrails": run.guardrail_report,
    }
    print(json.dumps(payload, indent=2))
    return 0


def _verify_jobs_all_shipped(max_distances, isas=None):
    """(name, isa, program) triplets covering every shipped artifact of the
    statically-verifiable ISAs (STRAIGHT's distance proof, bb's block
    structure; ISAs without a verifier contribute nothing)."""
    import os

    from repro.workloads.common import get_workload
    from repro.guardrails import DEFAULT_CAMPAIGN_SOURCE

    names = tuple(isas) if isas else ISA_NAMES
    sources = [
        ("dhrystone", get_workload("dhrystone").source()),
        ("coremark", get_workload("coremark").source()),
        ("fault-campaign", DEFAULT_CAMPAIGN_SOURCE),
    ]
    for isa_name in names:
        descriptor = isa_registry.get(isa_name)
        if not descriptor.has_static_check:
            continue
        # The distance-bound sweep only means something on distance ISAs.
        distances = (max_distances
                     if descriptor.register_model == "distance" else (1023,))
        for name, source in sources:
            for target in descriptor.targets:
                for max_distance in distances:
                    binary = _compile_target(source, target, max_distance)
                    yield (f"{name}/{target}/md={max_distance}",
                           descriptor.name, binary.program)

    if "straight" not in names:
        return
    # The hand-written assembly example, when run from a repo checkout.
    example = os.path.normpath(
        os.path.join(
            os.path.dirname(__file__), "..", "..", "..",
            "examples", "hand_written_asm.py",
        )
    )
    if os.path.exists(example):
        import importlib.util

        from repro.straight import link_program, parse_assembly, startup_stub

        spec = importlib.util.spec_from_file_location("hand_written_asm",
                                                      example)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for snippet in ("FIG1", "LOOP_FIXED"):
            program = link_program(
                [startup_stub(), parse_assembly(getattr(module, snippet))]
            )
            yield f"examples/hand_written_asm/{snippet}", "straight", program


#: Default mutation-campaign detection gates per register model: the
#: STRAIGHT campaign's historical bar, a slightly lower one for the newer
#: gpr/structural campaigns (CI pins stricter values explicitly).
_DETECTION_GATES = {"distance": 0.95}
_DETECTION_GATE_DEFAULT = 0.90


def cmd_verify(args):
    """Static verification via each ISA's registered verifier."""
    from repro.analysis import cached_mutation_campaign

    if args.all_shipped:
        jobs = list(_verify_jobs_all_shipped(
            max_distances=(1023, 31),
            isas=(args.isa,) if args.isa else None,
        ))
        if not jobs:
            print(f"verify: ISA {args.isa!r} has no static verifier",
                  file=sys.stderr)
            return 2
    else:
        if args.file is None:
            if not args.mutants:
                print("verify: pass a source file, --all-shipped, or "
                      "--mutants", file=sys.stderr)
                return 2
            from repro.guardrails import DEFAULT_CAMPAIGN_SOURCE

            name = "fault-campaign"
            source = DEFAULT_CAMPAIGN_SOURCE
        else:
            name = args.file
            source = _read_source(args.file)
        if args.isa:
            targets = tuple(isa_registry.get(args.isa).targets)
        elif args.target == "both":
            targets = ("straight", "straight-raw")
        else:
            targets = (args.target,)
        jobs = []
        for target in targets:
            descriptor, _ = isa_registry.resolve_target(target)
            if not descriptor.has_static_check:
                print(f"verify: ISA {descriptor.name!r} has no static "
                      "verifier", file=sys.stderr)
                return 2
            binary = _compile_target(source, target, args.max_distance)
            jobs.append((f"{name}/{target}/md={args.max_distance}",
                         descriptor.name, binary.program))

    runs = []
    failed = False
    for name, isa_name, program in jobs:
        report = isa_registry.get(isa_name).static_check(program,
                                                         lint=args.lint)
        entry = {"name": name, "isa": isa_name, "counts": report.counts(),
                 "stats": report.stats}
        if args.json:
            entry["diagnostics"] = report.as_dict()["diagnostics"]
        runs.append((entry, report))
        failed = failed or report.has_errors()

    campaign = None
    if args.mutants:
        if args.all_shipped or len(jobs) != 1:
            print("verify: --mutants needs a single file/target",
                  file=sys.stderr)
            return 2
        isa_name = jobs[0][1]
        descriptor = isa_registry.get(isa_name)
        if descriptor.analysis is None:
            print(f"verify: ISA {isa_name!r} has no mutation campaign",
                  file=sys.stderr)
            return 2
        campaign = cached_mutation_campaign(
            isa_name, jobs[0][2], mutants=args.mutants, seed=args.seed,
            max_distance=args.max_distance,
        )
        gate = args.min_detection
        if gate is None:
            gate = _DETECTION_GATES.get(
                descriptor.register_model, _DETECTION_GATE_DEFAULT
            )
        failed = failed or campaign.detection_rate < gate

    if args.json:
        payload = {"runs": [entry for entry, _ in runs],
                   "ok": not failed}
        if campaign is not None:
            payload["mutation_campaign"] = campaign.as_dict()
        print(json.dumps(payload, indent=2))
    else:
        for entry, report in runs:
            print(f"{entry['name']}: {report.summary()}")
            show = report.sorted() if args.verbose else report.errors()
            for diag in show:
                print(f"  {diag.render()}")
        if campaign is not None:
            print(campaign.text())
        print("FAIL" if failed else "OK")
    return 1 if failed else 0


def cmd_analyze(args):
    """Full static-analysis stack on one compiled binary."""
    from repro.analysis import analyze_program

    if args.target:
        descriptor, _ = isa_registry.resolve_target(args.target)
        target = args.target
    else:
        descriptor = isa_registry.get(args.isa)
        target = next(iter(descriptor.targets))
    if descriptor.analysis is None:
        print(f"analyze: ISA {descriptor.name!r} has no analysis support",
              file=sys.stderr)
        return 2

    if args.workload:
        from repro.workloads.common import get_workload

        name = args.workload
        source = get_workload(args.workload).source()
    elif args.file:
        name = args.file
        source = _read_source(args.file)
    else:
        print("analyze: pass a source file or --workload", file=sys.stderr)
        return 2

    binary = _compile_target(source, target, args.max_distance)
    bundle = analyze_program(
        binary.program, descriptor.name, name=f"{name}/{target}",
        lint=not args.no_lint,
    )
    if args.json:
        print(json.dumps(bundle.as_dict(), indent=2))
    else:
        print(bundle.text())
        print("OK" if bundle.ok else "FAIL")
    return 0 if bundle.ok else 1


def _resolve_sim_binary(args, config):
    """The binary a trace/profile run targets, from --workload or a file.

    The core picks the ISA via the registry; ``--target`` selects among
    that ISA's own variant targets (e.g. ``straight-raw`` on STRAIGHT
    cores) and is ignored when it names another ISA's target.
    """
    descriptor = isa_registry.for_config(config)
    target = next(iter(descriptor.targets))
    if getattr(args, "target", None) in descriptor.targets:
        target = args.target
    opts = descriptor.targets[target]
    label = next(
        (lab for lab, lab_opts in descriptor.binary_labels.items()
         if lab_opts == opts),
        descriptor.label_for_config(config),
    )
    max_distance = (config.max_distance
                    if descriptor.register_model == "distance" else 1023)
    if args.workload is not None:
        from repro.workloads import build_workload

        built = build_workload(args.workload, getattr(args, "iterations", None),
                               max_distance)
        return built.all()[label], label
    if args.file is None:
        raise SystemExit("trace/profile: pass a source file or --workload")
    return _compile_target(_read_source(args.file), target, max_distance), label


def _sim_config(core_name):
    factory = ALL_CORES.get(core_name)
    if factory is None:
        raise SystemExit(
            f"unknown core {core_name!r}; choose from {sorted(ALL_CORES)}")
    return factory()


def cmd_trace(args):
    if args.core is not None:
        return _trace_pipeline(args)
    return _trace_functional(args)


def _trace_pipeline(args):
    """Pipeline-level trace: Kanata visualizer log + stall attribution."""
    from repro.obs import KanataWriter, ObserverBus, StallAttributionAccountant

    config = _sim_config(args.core)
    binary, label = _resolve_sim_binary(args, config)
    writer = KanataWriter(path=args.kanata)
    sinks = [writer]
    accountant = None
    if args.attribution:
        accountant = StallAttributionAccountant()
        sinks.append(accountant)
    result = simulate(binary, config, warm_caches=not args.cold,
                      guardrails=args.guardrails,
                      observer=ObserverBus(sinks))
    payload = {
        "core": args.core,
        "binary": label,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "instructions": result.stats.instructions,
        "kanata_log": args.kanata,
        "instructions_logged": len(writer.canonical_records()),
        "instructions_dropped": writer.dropped,
    }
    if accountant is not None:
        payload["attribution"] = accountant.report()
    if result.guardrail_report is not None:
        payload["guardrails"] = result.guardrail_report
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{label} on {args.core}: {payload['cycles']} cycles, "
              f"ipc {payload['ipc']}")
        print(f"kanata log: {args.kanata} "
              f"({payload['instructions_logged']} instructions)")
        if accountant is not None:
            print(accountant.text())
    return 0


def _trace_functional(args):
    if args.workload is not None:
        from repro.workloads.common import get_workload

        source = get_workload(args.workload).source(
            getattr(args, "iterations", None))
    else:
        if args.file is None:
            raise SystemExit("trace: pass a source file or --workload")
        source = _read_source(args.file)
    binary = _compile_target(source, args.target, args.max_distance)
    result = run_functional(binary, max_steps=args.max_steps, collect_trace=True)
    trace = result.interpreter.trace
    limit = args.limit if args.limit is not None else len(trace)
    for entry in trace[:limit]:
        sources = ",".join(str(s) for s in entry.srcs)
        fields = [
            f"{entry.pc:#08x}",
            f"{entry.mnemonic:6s}",
            f"dest={entry.dest}",
            f"srcs=[{sources}]",
        ]
        if entry.mem_addr is not None:
            fields.append(f"mem={entry.mem_addr:#x}")
        if entry.is_control:
            fields.append("taken" if entry.taken else "not-taken")
        print("  ".join(fields))
    if limit < len(trace):
        print(f"... ({len(trace) - limit} more)", file=sys.stderr)
    return 0


def cmd_profile(args):
    """Hot-region profile + stall attribution for one timing run."""
    from repro.obs import (
        HotRegionProfiler,
        ObserverBus,
        StallAttributionAccountant,
    )

    config = _sim_config(args.core)
    binary, label = _resolve_sim_binary(args, config)
    profiler = HotRegionProfiler(program=binary.program)
    accountant = StallAttributionAccountant()
    result = simulate(binary, config, warm_caches=not args.cold,
                      guardrails=args.guardrails,
                      observer=ObserverBus([profiler, accountant]))
    if args.json:
        payload = {
            "core": args.core,
            "binary": label,
            "cycles": result.cycles,
            "ipc": round(result.ipc, 4),
            "attribution": accountant.report(),
            "profile": profiler.report(top=args.top),
        }
        if result.guardrail_report is not None:
            payload["guardrails"] = result.guardrail_report
        print(json.dumps(payload, indent=2))
    else:
        print(f"{label} on {args.core}: {result.cycles} cycles, "
              f"ipc {result.ipc:.4f}")
        print()
        print(accountant.text())
        print()
        print(profiler.text(top=args.top))
    return 0


def cmd_bench(args):
    """Simulator-throughput smoke benchmark (stepped vs. event-driven)."""
    from repro.harness.bench import (
        BENCH_WORKLOADS,
        bench_fastpath,
        bench_smoke,
    )

    if args.serve:
        return _bench_serve(args)
    if not args.smoke:
        print("nothing to do: pass --smoke or --serve", file=sys.stderr)
        return 1
    for name in args.workload or ():
        if name not in BENCH_WORKLOADS:
            print(f"unknown bench workload {name!r}; choose from "
                  f"{sorted(BENCH_WORKLOADS)}", file=sys.stderr)
            return 1
    report = bench_smoke(config_name=args.core, repeats=args.repeats,
                         workloads=args.workload or None,
                         sweep_jobs=args.sweep_jobs)
    if args.fastpath:
        report["fastpath"] = bench_fastpath(
            smoke=args.fastpath != "full", seed=args.seed
        )
    text = json.dumps(report, indent=2)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
    sweep_report = _bench_sweep_summary(report)
    with open(args.sweep_json, "w") as handle:
        json.dump(sweep_report, handle, indent=2)
        handle.write("\n")
    if args.fastpath and args.fastpath_json:
        with open(args.fastpath_json, "w") as handle:
            json.dump(report["fastpath"], handle, indent=2)
            handle.write("\n")
    print(text)
    if args.max_obs_overhead is not None:
        overhead = report["observability"]["overhead_disabled_pct"]
        if overhead > args.max_obs_overhead:
            print(f"observability-disabled overhead {overhead:+.2f}% exceeds "
                  f"the {args.max_obs_overhead:.2f}% budget", file=sys.stderr)
            return 1
        print(f"observability-disabled overhead {overhead:+.2f}% within "
              f"the {args.max_obs_overhead:.2f}% budget", file=sys.stderr)
    if args.fastpath:
        fp = report["fastpath"]
        failed = False
        if (args.min_fastpath_speedup is not None
                and fp["max_speedup"] < args.min_fastpath_speedup):
            print(f"fastpath speedup {fp['max_speedup']:.2f}x below the "
                  f"{args.min_fastpath_speedup:.2f}x gate", file=sys.stderr)
            failed = True
        if (args.max_sampling_error is not None
                and fp["max_abs_ipc_err_pct"] > args.max_sampling_error):
            print(f"sampled IPC error {fp['max_abs_ipc_err_pct']:.2f}% "
                  f"exceeds the {args.max_sampling_error:.2f}% gate",
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"fastpath: {fp['max_speedup']:.2f}x end-to-end, worst "
              f"sampled IPC error {fp['max_abs_ipc_err_pct']:.2f}%",
              file=sys.stderr)
    return 0


def _bench_serve(args):
    """The ``BENCH_serve.json`` scorecard: loadgen against an in-process
    server, gated like the other bench artifacts."""
    import tempfile

    from repro.serve.loadgen import bench_serve, gate

    with tempfile.TemporaryDirectory(prefix="serve-bench-") as cache_dir:
        scorecard = bench_serve(profile=args.serve_profile,
                                pool_jobs=args.sweep_jobs,
                                cache_dir=cache_dir)
    text = json.dumps(scorecard, indent=2, sort_keys=True)
    with open(args.serve_json, "w") as handle:
        handle.write(text + "\n")
    print(text)
    failures = gate(scorecard, min_dedup_rate=args.min_serve_dedup_rate,
                    max_p99_ms=args.max_serve_p99_ms)
    for failure in failures:
        print(f"serve bench gate: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"serve bench: {scorecard['requests_total']} requests, "
          f"p99 {scorecard['latency_ms']['p99']}ms, "
          f"{scorecard['errors_5xx']} 5xx, repeated-phase saved rate "
          f"{scorecard['dedup']['repeated_saved_rate']:.2%}",
          file=sys.stderr)
    return 0


def _bench_sweep_summary(report):
    """The ``BENCH_sweep.json`` artifact: one flat sweep/cache scorecard."""
    passes = report["sweep"]["passes"]
    return {
        "generated_by": "straight bench --smoke",
        "sweep_jobs": report["sweep"]["jobs"],
        "grid": report["sweep"]["grid"],
        "wall_s": {p["pass"]: p["wall_s"] for p in passes},
        "cycles_simulated": {p["pass"]: p["cycles_simulated"] for p in passes},
        # Idle-skip split of the stepped-vs-event section (the sweep's
        # results are cache-portable payloads, which carry no engine
        # internals).
        "cycles_skipped": sum(w["skipped_cycles"] for w in report["workloads"]),
        "cycles_executed": sum(w["executed_cycles"] for w in report["workloads"]),
        "cache": {p["pass"]: p["cache"] for p in passes},
        "results_from_cache": {
            p["pass"]: p["results_from_cache"] for p in passes
        },
        "warm_hit_rate": passes[-1]["result_hit_rate"],
        "warm_speedup": report["sweep"]["warm_speedup"],
        "predecode_speedup": report["predecode"]["speedup"],
        "event_engine_best_speedup": report["best_speedup"],
    }


def cmd_sweep(args):
    """Fan the experiment grid out over a process pool, persistently cached."""
    import os

    from repro.harness import cache as cache_mod
    from repro.harness.experiments import grid_tasks
    from repro.harness.runner import clear_cache
    from repro.harness.supervisor import (
        RetryPolicy,
        SweepInterrupted,
        supervised_sweep,
    )
    from repro.harness.sweep import run_sweep

    cache_mod.configure(args.cache_dir, enabled=not args.no_cache)
    if args.no_cache:
        # --no-cache is a contract: nothing persisted may serve this run,
        # and nothing stale may survive it.
        clear_cache(disk=True)
    if args.max_crash_dumps is not None:
        from repro.guardrails.crashdump import configure_rotation

        configure_rotation(args.max_crash_dumps)
    try:
        tasks = grid_tasks(args.names or None)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1

    def progress(done, total, task_id, status, seconds):
        if not args.quiet:
            print(f"[{done}/{total}] {status:>5}  {task_id}  "
                  f"({seconds:.2f}s)", file=sys.stderr)

    supervised = bool(args.supervised or args.resume or args.checkpoint)
    if supervised:
        checkpoint = args.checkpoint or os.path.join(
            cache_mod.cache_root(), "sweep-checkpoint.jsonl"
        )
        quarantine = args.diagnostics or os.path.join(
            cache_mod.cache_root(), "quarantine", "sweep"
        )
        policy = RetryPolicy(max_attempts=args.retries,
                             retry_budget=args.retry_budget)
        try:
            report = supervised_sweep(
                tasks, jobs=args.jobs, progress=progress,
                checkpoint=checkpoint, resume=args.resume, policy=policy,
                quarantine_dir=quarantine,
            )
        except SweepInterrupted as exc:
            print(f"sweep interrupted: {exc}; checkpoint journal kept at "
                  f"{checkpoint} — rerun with --resume to continue",
                  file=sys.stderr)
            return 3
        if args.manifest:
            with open(args.manifest, "wb") as handle:
                handle.write(report.manifest_bytes())
        failed = report.manifest["failed"]
    else:
        report = run_sweep(tasks, jobs=args.jobs, progress=progress,
                           diagnostics_dir=args.diagnostics)
        failed = report.manifest["failed"]

    payload = report.as_dict()
    payload["result_hit_rate"] = round(report.result_hit_rate(), 4)
    if not args.full_results:
        payload.pop("results")
    text = json.dumps(payload, indent=2)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    if not report.ok:
        verb = "quarantined" if supervised else "failures"
        print(f"sweep completed with {verb}: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    if args.min_hit_rate is not None and \
            report.result_hit_rate() < args.min_hit_rate:
        print(f"result cache hit rate {report.result_hit_rate():.2%} below "
              f"required {args.min_hit_rate:.2%}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args):
    """Run the asyncio simulation-as-a-service job server (blocking)."""
    from repro.harness import cache as cache_mod
    from repro.serve.server import run_server

    cache_mod.configure(args.cache_dir, enabled=not args.no_cache)
    quota_rate = args.quota_rate if args.quota_rate > 0 else None
    run_server(host=args.host, port=args.port, pool_jobs=args.jobs,
               quota_rate=quota_rate, quota_burst=args.quota_burst,
               announce=lambda line: print(line, file=sys.stderr, flush=True))
    return 0


def cmd_cache(args):
    """Persistent-cache maintenance: integrity scan/repair, stats, clear."""
    from repro.harness import cache as cache_mod

    root = args.cache_dir or cache_mod.default_cache_dir()
    if args.cache_command == "fsck":
        report = cache_mod.fsck(root, repair=args.repair)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            for name, layer in sorted(report["layers"].items()):
                print(f"{name}: {layer['scanned']} scanned, "
                      f"{layer['valid']} valid, {len(layer['stale'])} stale, "
                      f"{len(layer['corrupt'])} corrupt, "
                      f"{len(layer['orphan_tmp'])} orphan tmp")
                for path in layer["corrupt"]:
                    print(f"  corrupt: {path}")
                if args.repair:
                    print(f"  quarantined {len(layer['quarantined'])}, "
                          f"deleted {len(layer['deleted'])}")
            print(f"quarantine holds {len(report['quarantine'])} entries")
            print("OK" if report["ok"] else
                  "FAIL: corrupt entries on the live path "
                  "(rerun with --repair to quarantine them)")
        return 0 if report["ok"] else 1
    if args.cache_command == "clear":
        cache_mod.configure(root, enabled=cache_mod.is_enabled())
        cache_mod.clear_persistent()
        print(f"cleared persistent cache under {root}")
        return 0
    print("cache: pass a subcommand (fsck, clear)", file=sys.stderr)
    return 2


def cmd_chaos(args):
    """Seeded chaos campaign against the supervised sweep layer."""
    from repro.harness.chaos import QUICK_SCENARIOS, run_chaos_campaign

    scenarios = args.scenarios or None
    if args.quick and not scenarios:
        scenarios = list(QUICK_SCENARIOS)

    def progress(name, ok, wall_s):
        if not args.quiet:
            print(f"  {'ok  ' if ok else 'FAIL'} {name} ({wall_s:.2f}s)",
                  file=sys.stderr)

    try:
        report = run_chaos_campaign(
            seed=args.seed, scenarios=scenarios, jobs=args.jobs,
            workdir=args.workdir, keep_workdir=args.workdir is not None,
            progress=progress,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
    print(report.text())
    return 0 if report.ok else 1


def cmd_isa(args):
    """ISA registry introspection: list descriptors, encoding density."""
    if args.isa_command == "list":
        rows = [
            {
                "name": d.name,
                "display": d.display_name,
                "registers": d.register_model,
                "frontend": d.frontend,
                "targets": ",".join(d.targets),
                "binaries": ",".join(d.binary_labels),
                "static_verifier": "yes" if d.has_static_check else "no",
                "opcodes": len(d.opcodes),
            }
            for d in isa_registry.descriptors()
        ]
        if args.json:
            print(json.dumps({"isas": rows}, indent=2))
        else:
            from repro.harness.reporting import format_table

            print(format_table(rows, title="Registered ISAs"))
        return 0
    if args.isa_command == "density":
        from repro.isa.density import DEFAULT_WORKLOADS, density_report

        report = density_report(
            workloads=tuple(args.workloads) if args.workloads
            else DEFAULT_WORKLOADS,
        )
        if args.json:
            print(json.dumps({"rows": report["rows"]}, indent=2))
        else:
            print(report["text"])
        return 0
    print("isa: pass a subcommand (list, density)", file=sys.stderr)
    return 2


def cmd_experiments(args):
    from repro.harness import ALL_EXPERIMENTS

    names = args.names or sorted(ALL_EXPERIMENTS)
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choose from "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 1
        result = runner()
        print(result["text"])
        print()
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="straight",
        description="STRAIGHT (MICRO 2018) reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="mini-C source file ('-' for stdin)")
        p.add_argument("--target", choices=TARGETS, default="straight")
        p.add_argument("--isa", choices=ISA_NAMES, default=None,
                       help="compile for this registered ISA's default "
                            "target (overrides --target)")
        p.add_argument("--max-distance", type=int, default=1023)

    p_compile = sub.add_parser("compile", help="emit assembly")
    add_common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_disasm = sub.add_parser("disasm", help="emit the linked image listing")
    add_common(p_disasm)
    p_disasm.set_defaults(func=cmd_disasm)

    p_run = sub.add_parser("run", help="run on the functional simulator")
    add_common(p_run)
    p_run.add_argument("--max-steps", type=int, default=50_000_000)
    p_run.add_argument("--compiled", action="store_true",
                       help="force the threaded-code fast path on")
    p_run.add_argument("--no-compiled", action="store_true",
                       help="force the baseline step loop (overrides "
                            "STRAIGHT_FASTPATH)")
    p_run.add_argument("--sampled", action="store_true",
                       help="sampled timing run (SMARTS-style): fast-forward "
                            "on the compiled interpreter between "
                            "cycle-accurate windows; prints stats JSON")
    p_run.add_argument("--core", default="SS-2way",
                       help="Table I core for --sampled")
    p_run.add_argument("--sampling-period", type=int, default=8000,
                       help="instructions per sampling stratum")
    p_run.add_argument("--sampling-window", type=int, default=2000,
                       help="measured instructions per window")
    p_run.add_argument("--sampling-warmup", type=int, default=600,
                       help="detailed warmup instructions per window")
    p_run.add_argument("--sampling-cooldown", type=int, default=300,
                       help="detailed cooldown instructions per window")
    p_run.add_argument("--seed", type=int, default=0,
                       help="window-placement seed for --sampled")
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="dump the dynamic instruction trace, or (with --core) write a "
             "Kanata pipeline log from a timing run",
    )
    p_trace.add_argument("file", nargs="?", default=None,
                         help="mini-C source file ('-' for stdin)")
    p_trace.add_argument("--target", choices=TARGETS, default="straight")
    p_trace.add_argument("--max-distance", type=int, default=1023)
    p_trace.add_argument("--workload", default=None,
                         help="registry workload instead of a source file")
    p_trace.add_argument("--iterations", type=int, default=None,
                         help="workload scale override")
    p_trace.add_argument("--max-steps", type=int, default=50_000_000)
    p_trace.add_argument("--limit", type=int, default=None,
                         help="print at most N entries (functional mode)")
    p_trace.add_argument("--core", default=None,
                         help="Table I core name; switches to pipeline-trace "
                              "mode")
    p_trace.add_argument("--kanata", metavar="PATH", default="trace.kanata",
                         help="Kanata log output path (pipeline mode; "
                              "default: trace.kanata)")
    p_trace.add_argument("--attribution", action="store_true",
                         help="also attach the stall-attribution accountant")
    p_trace.add_argument("--cold", action="store_true",
                         help="skip cache warmup (pipeline mode)")
    p_trace.add_argument("--guardrails", action="store_true",
                         help="run under invariant checkers + lockstep")
    p_trace.add_argument("--json", action="store_true",
                         help="machine-readable summary on stdout "
                              "(pipeline mode)")
    p_trace.set_defaults(func=cmd_trace)

    p_profile = sub.add_parser(
        "profile",
        help="hot-region profile + top-down stall attribution (timing run)",
    )
    p_profile.add_argument("file", nargs="?", default=None,
                           help="mini-C source file ('-' for stdin)")
    p_profile.add_argument("--target", choices=TARGETS, default="straight")
    p_profile.add_argument("--workload", default=None,
                           help="registry workload instead of a source file")
    p_profile.add_argument("--iterations", type=int, default=None,
                           help="workload scale override")
    p_profile.add_argument("--core", default="STRAIGHT-2way",
                           help="Table I core name")
    p_profile.add_argument("--top", type=int, default=10,
                           help="hot-PC rows to report")
    p_profile.add_argument("--cold", action="store_true",
                           help="skip cache warmup")
    p_profile.add_argument("--guardrails", action="store_true",
                           help="run under invariant checkers + lockstep")
    p_profile.add_argument("--json", action="store_true",
                           help="machine-readable report on stdout")
    p_profile.set_defaults(func=cmd_profile)

    p_verify = sub.add_parser(
        "verify",
        help="statically verify STRAIGHT binaries (distance discipline, "
             "calling convention, lints)",
    )
    p_verify.add_argument("file", nargs="?", default=None,
                          help="mini-C source file ('-' for stdin)")
    p_verify.add_argument("--target", choices=TARGETS + ("both",),
                          default="straight")
    p_verify.add_argument("--isa", choices=ISA_NAMES, default=None,
                          help="verify this registered ISA's targets "
                               "(overrides --target)")
    p_verify.add_argument("--max-distance", type=int, default=1023)
    p_verify.add_argument("--all-shipped", action="store_true",
                          help="verify every shipped workload/example of the "
                               "statically-verifiable ISAs (STRAIGHT at "
                               "max_distance 1023 and 31)")
    p_verify.add_argument("--lint", action="store_true",
                          help="also run the advisory lint passes")
    p_verify.add_argument("--json", action="store_true",
                          help="machine-readable report on stdout")
    p_verify.add_argument("--verbose", action="store_true",
                          help="print every diagnostic, not just errors")
    p_verify.add_argument("--mutants", type=int, default=0,
                          help="also run the ISA's seeded mutation campaign "
                               "of N corrupted copies (single target only)")
    p_verify.add_argument("--seed", type=int, default=20260805,
                          help="mutation campaign RNG seed")
    p_verify.add_argument("--min-detection", type=float, default=None,
                          help="fail below this campaign detection rate "
                               "(default: 0.95 STRAIGHT, 0.90 otherwise)")
    p_verify.set_defaults(func=cmd_verify)

    p_analyze = sub.add_parser(
        "analyze",
        help="full static-analysis stack: verifier + lints + static "
             "ILP/IPC bound",
    )
    p_analyze.add_argument("file", nargs="?", default=None,
                           help="mini-C source file ('-' for stdin)")
    p_analyze.add_argument("--workload", choices=("dhrystone", "coremark"),
                           default=None)
    p_analyze.add_argument("--target", choices=TARGETS, default=None,
                           help="single compilation target (default: the "
                                "ISA's first target)")
    p_analyze.add_argument("--isa", choices=ISA_NAMES, default="straight")
    p_analyze.add_argument("--max-distance", type=int, default=1023)
    p_analyze.add_argument("--no-lint", action="store_true",
                           help="skip the advisory lint tier")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable report on stdout")
    p_analyze.set_defaults(func=cmd_analyze)

    p_sim = sub.add_parser("simulate", help="cycle-level timing run (JSON)")
    p_sim.add_argument("file", help="mini-C source file ('-' for stdin)")
    p_sim.add_argument("--core", default="STRAIGHT-4way",
                       help="Table I core name")
    p_sim.add_argument("--raw", action="store_true",
                       help="use the RAW (no RE+) STRAIGHT binary")
    p_sim.add_argument("--cold", action="store_true",
                       help="skip cache warmup")
    p_sim.add_argument("--guardrails", action="store_true",
                       help="run under invariant checkers + lockstep")
    p_sim.set_defaults(func=cmd_simulate)

    p_guard = sub.add_parser(
        "guardrails",
        help="guarded smoke run (lockstep + checkers) or fault campaign",
    )
    p_guard.add_argument("--workload", default="dhrystone",
                         help="registry workload for the smoke run")
    p_guard.add_argument("--core", default="STRAIGHT-2way",
                         help="Table I core name")
    p_guard.add_argument("--iterations", type=int, default=None,
                         help="workload scale override")
    p_guard.add_argument("--faults", type=int, default=0,
                         help="run a fault-injection campaign of N faults")
    p_guard.add_argument("--seed", type=int, default=20260805,
                         help="campaign RNG seed")
    p_guard.add_argument("--timeout", type=float, default=None,
                         help="wall-clock budget in seconds")
    p_guard.set_defaults(func=cmd_guardrails)

    p_bench = sub.add_parser(
        "bench",
        help="simulator-throughput benchmark (stepped vs. event-driven)",
    )
    p_bench.add_argument("--smoke", action="store_true",
                         help="run the small stall-heavy workload set")
    p_bench.add_argument("--core", default="SS-2way",
                         help="Table I core name")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="best-of-N wall-clock timing")
    p_bench.add_argument("--workload", action="append",
                         help="limit to this bench workload (repeatable)")
    p_bench.add_argument("--json", metavar="PATH",
                         help="also write the report to PATH")
    p_bench.add_argument("--sweep-json", metavar="PATH",
                         default="BENCH_sweep.json",
                         help="where to write the sweep/cache scorecard "
                              "(default: BENCH_sweep.json)")
    p_bench.add_argument("--sweep-jobs", type=int, default=None,
                         help="process-pool width for the sweep section")
    p_bench.add_argument("--max-obs-overhead", type=float, default=None,
                         metavar="PCT",
                         help="fail if the tracing-disabled observability "
                              "overhead exceeds PCT percent")
    p_bench.add_argument("--fastpath", nargs="?", const="smoke",
                         choices=("smoke", "full"), default=None,
                         help="add the compiled+sampled fastpath scorecard "
                              "(smoke subset by default; 'full' runs the "
                              "whole golden grid)")
    p_bench.add_argument("--fastpath-json", metavar="PATH", default=None,
                         help="also write the fastpath scorecard to PATH "
                              "(the BENCH_fastpath.json artifact)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="sampling seed for the fastpath scorecard")
    p_bench.add_argument("--min-fastpath-speedup", type=float, default=None,
                         metavar="X",
                         help="fail if the fastpath end-to-end speedup "
                              "falls below X")
    p_bench.add_argument("--serve", action="store_true",
                         help="bench the serve tier: spin an in-process "
                              "server, drive the loadgen, write the "
                              "BENCH_serve.json scorecard")
    p_bench.add_argument("--serve-json", metavar="PATH",
                         default="BENCH_serve.json",
                         help="serve scorecard path (default "
                              "BENCH_serve.json)")
    p_bench.add_argument("--serve-profile", choices=("quick", "full"),
                         default="quick",
                         help="loadgen profile for --serve (default quick)")
    p_bench.add_argument("--min-serve-dedup-rate", type=float, default=None,
                         help="gate: floor on the repeated-phase "
                              "dedup/cache-served rate (--serve)")
    p_bench.add_argument("--max-serve-p99-ms", type=float, default=None,
                         help="gate: ceiling on overall p99 request "
                              "latency in ms (--serve)")
    p_bench.add_argument("--max-sampling-error", type=float, default=None,
                         metavar="PCT",
                         help="fail if the worst sampled-vs-full IPC error "
                              "exceeds PCT percent")
    p_bench.set_defaults(func=cmd_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="run the experiment grid through the parallel sweep engine",
    )
    p_sweep.add_argument("names", nargs="*",
                         help="experiment ids whose grids to run "
                              "(default: every registered grid)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the persistent cache AND wipe any "
                              "previously persisted entries")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="persistent cache root (default: "
                              "$STRAIGHT_CACHE_DIR or ~/.cache/straight-repro)")
    p_sweep.add_argument("--json", metavar="PATH",
                         help="write the report to PATH instead of stdout")
    p_sweep.add_argument("--full-results", action="store_true",
                         help="include every task payload in the report")
    p_sweep.add_argument("--diagnostics", metavar="DIR",
                         help="write crash dumps + manifest here on failure")
    p_sweep.add_argument("--min-hit-rate", type=float, default=None,
                         help="fail unless this fraction of results came "
                              "from the persistent cache (CI warm check)")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-task progress on stderr")
    p_sweep.add_argument("--supervised", action="store_true",
                         help="run under the fault-tolerant supervisor "
                              "(retry/backoff, quarantine, checkpointing)")
    p_sweep.add_argument("--resume", action="store_true",
                         help="replay the checkpoint journal and continue an "
                              "interrupted sweep (implies --supervised)")
    p_sweep.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="checkpoint journal path (implies --supervised; "
                              "default: <cache-root>/sweep-checkpoint.jsonl)")
    p_sweep.add_argument("--retries", type=int, default=3,
                         help="max attempts per task for transient failures "
                              "(supervised mode; default 3)")
    p_sweep.add_argument("--retry-budget", type=int, default=32,
                         help="total extra attempts across the sweep "
                              "(supervised mode; default 32)")
    p_sweep.add_argument("--manifest", metavar="PATH", default=None,
                         help="write the canonical (resume-stable) manifest "
                              "to PATH (supervised mode)")
    p_sweep.add_argument("--max-crash-dumps", type=int, default=None,
                         help="cap crash dumps per diagnostics directory "
                              "(oldest evicted; default 200)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP job server",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8712,
                         help="bind port (default 8712; 0 = ephemeral)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="sweep-pool worker processes "
                              "(default: CPU count)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the persistent result/artifact cache")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent cache root (default: "
                              "$STRAIGHT_CACHE_DIR or ~/.cache/straight-repro)")
    p_serve.add_argument("--quota-rate", type=float, default=50.0,
                         help="per-client sustained requests/second "
                              "(default 50; 0 disables quotas)")
    p_serve.add_argument("--quota-burst", type=float, default=200.0,
                         help="per-client token-bucket burst (default 200)")
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache",
        help="persistent-cache maintenance (integrity fsck, clear)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_fsck = cache_sub.add_parser(
        "fsck",
        help="scan every cache entry end-to-end; report (and with --repair "
             "quarantine) corrupt entries",
    )
    p_fsck.add_argument("--cache-dir", default=None,
                        help="cache root (default: $STRAIGHT_CACHE_DIR or "
                             "~/.cache/straight-repro)")
    p_fsck.add_argument("--repair", action="store_true",
                        help="quarantine corrupt entries and delete stale "
                             "ones / orphaned temp files")
    p_fsck.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_fsck.set_defaults(func=cmd_cache)
    p_cclear = cache_sub.add_parser("clear", help="wipe both cache layers")
    p_cclear.add_argument("--cache-dir", default=None,
                          help="cache root (default: $STRAIGHT_CACHE_DIR or "
                               "~/.cache/straight-repro)")
    p_cclear.set_defaults(func=cmd_cache)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaign: inject worker kills, deadline expiries, "
             "cache corruption and mid-sweep interrupts; assert recovery",
    )
    p_chaos.add_argument("--seed", type=int, default=20260808,
                         help="campaign RNG seed")
    p_chaos.add_argument("--scenarios", action="append", metavar="NAME",
                         help="run only this scenario (repeatable)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="run the CI smoke subset (worker kill + cache "
                              "corruption + interrupt/resume)")
    p_chaos.add_argument("--jobs", type=int, default=2,
                         help="pool width for pool-based scenarios")
    p_chaos.add_argument("--workdir", metavar="DIR", default=None,
                         help="keep journals/quarantine evidence here "
                              "(default: temp dir, removed afterwards)")
    p_chaos.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report to PATH")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-scenario progress on stderr")
    p_chaos.set_defaults(func=cmd_chaos)

    p_isa = sub.add_parser(
        "isa",
        help="ISA registry: list descriptors, encoding-density report",
    )
    isa_sub = p_isa.add_subparsers(dest="isa_command", required=True)
    p_ilist = isa_sub.add_parser("list", help="registered ISA descriptors")
    p_ilist.add_argument("--json", action="store_true",
                         help="machine-readable listing on stdout")
    p_ilist.set_defaults(func=cmd_isa)
    p_idensity = isa_sub.add_parser(
        "density",
        help="bits/instruction encoding density per registered ISA "
             "(descriptor-table driven)",
    )
    p_idensity.add_argument("--workloads", nargs="*", default=None,
                            help="registry workloads to measure "
                                 "(default: dhrystone coremark)")
    p_idensity.add_argument("--json", action="store_true",
                            help="machine-readable report on stdout")
    p_idensity.set_defaults(func=cmd_isa)

    p_exp = sub.add_parser("experiments", help="regenerate paper figures")
    p_exp.add_argument("names", nargs="*", help="experiment ids (default all)")
    p_exp.set_defaults(func=cmd_experiments)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
