"""Command-line tools: compile, disassemble, run, and simulate programs.

Installed as the ``straight`` console script (see pyproject.toml), or run
with ``python -m repro.tools.cli``.
"""

from repro.tools.cli import main

__all__ = ["main"]
