"""``bb`` assembler: the RV32IM grammar plus the ``bb <count>`` header."""

from repro.common.errors import AsmError
from repro.isa.asmcore import AsmUnit, parse_assembly_text
from repro.riscv.assembler import make_instr_parser
from repro.bb.isa import BInstr, OPCODES

__all__ = ["AsmUnit", "parse_assembly"]

_rv_line = make_instr_parser(OPCODES, BInstr)


def _parse_instr_line(line, lineno):
    head, _, rest = line.partition(" ")
    if head.upper() == "BB":
        token = rest.strip()
        if not token.isdigit():
            raise AsmError(
                f"BB takes one non-negative instruction count, got {rest!r}",
                line=lineno,
            )
        return BInstr("BB", rd=0, imm=int(token))
    return _rv_line(line, lineno)


def parse_assembly(text):
    """Parse ``bb`` assembly text into an :class:`AsmUnit`."""
    return parse_assembly_text(text, _parse_instr_line)
