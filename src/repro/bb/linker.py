"""``bb`` linker: the RV32IM linker producing a :class:`BbProgram`.

Linking is unchanged — ``BB`` headers are ordinary U-format instructions and
the label-offset resolution rebuilds instructions via ``type(instr)``, so
:class:`~repro.bb.isa.BInstr` survives.  The startup stub is the RV32IM stub
run through the bbify pass.
"""

from repro.riscv.linker import (
    ECALL_EXIT,
    ECALL_OUT,
    RiscvProgram,
    link_program as _rv_link_program,
    startup_stub as _rv_startup_stub,
)
from repro.bb.bbify import bbify_unit

__all__ = ["BbProgram", "ECALL_OUT", "ECALL_EXIT", "link_program",
           "startup_stub"]


class BbProgram(RiscvProgram):
    """A linked ``bb`` executable image (RV32IM + block headers)."""


def startup_stub():
    """Runtime entry: the RV32IM stub with block headers."""
    return bbify_unit(_rv_startup_stub())


def link_program(units, data_words=(), data_base=0):
    """Link bbified assembly units (startup stub first) into a program."""
    return _rv_link_program(
        units, data_words=data_words, data_base=data_base, program_cls=BbProgram
    )
