"""``bb`` binary encoding: the RV32IM bit scrambles over the extended table.

``encode`` is inherited unchanged — it is table-driven off each
instruction's spec, and ``BB`` is an ordinary U-format instruction in the
custom-0 opcode space.  ``decode`` is the shared decoder instantiated with
the extended table and :class:`~repro.bb.isa.BInstr`.
"""

from repro.riscv.encoding import encode, make_decoder
from repro.bb.isa import BInstr, OPCODES

__all__ = ["encode", "decode"]

decode = make_decoder(OPCODES, BInstr)
