"""``bb`` analysis support: RV32IM's protocol plus block headers.

BasicBlocker code is RV32IM with architecturally no-op ``BB`` headers; the
gpr control and dataflow protocols carry over unchanged (the gpr support
already treats ``BB`` as reading and writing nothing).  Only the registry
name differs, so diagnostics and reports attribute findings to ``bb``.
"""

from repro.riscv.analysis import GprAnalysisSupport


class BbAnalysisSupport(GprAnalysisSupport):
    """Control + dataflow protocol of the ``bb`` ISA."""

    name = "bb"
