"""Registry descriptor for the BasicBlocker-style ``bb`` ISA."""

from repro.isa import IsaDescriptor, register
from repro.riscv.descriptor import FORMAT_FIELDS as RV_FORMAT_FIELDS
from repro.riscv.predecode import decode_program
from repro.bb.isa import OPCODES
from repro.bb.assembler import parse_assembly
from repro.bb.encoding import decode, encode
from repro.bb.interpreter import BbInterpreter
from repro.bb.linker import link_program, startup_stub
from repro.bb.verify import verify_program

#: ``BB`` is an ordinary U-format instruction; the format set is RV32IM's.
FORMAT_FIELDS = dict(RV_FORMAT_FIELDS)


def _compile_module(module, max_distance=None, **opts):
    from repro.compiler.bb_backend import compile_to_bb

    return compile_to_bb(module, **opts)


def _make_interpreter(program, collect_trace=False, **kw):
    return BbInterpreter(program, collect_trace=collect_trace, **kw)


def _static_check(program, lint=False):
    return verify_program(program, lint=lint)


def _analysis():
    from repro.bb.analysis import BbAnalysisSupport

    return BbAnalysisSupport()


def _cfg_2way(**overrides):
    from repro.core.configs import bb_2way

    return bb_2way(**overrides)


def _cfg_4way(**overrides):
    from repro.core.configs import bb_4way

    return bb_4way(**overrides)


DESCRIPTOR = register(
    IsaDescriptor(
        name="bb",
        display_name="BB (RV32IM + block headers)",
        register_model="gpr",
        opcodes=OPCODES,
        format_fields=FORMAT_FIELDS,
        parse_assembly=parse_assembly,
        link=link_program,
        startup_stub=startup_stub,
        encode=encode,
        decode=decode,
        make_interpreter=_make_interpreter,
        compile_module=_compile_module,
        binary_labels={"BB": {}},
        targets={"bb": {}},
        frontend="bb",
        config_factories={"2way": _cfg_2way, "4way": _cfg_4way},
        static_check=_static_check,
        predecode=decode_program,
        analysis=_analysis,
    )
)
