"""The ``bb`` ISA: BasicBlocker-style RV32IM with announced basic blocks.

See :mod:`repro.bb.isa` for the instruction set, :mod:`repro.bb.bbify` for
the block-header annotation pass, :mod:`repro.bb.verify` for the static
structure proof, and :mod:`repro.bb.descriptor` for the registry plugin.
"""

from repro.bb.isa import BInstr, OPCODES, BB_OPCODE
from repro.bb.assembler import parse_assembly
from repro.bb.encoding import encode, decode
from repro.bb.bbify import bbify_unit, bbify_units
from repro.bb.linker import BbProgram, link_program, startup_stub
from repro.bb.interpreter import BbInterpreter
from repro.bb.verify import verify_program

__all__ = [
    "BInstr",
    "OPCODES",
    "BB_OPCODE",
    "parse_assembly",
    "encode",
    "decode",
    "bbify_unit",
    "bbify_units",
    "BbProgram",
    "link_program",
    "startup_stub",
    "BbInterpreter",
    "verify_program",
]
