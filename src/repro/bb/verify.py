"""Static verifier for ``bb`` binaries: the block-header structure proof.

A linked ``bb`` program is correct for the BasicBlocker front end iff the
text segment is partitioned into announced blocks:

* B1 — the entry instruction is a ``BB`` header.
* B2 — every ``BB`` header's count equals the number of instructions to the
  next header (or to the end of text): headers partition the text exactly.
* B3 — no control transfer occurs mid-block: the instruction after every
  branch/jump is the next ``BB`` header.
* B4 — every statically-resolvable control-transfer target (labels, and the
  PC-relative targets of B-format branches and JAL) lands on a ``BB``
  header, and inside the text segment.

The returned :class:`BbReport` duck-types the STRAIGHT verifier's report
(``has_errors()`` / ``text(max_items)`` / ``as_dict()``) so the CLI and
guardrail layers consume either without caring which ISA produced it.
"""

from repro.common.layout import WORD_BYTES
from repro.bb.bbify import CONTROL_CLASSES

#: code -> title (append-only, BBV0xx: structure proofs).
CODES = {
    "BBV001": "entry is not a BB header",
    "BBV002": "BB header count does not match block extent",
    "BBV003": "control transfer is not followed by a BB header",
    "BBV004": "control-transfer target is not a BB header",
}


class BbDiagnostic:
    """One block-structure finding; every ``bb`` diagnostic is an error."""

    __slots__ = ("code", "location", "message", "index")
    severity = "error"

    def __init__(self, code, location, message, index):
        self.code = code
        self.location = location
        self.message = message
        self.index = index

    @property
    def title(self):
        return CODES[self.code]

    def render(self):
        return f"{self.location}: error {self.code}: {self.message}"

    def as_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "title": self.title,
            "message": self.message,
            "location": self.location,
            "index": self.index,
        }

    def __repr__(self):
        return f"BbDiagnostic({self.code}, {self.location!r}, {self.message!r})"


class BbReport:
    """Findings of one ``bb`` block-structure verification run."""

    def __init__(self, program):
        self.program = program
        self.diagnostics = []
        self.stats = {}

    def emit(self, code, index, message):
        pc = self.program.text_base + index * WORD_BYTES
        self.diagnostics.append(BbDiagnostic(code, f"pc={pc:#x}", message, index))

    def has_errors(self):
        return bool(self.diagnostics)

    def errors(self):
        return list(self.diagnostics)

    def sorted(self):
        return sorted(self.diagnostics, key=lambda d: (d.code, d.index))

    def counts(self):
        return {"error": len(self.diagnostics), "warning": 0, "info": 0}

    def summary(self):
        return f"{len(self.diagnostics)} error(s), 0 warning(s), 0 info"

    def text(self, max_items=None):
        lines = [d.render() for d in self.sorted()]
        if max_items is not None and len(lines) > max_items:
            dropped = len(lines) - max_items
            lines = lines[:max_items] + [f"... ({dropped} more)"]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self):
        return {
            "counts": self.counts(),
            "stats": dict(self.stats),
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }


def verify_program(program, lint=False):
    """Prove the block-header invariants of a linked ``bb`` program.

    ``lint`` is accepted for hook-signature compatibility; the ``bb``
    verifier has no lint tier.
    """
    report = BbReport(program)
    instrs = program.instrs
    n = len(instrs)
    headers = [i for i, instr in enumerate(instrs) if instr.mnemonic == "BB"]
    header_set = set(headers)
    report.stats["instructions"] = n
    report.stats["blocks"] = len(headers)

    if not instrs or instrs[0].mnemonic != "BB":
        report.emit("BBV001", 0, "text segment does not start with a BB header")

    # B2: headers partition the text exactly.
    for pos, start in enumerate(headers):
        end = headers[pos + 1] if pos + 1 < len(headers) else n
        body = end - start - 1
        announced = instrs[start].imm
        if announced != body:
            report.emit(
                "BBV002",
                start,
                f"BB announces {announced} instruction(s) but the block has"
                f" {body}",
            )

    for index, instr in enumerate(instrs):
        if instr.mnemonic == "BB":
            continue
        # B3: blocks end exactly at control transfers.
        if instr.op_class in CONTROL_CLASSES:
            if index + 1 < n and index + 1 not in header_set:
                report.emit(
                    "BBV003",
                    index,
                    f"{instr.mnemonic} is not followed by a BB header",
                )
        # B4: static targets land on headers.
        spec = instr.spec
        if spec.fmt in ("B", "J") and instr.imm is not None:
            target = index + instr.imm // WORD_BYTES
            if not 0 <= target < n:
                report.emit(
                    "BBV004",
                    index,
                    f"{instr.mnemonic} target leaves the text segment",
                )
            elif target not in header_set:
                report.emit(
                    "BBV004",
                    index,
                    f"{instr.mnemonic} target is not a BB header",
                )
    for label, index in program.labels.items():
        if index < n and index not in header_set:
            report.emit(
                "BBV004", index, f"label {label!r} is not a BB header"
            )
    return report
