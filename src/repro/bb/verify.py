"""Static verifier for ``bb`` binaries: the block-header structure proof.

A linked ``bb`` program is correct for the BasicBlocker front end iff the
text segment is partitioned into announced blocks:

* B1 — the entry instruction is a ``BB`` header.
* B2 — every ``BB`` header's count equals the number of instructions to the
  next header (or to the end of text): headers partition the text exactly.
* B3 — no control transfer occurs mid-block: the instruction after every
  branch/jump is the next ``BB`` header.
* B4 — every statically-resolvable control-transfer target (labels, and the
  PC-relative targets of B-format branches and JAL) lands on a ``BB``
  header, and inside the text segment.

Findings are emitted through the shared diagnostics framework
(:mod:`repro.analysis.diagnostics`) under the append-only ``BBV0xx``
codes, so the CLI, guardrail and campaign layers consume one report type
for every ISA.  Locations keep the historical ``pc=0x...`` form.
"""

from repro.common.layout import WORD_BYTES
from repro.analysis.diagnostics import Report
from repro.bb.bbify import CONTROL_CLASSES

#: The ``BBV0xx`` structure-proof codes (the catalog of record lives in
#: :data:`repro.analysis.diagnostics.CODES`; this keeps the historical
#: code -> title view).
from repro.analysis.diagnostics import CODES as _ALL_CODES

CODES = {
    code: title
    for code, (severity, title) in _ALL_CODES.items()
    if code.startswith("BBV")
}


def _emit(report, code, index, message):
    pc = report.program.text_base + index * WORD_BYTES
    report.emit(code, message, index=index, location=f"pc={pc:#x}")


def verify_program(program, lint=False):
    """Prove the block-header invariants of a linked ``bb`` program.

    ``lint`` is accepted for hook-signature compatibility; the ``bb``
    verifier has no lint tier.  Returns a
    :class:`~repro.analysis.diagnostics.Report`.
    """
    report = Report(program)
    instrs = program.instrs
    n = len(instrs)
    headers = [i for i, instr in enumerate(instrs) if instr.mnemonic == "BB"]
    header_set = set(headers)
    report.stats["instructions"] = n
    report.stats["blocks"] = len(headers)

    if not instrs or instrs[0].mnemonic != "BB":
        _emit(report, "BBV001", 0, "text segment does not start with a BB header")

    # B2: headers partition the text exactly.
    for pos, start in enumerate(headers):
        end = headers[pos + 1] if pos + 1 < len(headers) else n
        body = end - start - 1
        announced = instrs[start].imm
        if announced != body:
            _emit(
                report,
                "BBV002",
                start,
                f"BB announces {announced} instruction(s) but the block has"
                f" {body}",
            )

    for index, instr in enumerate(instrs):
        if instr.mnemonic == "BB":
            continue
        # B3: blocks end exactly at control transfers.
        if instr.op_class in CONTROL_CLASSES:
            if index + 1 < n and index + 1 not in header_set:
                _emit(
                    report,
                    "BBV003",
                    index,
                    f"{instr.mnemonic} is not followed by a BB header",
                )
        # B4: static targets land on headers.
        spec = instr.spec
        if spec.fmt in ("B", "J") and instr.imm is not None:
            target = index + instr.imm // WORD_BYTES
            if not 0 <= target < n:
                _emit(
                    report,
                    "BBV004",
                    index,
                    f"{instr.mnemonic} target leaves the text segment",
                )
            elif target not in header_set:
                _emit(
                    report,
                    "BBV004",
                    index,
                    f"{instr.mnemonic} target is not a BB header",
                )
    for label, index in program.labels.items():
        if index < n and index not in header_set:
            _emit(report, "BBV004", index, f"label {label!r} is not a BB header")
    return report
