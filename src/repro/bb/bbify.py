"""The bbify pass: annotate RV32IM assembly units with block headers.

Runs at the :class:`~repro.isa.asmcore.AsmUnit` level, after code generation
and before linking.  Basic-block heads are every labelled position (the
backend emits *all* control-transfer targets as labels) and every position
following a control transfer — including calls, since the callee returns to
the instruction after the ``jal``.  Each head gets a ``BB n`` header whose
immediate is the number of instructions in the block after the header;
labels stay *before* the header so branches land on the ``BB``, which is
exactly the invariant the static verifier (:mod:`repro.bb.verify`) proves.
"""

from repro.isa.asmcore import AsmUnit
from repro.bb.isa import BInstr

#: Timing classes that end a basic block.
CONTROL_CLASSES = ("branch", "jump")


def _convert(instr, instr_cls):
    """Rebuild ``instr`` as ``instr_cls`` (RV32IM fields carry over 1:1)."""
    if type(instr) is instr_cls:
        return instr
    return instr_cls(
        instr.mnemonic,
        rd=instr.rd,
        rs1=instr.rs1,
        rs2=instr.rs2,
        imm=instr.imm,
        label=instr.label,
    )


def bbify_unit(unit, instr_cls=BInstr):
    """A new unit with ``BB`` headers at every basic-block head.

    Instructions are rebuilt as ``instr_cls`` (so plain RV32IM backend
    output becomes ``bb`` code); per-instruction source origins carry over,
    headers have none.
    """
    origins = unit.instruction_origins()
    blocks = []  # (labels-before-head, [(instr, origin), ...])
    pending_labels = []
    current = None
    position = 0
    for kind, item in unit.items:
        if kind == "label":
            pending_labels.append(item)
            current = None
            continue
        if current is None:
            current = (pending_labels, [])
            pending_labels = []
            blocks.append(current)
        current[1].append((_convert(item, instr_cls), origins[position]))
        position += 1
        if item.op_class in CONTROL_CLASSES:
            current = None

    out = AsmUnit()
    for labels, body in blocks:
        for label in labels:
            out.add_label(label)
        out.add_instr(instr_cls("BB", rd=0, imm=len(body)))
        for instr, origin in body:
            out.add_instr(instr, origin)
    for label in pending_labels:  # trailing labels (none in backend output)
        out.add_label(label)
    # Function-level verifier facts survive bbification unchanged (they
    # carry no instruction indices, which headers would shift).
    out.verify_manifest = getattr(unit, "verify_manifest", None)
    return out


def bbify_units(units, instr_cls=BInstr):
    """bbify a list of units, preserving order."""
    return [bbify_unit(unit, instr_cls) for unit in units]
