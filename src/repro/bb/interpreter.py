"""``bb`` functional simulator: the RV32IM interpreter, extended table.

``BB`` headers pre-decode to :data:`~repro.riscv.predecode.RK_BB` no-ops, so
the whole execution engine is inherited; only the statistics grouping needs
the extended opcode table (headers count into the ``nop`` class).
"""

from repro.riscv.interpreter import RiscvInterpreter, RunResult
from repro.bb.isa import OPCODES

__all__ = ["BbInterpreter", "RunResult"]


class BbInterpreter(RiscvInterpreter):
    """Executes a linked :class:`~repro.bb.linker.BbProgram`."""

    OPCODES = OPCODES
