"""The ``bb`` instruction set: RV32IM plus BasicBlocker block headers.

BasicBlocker (Gruss et al., "BasicBlocker: ISA Redesign to Make
Spectre-Immune CPUs Faster") removes control-flow speculation by announcing
every basic block to the front end: a ``BB`` instruction at each block head
carries the block's instruction count, so fetch knows where the block ends
and control transfers resolve without prediction.  This reproduction borrows
the scheme as a third point of comparison between the renaming baseline and
STRAIGHT: a conventional register file and back end, but — like STRAIGHT's
two-path philosophy taken the opposite way — no speculative control flow.

``BB`` is encoded as a U-format instruction in the custom-0 opcode space
(``rd`` fixed to x0, ``imm`` = number of instructions in the block after the
header).  It is architecturally a no-op; its timing class is ``nop`` so the
pipeline charges fetch/decode/ROB occupancy but no execution.
"""

from repro.riscv.isa import (
    ABI_NAMES,
    OPCODES as RV_OPCODES,
    OpSpec,
    REG_NAMES,
    RInstr,
    reg_number,
)

__all__ = ["BB_OPCODE", "OPCODES", "BInstr", "REG_NAMES", "ABI_NAMES",
           "reg_number"]

#: The custom-0 major opcode hosts the block-header instruction.
BB_OPCODE = 0b0001011

#: RV32IM plus the ``BB`` block header.
OPCODES = dict(RV_OPCODES)
OPCODES["BB"] = OpSpec("BB", "U", BB_OPCODE, 0, 0, "nop")


class BInstr(RInstr):
    """One ``bb`` instruction: RV32IM semantics plus ``BB n`` headers."""

    __slots__ = ()

    OPCODES = OPCODES
    SET_NAME = "bb"

    def to_asm(self):
        if self.mnemonic == "BB":
            return f"bb {self.imm}"
        return super().to_asm()
