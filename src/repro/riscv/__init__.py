"""RV32IM subset: the conventional-superscalar baseline ISA.

The paper's "SS" models execute RV32IM; this package provides the ISA spec
with standard RISC-V encodings, an assembler, a linker, and a functional
instruction-set simulator that emits the shared trace format with *logical*
register identifiers (which the timing model's rename stage then maps to
physical registers — the work STRAIGHT eliminates).
"""

from repro.riscv.isa import RInstr, REG_NAMES, ABI_NAMES, reg_number, OPCODES
from repro.riscv.encoding import encode, decode
from repro.riscv.assembler import parse_assembly, AsmUnit
from repro.riscv.linker import link_program, RiscvProgram, startup_stub
from repro.riscv.interpreter import RiscvInterpreter

__all__ = [
    "RInstr",
    "REG_NAMES",
    "ABI_NAMES",
    "reg_number",
    "OPCODES",
    "encode",
    "decode",
    "parse_assembly",
    "AsmUnit",
    "link_program",
    "RiscvProgram",
    "startup_stub",
    "RiscvInterpreter",
]
