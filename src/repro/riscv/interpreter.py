"""RV32IM functional instruction-set simulator.

Shares exact ALU semantics with the STRAIGHT simulator and the IR constant
folder through :func:`repro.ir.passes.constfold.eval_binop`, so compiled
binaries for the two ISAs are bit-comparable on the output channel.
"""

from repro.common.bitops import wrap32
from repro.common.errors import SimulationError
from repro.common.layout import STACK_TOP, WORD_BYTES
from repro.common.trace import TraceEntry
from repro.ir.passes.constfold import eval_binop, eval_icmp
from repro.riscv.linker import ECALL_OUT, ECALL_EXIT

_R_BINOPS = {
    "ADD": "add",
    "SUB": "sub",
    "SLL": "shl",
    "XOR": "xor",
    "SRL": "lshr",
    "SRA": "ashr",
    "OR": "or",
    "AND": "and",
    "MUL": "mul",
    "DIV": "sdiv",
    "DIVU": "udiv",
    "REM": "srem",
    "REMU": "urem",
}
_I_BINOPS = {
    "ADDI": "add",
    "XORI": "xor",
    "ORI": "or",
    "ANDI": "and",
    "SLLI": "shl",
    "SRLI": "lshr",
    "SRAI": "ashr",
}
_BRANCH_PREDS = {
    "BEQ": "eq",
    "BNE": "ne",
    "BLT": "slt",
    "BGE": "sge",
    "BLTU": "ult",
    "BGEU": "uge",
}


class RunResult:
    """Outcome of an interpreter run."""

    def __init__(self, status, steps, output, exit_code=None):
        self.status = status  # 'exit' | 'limit'
        self.steps = steps
        self.output = output
        self.exit_code = exit_code

    def __repr__(self):
        return f"RunResult({self.status}, steps={self.steps})"


class RiscvInterpreter:
    """Executes a linked :class:`~repro.riscv.linker.RiscvProgram`."""

    def __init__(self, program, collect_trace=False):
        self.program = program
        self.regs = [0] * 32
        self.regs[2] = STACK_TOP
        self.pc_index = program.index_of_pc(program.entry_pc)
        self.memory = {}
        for offset, word in enumerate(program.data_words):
            self.memory[(program.data_base + offset * WORD_BYTES) // 4] = wrap32(word)
        self.output = []
        self.collect_trace = collect_trace
        self.trace = []
        self.halted = False
        self.exit_code = None
        self.mnemonic_counts = {}

    # -- helpers --------------------------------------------------------------

    def _pc(self):
        return self.program.text_base + self.pc_index * WORD_BYTES

    def _read(self, reg):
        return 0 if reg == 0 else self.regs[reg]

    def _write(self, reg, value):
        if reg != 0:
            self.regs[reg] = wrap32(value)

    def _load_word(self, addr):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned load {addr:#x}")
        return self.memory.get(addr // 4, 0)

    def _store_word(self, addr, value):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned store {addr:#x}")
        self.memory[addr // 4] = wrap32(value)

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps=10_000_000):
        """Run until exit ECALL or ``max_steps``; returns a :class:`RunResult`."""
        steps = 0
        instrs = self.program.instrs
        n_instrs = len(instrs)
        while not self.halted and steps < max_steps:
            if not 0 <= self.pc_index < n_instrs:
                raise SimulationError(f"pc out of text segment: {self._pc():#x}")
            self.step(instrs[self.pc_index])
            steps += 1
        return RunResult(
            "exit" if self.halted else "limit", steps, self.output, self.exit_code
        )

    def step(self, instr):
        """Execute one instruction, updating architectural state."""
        m = instr.mnemonic
        pc = self._pc()
        next_index = self.pc_index + 1
        taken = False
        target_pc = None
        mem_addr = None
        dest = None
        srcs = []
        is_call = False
        is_return = False
        store_value = None

        if m in _R_BINOPS:
            value = eval_binop(
                _R_BINOPS[m], self._read(instr.rs1), self._read(instr.rs2)
            )
            self._write(instr.rd, value)
            dest, srcs = instr.rd, [instr.rs1, instr.rs2]
        elif m in ("SLT", "SLTU"):
            pred = "slt" if m == "SLT" else "ult"
            value = eval_icmp(pred, self._read(instr.rs1), self._read(instr.rs2))
            self._write(instr.rd, value)
            dest, srcs = instr.rd, [instr.rs1, instr.rs2]
        elif m in _I_BINOPS:
            value = eval_binop(
                _I_BINOPS[m], self._read(instr.rs1), wrap32(instr.imm)
            )
            self._write(instr.rd, value)
            dest, srcs = instr.rd, [instr.rs1]
        elif m in ("SLTI", "SLTIU"):
            pred = "slt" if m == "SLTI" else "ult"
            value = eval_icmp(pred, self._read(instr.rs1), wrap32(instr.imm))
            self._write(instr.rd, value)
            dest, srcs = instr.rd, [instr.rs1]
        elif m == "LUI":
            self._write(instr.rd, instr.imm << 12)
            dest = instr.rd
        elif m == "AUIPC":
            self._write(instr.rd, wrap32(pc + (instr.imm << 12)))
            dest = instr.rd
        elif m == "LW":
            mem_addr = wrap32(self._read(instr.rs1) + instr.imm)
            self._write(instr.rd, self._load_word(mem_addr))
            dest, srcs = instr.rd, [instr.rs1]
        elif m == "SW":
            mem_addr = wrap32(self._read(instr.rs1) + instr.imm)
            self._store_word(mem_addr, self._read(instr.rs2))
            srcs = [instr.rs1, instr.rs2]
            store_value = self.memory[mem_addr // 4]
        elif m in _BRANCH_PREDS:
            taken = bool(
                eval_icmp(
                    _BRANCH_PREDS[m], self._read(instr.rs1), self._read(instr.rs2)
                )
            )
            target_pc = pc + instr.imm
            if taken:
                next_index = self.program.index_of_pc(target_pc)
            srcs = [instr.rs1, instr.rs2]
        elif m == "JAL":
            self._write(instr.rd, pc + WORD_BYTES)
            taken = True
            target_pc = pc + instr.imm
            next_index = self.program.index_of_pc(target_pc)
            dest = instr.rd
            is_call = instr.rd == 1
        elif m == "JALR":
            return_target = wrap32(self._read(instr.rs1) + instr.imm) & ~1
            self._write(instr.rd, pc + WORD_BYTES)
            taken = True
            target_pc = return_target
            next_index = self.program.index_of_pc(return_target)
            dest, srcs = instr.rd, [instr.rs1]
            is_return = instr.rd == 0 and instr.rs1 == 1
            is_call = instr.rd == 1
        elif m == "ECALL":
            service = self._read(17)  # a7
            if service == ECALL_OUT:
                self.output.append(self._read(10))  # a0
            elif service == ECALL_EXIT:
                self.halted = True
                self.exit_code = self._read(10)
            else:
                raise SimulationError(f"pc={pc:#x}: unknown ecall {service}")
            srcs = [10, 17]
        else:  # pragma: no cover - closed opcode table
            raise SimulationError(f"unimplemented mnemonic {m}")

        self.mnemonic_counts[m] = self.mnemonic_counts.get(m, 0) + 1
        if self.collect_trace:
            arch_dest = dest if dest not in (None, 0) else None
            if arch_dest is not None:
                dest_value = self.regs[arch_dest]
            else:
                dest_value = store_value
            self.trace.append(
                TraceEntry(
                    pc=pc,
                    op_class=instr.op_class,
                    mnemonic=m,
                    dest=arch_dest,
                    srcs=[s for s in srcs if s != 0],
                    taken=taken,
                    target_pc=target_pc,
                    next_pc=self.program.text_base + next_index * WORD_BYTES,
                    mem_addr=mem_addr,
                    is_call=is_call,
                    is_return=is_return,
                    dest_value=dest_value,
                )
            )
        self.pc_index = next_index

    # -- statistics ---------------------------------------------------------------

    def class_counts(self):
        """Retired counts grouped the way Fig. 15 groups them."""
        from repro.riscv.isa import OPCODES

        groups = {
            "jump_branch": 0,
            "alu": 0,
            "load": 0,
            "store": 0,
            "rmov": 0,
            "nop": 0,
            "other": 0,
        }
        for mnemonic, count in self.mnemonic_counts.items():
            op_class = OPCODES[mnemonic].op_class
            if op_class in ("branch", "jump"):
                groups["jump_branch"] += count
            elif op_class in ("alu", "mul", "div"):
                groups["alu"] += count
            elif op_class == "load":
                groups["load"] += count
            elif op_class == "store":
                groups["store"] += count
            else:
                groups["other"] += count
        return groups
