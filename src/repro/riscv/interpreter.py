"""RV32IM functional instruction-set simulator.

Shares exact ALU semantics with the STRAIGHT simulator and the IR constant
folder through :func:`repro.ir.passes.constfold.eval_binop`, so compiled
binaries for the two ISAs are bit-comparable on the output channel.

Like the STRAIGHT interpreter, execution runs over the pre-decoded
instruction array (:mod:`repro.riscv.predecode`): one decode per linked
binary, dense-int dispatch, pre-bound evaluators, pre-resolved targets.
The ``bb`` ISA reuses this class wholesale — its block headers decode to
:data:`~repro.riscv.predecode.RK_BB` no-ops.
"""

from repro import fastpath
from repro.common.bitops import wrap32
from repro.common.errors import SimulationError
from repro.common.layout import STACK_TOP, WORD_BYTES
from repro.common.trace import TraceEntry
from repro.riscv.isa import OPCODES
from repro.riscv.linker import ECALL_OUT, ECALL_EXIT
from repro.riscv.predecode import (
    RK_ALU,
    RK_ALU_IMM,
    RK_AUIPC,
    RK_BB,
    RK_BRANCH,
    RK_ECALL,
    RK_JAL,
    RK_JALR,
    RK_LOAD,
    RK_LUI,
    RK_STORE,
    _decode_one,
    decode_program,
)


class RunResult:
    """Outcome of an interpreter run."""

    def __init__(self, status, steps, output, exit_code=None):
        self.status = status  # 'exit' | 'limit'
        self.steps = steps
        self.output = output
        self.exit_code = exit_code

    def __repr__(self):
        return f"RunResult({self.status}, steps={self.steps})"


class RiscvInterpreter:
    """Executes a linked :class:`~repro.riscv.linker.RiscvProgram`."""

    #: Opcode table used for statistics grouping; RV32IM-derived ISAs
    #: (``bb``) override with their extended table.
    OPCODES = OPCODES

    def __init__(self, program, collect_trace=False, compiled=None):
        self.program = program
        #: Immutable pre-decoded instruction array, decoded once per linked
        #: binary and shared by every interpreter over the same program
        #: (primary, lockstep golden, fault campaigns).
        self.decoded = decode_program(program)
        self.regs = [0] * 32
        self.regs[2] = STACK_TOP
        self.pc_index = program.index_of_pc(program.entry_pc)
        self.memory = {}
        for offset, word in enumerate(program.data_words):
            self.memory[(program.data_base + offset * WORD_BYTES) // 4] = wrap32(word)
        self.output = []
        self.collect_trace = collect_trace
        self.trace = []
        self.halted = False
        self.exit_code = None
        self.mnemonic_counts = {}
        #: Threaded-code fast path (None: baseline step_op loop).  The
        #: ``compiled`` argument overrides the ``STRAIGHT_FASTPATH`` global
        #: toggle per instance.
        self._fast = None
        use_fast = fastpath.enabled() if compiled is None else compiled
        if use_fast:
            self._fast = fastpath.compiled_for(program, "riscv")

    # -- helpers --------------------------------------------------------------

    def _pc(self):
        return self.program.text_base + self.pc_index * WORD_BYTES

    def _read(self, reg):
        return 0 if reg == 0 else self.regs[reg]

    def _write(self, reg, value):
        if reg != 0:
            self.regs[reg] = wrap32(value)

    def _load_word(self, addr):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned load {addr:#x}")
        return self.memory.get(addr // 4, 0)

    def _store_word(self, addr, value):
        if addr % 4 != 0:
            raise SimulationError(f"pc={self._pc():#x}: misaligned store {addr:#x}")
        self.memory[addr // 4] = wrap32(value)

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps=10_000_000):
        """Run until exit ECALL or ``max_steps``; returns a :class:`RunResult`."""
        if self._fast is not None:
            steps = fastpath.run_compiled(self, max_steps)
            return RunResult(
                "exit" if self.halted else "limit", steps, self.output,
                self.exit_code,
            )
        steps = 0
        decoded = self.decoded
        n_instrs = len(decoded)
        step_op = self.step_op
        while not self.halted and steps < max_steps:
            index = self.pc_index
            if not 0 <= index < n_instrs:
                raise SimulationError(f"pc out of text segment: {self._pc():#x}")
            step_op(decoded[index])
            steps += 1
        return RunResult(
            "exit" if self.halted else "limit", steps, self.output, self.exit_code
        )

    def step(self, instr):
        """Execute one instruction, updating architectural state.

        ``instr`` must be the instruction at the current ``pc_index`` (the
        contract every caller already honours); the pre-decoded record for it
        is reused when it matches, so external steppers (lockstep golden,
        fault campaigns) ride the same decode-once fast path as :meth:`run`.
        A non-matching ``instr`` (fault campaigns mutate instructions in
        place) falls back to a one-off decode + baseline step, bypassing the
        compiled handlers, which are specialized to the linked binary.
        """
        decoded = self.decoded
        index = self.pc_index
        if 0 <= index < len(decoded) and decoded[index].instr is instr:
            if self._fast is not None:
                self._fast.op_handlers[index](self)
                return
            op = decoded[index]
        else:
            op = _decode_one(index, instr, self.program.text_base)
        self.step_op(op)

    def step_current(self):
        """Execute the instruction at the current ``pc_index``.

        Single-step entry point used by the lockstep golden machine; goes
        through the compiled per-op handlers when the fast path is active so
        co-simulation guards the same generated code production runs use.
        """
        index = self.pc_index
        decoded = self.decoded
        if not 0 <= index < len(decoded):
            raise SimulationError(f"pc out of text segment: {self._pc():#x}")
        if self._fast is not None:
            self._fast.op_handlers[index](self)
        else:
            self.step_op(decoded[index])

    def step_op(self, op):
        """Execute one pre-decoded instruction (the hot path)."""
        kind = op.kind
        pc = op.pc
        regs = self.regs
        next_index = self.pc_index + 1
        taken = False
        target_pc = None
        mem_addr = None
        is_call = False
        is_return = False
        value = None       # the architectural write (None: no write)
        store_value = None

        if kind == RK_ALU:
            evaluator, rs1, rs2 = op.operand
            value = evaluator(
                regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0
            )
        elif kind == RK_ALU_IMM:
            evaluator, rs1, imm = op.operand
            value = evaluator(regs[rs1] if rs1 else 0, imm)
        elif kind == RK_LUI or kind == RK_AUIPC:
            value = op.operand
        elif kind == RK_LOAD:
            rs1, imm = op.operand
            mem_addr = wrap32((regs[rs1] if rs1 else 0) + imm)
            value = self._load_word(mem_addr)
        elif kind == RK_STORE:
            rs1, rs2, imm = op.operand
            mem_addr = wrap32((regs[rs1] if rs1 else 0) + imm)
            self._store_word(mem_addr, regs[rs2] if rs2 else 0)
            store_value = self.memory[mem_addr // 4]
        elif kind == RK_BRANCH:
            evaluator, rs1, rs2 = op.operand
            taken = bool(
                evaluator(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0)
            )
            target_pc = op.target_pc
            if taken:
                next_index = op.target_index
        elif kind == RK_JAL:
            value, is_call = op.operand
            taken = True
            target_pc = op.target_pc
            next_index = op.target_index
        elif kind == RK_JALR:
            rs1, imm, link, is_call, is_return = op.operand
            target_pc = wrap32((regs[rs1] if rs1 else 0) + imm) & ~1
            taken = True
            next_index = self.program.index_of_pc(target_pc)
            value = link
        elif kind == RK_ECALL:
            service = regs[17]  # a7
            if service == ECALL_OUT:
                self.output.append(regs[10])  # a0
            elif service == ECALL_EXIT:
                self.halted = True
                self.exit_code = regs[10]
            else:
                raise SimulationError(f"pc={pc:#x}: unknown ecall {service}")
        elif kind == RK_BB:
            pass  # block header: decode-stage marker, no architectural effect
        else:  # pragma: no cover - closed opcode table
            raise SimulationError(f"unimplemented mnemonic {op.mnemonic}")

        dest = op.dest
        if dest is not None and value is not None:
            value = wrap32(value)
            regs[dest] = value
        mnemonic = op.mnemonic
        self.mnemonic_counts[mnemonic] = self.mnemonic_counts.get(mnemonic, 0) + 1
        if self.collect_trace:
            if dest is not None:
                dest_value = regs[dest]
            else:
                dest_value = store_value
            self.trace.append(
                TraceEntry(
                    pc=pc,
                    op_class=op.op_class,
                    mnemonic=mnemonic,
                    dest=dest,
                    srcs=op.srcs,
                    taken=taken,
                    target_pc=target_pc,
                    next_pc=self.program.text_base + next_index * WORD_BYTES,
                    mem_addr=mem_addr,
                    is_call=is_call,
                    is_return=is_return,
                    dest_value=dest_value,
                )
            )
        self.pc_index = next_index

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self):
        """Snapshot the complete architectural + bookkeeping state.

        Used by the sampled-simulation runner (window replay, debugging)
        and by resumable campaigns; ``restore`` rewinds exactly — a run
        restarted from a checkpoint is bit-identical to one that never
        stopped.
        """
        return {
            "regs": list(self.regs),
            "pc_index": self.pc_index,
            "memory": dict(self.memory),
            "output": list(self.output),
            "halted": self.halted,
            "exit_code": self.exit_code,
            "mnemonic_counts": dict(self.mnemonic_counts),
        }

    def restore(self, snap):
        """Rewind to a :meth:`checkpoint` snapshot (exact)."""
        self.regs = list(snap["regs"])
        self.pc_index = snap["pc_index"]
        self.memory = dict(snap["memory"])
        self.output = list(snap["output"])
        self.halted = snap["halted"]
        self.exit_code = snap["exit_code"]
        self.mnemonic_counts = dict(snap["mnemonic_counts"])

    # -- statistics ---------------------------------------------------------------

    def class_counts(self):
        """Retired counts grouped the way Fig. 15 groups them."""
        groups = {
            "jump_branch": 0,
            "alu": 0,
            "load": 0,
            "store": 0,
            "rmov": 0,
            "nop": 0,
            "other": 0,
        }
        opcodes = type(self).OPCODES
        for mnemonic, count in self.mnemonic_counts.items():
            op_class = opcodes[mnemonic].op_class
            if op_class in ("branch", "jump"):
                groups["jump_branch"] += count
            elif op_class in ("alu", "mul", "div"):
                groups["alu"] += count
            elif op_class == "load":
                groups["load"] += count
            elif op_class == "store":
                groups["store"] += count
            elif op_class == "nop":
                groups["nop"] += count
            else:
                groups["other"] += count
        return groups
