"""Static dataflow verifier for linked RV32IM (and ``bb``) binaries.

The gpr-model counterpart of the STRAIGHT register-age verifier, built on
the same generic engine (:mod:`repro.analysis.framework`): a forward
fixpoint over the reconstructed CFG proves, over every path,

* **def-before-use** — no instruction reads a register that some path
  reaches without writing first (``RVG001``);
* **call-boundary discipline** — no instruction reads a caller-saved
  register across an intervening call (``RVG002``): calls define
  ``a0``/``a1``/``ra`` and clobber the t-registers, ``gp``/``tp`` and
  ``a2``-``a7``;
* **SP discipline** — SP only moves by ``addi sp, sp, imm`` (``RVG005``),
  its offset agrees on all paths into a merge (``RVG003``) and is restored
  to the entry offset at every return (``RVG004``);
* **calling convention** — with the backend's function manifest attached
  (``program.manifest``), argument registers are defined at every direct
  call site and ``a0`` is defined at every return of a value-returning
  function (``RVG007``).

The abstract state is ``(undef, clobbered, sp)``: two register sets (may
be read-before-write / may hold a call-clobbered value) joined by union,
and the SP offset joined to a conflict top — a finite lattice, so the
worklist fixpoint terminates.  Checks run in a final pass over the
converged block-entry states, mirroring the STRAIGHT verifier's shape.
"""

from repro.analysis.cfg import build_cfg
from repro.analysis.diagnostics import Report
from repro.analysis.framework import solve_forward
from repro.riscv.analysis import (
    CALL_CLOBBERED,
    CALL_DEFINED,
    GprAnalysisSupport,
    RA,
    SP,
)
from repro.riscv.isa import REG_NAMES

#: SP lattice top: incoming paths disagree on the ADDI-sp sum.
SP_CONFLICT = "conflict"

#: Callee-saved registers (plus ra/sp) the convention defines at entry.
_ENTRY_DEFINED = frozenset({RA, SP, 8, 9} | set(range(18, 28)))

_ALL_REGS = frozenset(range(1, 32))


def _reg(name_index):
    return REG_NAMES[name_index]


def _entry_undef(num_args):
    """Registers that are undefined at a callee's entry."""
    defined = _ENTRY_DEFINED | frozenset(range(10, 10 + num_args))
    return _ALL_REGS - defined


def _join_sp(a, b):
    if a == b:
        return a
    return SP_CONFLICT


def _join(a, b):
    undef_a, clob_a, sp_a = a
    undef_b, clob_b, sp_b = b
    return undef_a | undef_b, clob_a | clob_b, _join_sp(sp_a, sp_b)


def _sp_write_kind(instr, is_program_entry):
    """``"track"`` / ``"init"`` / ``"violation"`` for a write to SP."""
    if instr.mnemonic == "ADDI" and instr.rs1 == SP:
        return "track"
    if instr.mnemonic == "LUI" and is_program_entry:
        return "init"  # the startup stub establishing the stack base
    return "violation"


class _Ctx:
    def __init__(self, program, manifest, report, support):
        self.program = program
        self.report = report
        self.support = support
        self.manifest_funcs = (manifest or {}).get("functions", {})


def verify_program(program, manifest=None, lint=False, support=None):
    """Verify a linked gpr-model program; returns a shared ``Report``.

    ``manifest`` defaults to ``program.manifest`` (attached by the RV32IM
    backend); without one, argument-count refinements are skipped — every
    ``a`` register counts as defined at entry and call-site argument /
    return-value checks are off.
    """
    if support is None:
        support = GprAnalysisSupport()
    if manifest is None:
        manifest = getattr(program, "manifest", None)
    report = Report(program)

    cfg = build_cfg(program, support)
    for code, index, message in cfg.issues:
        report.emit(code, message, index=index)

    ctx = _Ctx(program, manifest, report, support)
    annotated = 0
    for func in cfg.functions:
        if func.name in ctx.manifest_funcs:
            annotated += 1
        _verify_function(ctx, cfg, func)

    report.stats.update(
        {
            "functions": len(cfg.functions),
            "instructions": len(program.instrs),
            "annotated_functions": annotated,
        }
    )

    if lint:
        from repro.analysis.passes import run_gpr_lints

        run_gpr_lints(program, support, cfg, report, manifest)
    return report


def undef_map(program, support=None):
    """Per-index ``(undef, clobbered)`` register sets of a clean program.

    Runs the same fixpoint as :func:`verify_program` and replays each block
    from its converged entry state, recording the abstract state *before*
    every instruction.  The mutation campaign uses this to seed reads of
    provably-unwritten registers.
    """
    if support is None:
        support = GprAnalysisSupport()
    cfg = build_cfg(program, support)
    ctx = _Ctx(program, getattr(program, "manifest", None), Report(program), support)
    table = {}
    for func in cfg.functions:
        is_program_entry = func.entry == program.index_of_pc(program.entry_pc)
        fmanifest = ctx.manifest_funcs.get(func.name)
        if is_program_entry:
            entry_state = (_ALL_REGS - {0}, frozenset(), 0)
        else:
            num_args = 8 if fmanifest is None else int(fmanifest["num_args"])
            entry_state = (_entry_undef(num_args), frozenset(), 0)
        in_states = solve_forward(
            func,
            entry_state,
            lambda leader, state: _transfer_block(
                ctx, func, func.blocks[leader], state, is_program_entry
            ),
            _join,
        )
        for leader, state in in_states.items():
            undef, clob, _ = state
            for index in func.blocks[leader].indices:
                table[index] = (undef, clob)
                if support.is_call(program, index):
                    undef = undef - CALL_CLOBBERED - CALL_DEFINED
                    clob = (clob | CALL_CLOBBERED) - CALL_DEFINED
                    continue
                defs = support.defs(program, index)
                if defs:
                    undef = undef.difference(defs)
                    clob = clob.difference(defs)
    return table


def _transfer_block(ctx, func, block, state, is_program_entry):
    """Push the block's defs/calls through ``state`` (fixpoint path)."""
    undef, clob, sp = state
    program = ctx.program
    support = ctx.support
    for index in block.indices:
        instr = program.instrs[index]
        if support.is_call(program, index):
            undef = undef - CALL_CLOBBERED - CALL_DEFINED
            clob = (clob | CALL_CLOBBERED) - CALL_DEFINED
            continue
        defs = support.defs(program, index)
        if SP in defs and sp != SP_CONFLICT:
            kind = _sp_write_kind(instr, is_program_entry)
            if kind == "track":
                sp += instr.imm or 0
            elif kind == "init":
                sp = 0
            # a violation leaves the offset as-is; the final pass reports it
        if defs:
            undef = undef.difference(defs)
            clob = clob.difference(defs)
    return undef, clob, sp


def _verify_function(ctx, cfg, func):
    program = ctx.program
    support = ctx.support
    report = ctx.report
    fmanifest = ctx.manifest_funcs.get(func.name)

    is_program_entry = func.entry == program.index_of_pc(program.entry_pc)
    if is_program_entry:
        entry_state = (_ALL_REGS - {0}, frozenset(), 0)
    else:
        num_args = 8 if fmanifest is None else int(fmanifest["num_args"])
        entry_state = (_entry_undef(num_args), frozenset(), 0)

    in_states = solve_forward(
        func,
        entry_state,
        lambda leader, state: _transfer_block(
            ctx, func, func.blocks[leader], state, is_program_entry
        ),
        _join,
    )
    func.in_states = in_states

    # Final pass: walk each block from its converged entry state.
    for leader in sorted(in_states):
        block = func.blocks[leader]
        undef, clob, sp = in_states[leader]
        if len(block.preds) > 1 and sp == SP_CONFLICT:
            report.emit(
                "RVG003",
                "incoming paths reach this merge with different SP offsets",
                index=leader,
                function=func.name,
            )
        for index in block.indices:
            instr = program.instrs[index]
            for operand, reg in enumerate(support.uses(program, index)):
                _check_use(ctx, func, index, instr, operand, reg, undef, clob)
            if support.is_call(program, index):
                _check_call_args(ctx, cfg, func, index, undef, clob)
                undef = undef - CALL_CLOBBERED - CALL_DEFINED
                clob = (clob | CALL_CLOBBERED) - CALL_DEFINED
                continue
            if support.is_return(program, index):
                if sp not in (0, SP_CONFLICT):
                    report.emit(
                        "RVG004",
                        f"returns with SP offset {sp:+d} (the ADDI-sp sum "
                        "must be zero on every path to the return)",
                        index=index,
                        function=func.name,
                    )
                if fmanifest is not None and fmanifest.get("returns_value"):
                    if 10 in undef or 10 in clob:
                        report.emit(
                            "RVG007",
                            f"{func.name!r} returns a value but a0 may be "
                            "undefined at this return",
                            index=index,
                            function=func.name,
                        )
            defs = support.defs(program, index)
            if SP in defs:
                kind = _sp_write_kind(instr, is_program_entry)
                if kind == "violation":
                    report.emit(
                        "RVG005",
                        f"{instr.mnemonic} writes sp; only ADDI sp, sp, imm "
                        "may move the stack pointer",
                        index=index,
                        function=func.name,
                    )
                elif sp != SP_CONFLICT:
                    sp = sp + (instr.imm or 0) if kind == "track" else 0
            if defs:
                undef = undef.difference(defs)
                clob = clob.difference(defs)


def _check_use(ctx, func, index, instr, operand, reg, undef, clob):
    where = dict(function=func.name, data={"operand": operand})
    if reg in clob:
        ctx.report.emit(
            "RVG002",
            f"{instr.mnemonic} reads {_reg(reg)}, which an intervening call "
            "may have clobbered on some path",
            index=index,
            **where,
        )
    elif reg in undef:
        ctx.report.emit(
            "RVG001",
            f"{instr.mnemonic} reads {_reg(reg)} before any write on some "
            "path",
            index=index,
            **where,
        )


def _check_call_args(ctx, cfg, func, index, undef, clob):
    """RVG001/RVG002 for argument registers at an annotated call site."""
    _, call_target, _ = ctx.support.successors(ctx.program, index)
    if call_target is None:
        return
    callee = cfg.function_at(call_target)
    if callee is None:
        return
    fmanifest = ctx.manifest_funcs.get(callee.name)
    if fmanifest is None:
        return
    for k in range(int(fmanifest["num_args"])):
        reg = 10 + k
        if reg in clob:
            code, cause = "RVG002", "an intervening call may have clobbered it"
        elif reg in undef:
            code, cause = "RVG001", "it may be undefined on some path"
        else:
            continue
        ctx.report.emit(
            code,
            f"call to {callee.name!r} passes argument {k} in {_reg(reg)} "
            f"but {cause}",
            index=index,
            function=func.name,
            data={"operand": k},
        )
