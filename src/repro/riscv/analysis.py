"""RV32IM analysis support: the gpr-model control/dataflow plug.

The control protocol decodes the standard RISC-V conventions the backend
emits: ``jal`` with ``rd = ra`` is a call (falls through — the callee is
opaque), ``jal`` with ``rd = x0`` an unconditional jump, ``jalr`` with
``rd = x0, rs1 = ra`` a return, branches branch and fall through, and an
``ecall`` immediately preceded by ``addi a7, zero, 93`` (the exit service)
terminates the program.  Link-resolved immediates are PC-relative *byte*
offsets, so target indices are ``index + imm // WORD_BYTES``.

The dataflow protocol reads operand registers straight off the instruction
formats (R/S/B use ``rs1``/``rs2``; I uses ``rs1``; U/J use none; ``ecall``
reads ``a0``/``a7``) — which also serves the :mod:`repro.riscv.verify`
def-before-use verifier and the liveness/value-range/ILP passes.
"""

from repro.common.layout import WORD_BYTES
from repro.analysis.support import BlockDeps, IsaAnalysisSupport

RA, SP, GP, TP = 1, 2, 3, 4

#: Registers a call may leave with unrelated values (caller-saved scratch
#: minus the ``a0``/``a1`` results and ``ra``, which holds the return
#: address again once the callee returns).
CALL_CLOBBERED = frozenset({GP, TP, 5, 6, 7, 28, 29, 30, 31} | set(range(12, 18)))

#: Registers a call defines on return: the results and the return address.
CALL_DEFINED = frozenset({RA, 10, 11})

#: The exit-service code (kept in sync with the linker's ECALL table).
from repro.riscv.linker import ECALL_EXIT  # noqa: E402


class GprAnalysisSupport(IsaAnalysisSupport):
    """Control + dataflow protocol shared by the gpr-model ISAs."""

    name = "riscv"
    register_model = "gpr"
    issue_code = "RVG006"

    # -- control protocol --------------------------------------------------

    def _target(self, index, instr):
        return index + (instr.imm or 0) // WORD_BYTES

    def is_exit_ecall(self, program, index):
        """True for an ``ecall`` that invokes the exit service."""
        if program.instrs[index].mnemonic != "ECALL" or index == 0:
            return False
        prev = program.instrs[index - 1]
        return (
            prev.mnemonic == "ADDI"
            and prev.rd == 17
            and prev.rs1 == 0
            and (prev.imm or 0) == ECALL_EXIT
        )

    def successors(self, program, index):
        instr = program.instrs[index]
        n = len(program.instrs)
        mnemonic = instr.mnemonic
        fmt = instr.spec.fmt
        if fmt == "B":
            target = self._target(index, instr)
            if not 0 <= target < n:
                issue = (
                    self.issue_code,
                    f"{mnemonic} target index {target} outside text segment",
                )
                return ([index + 1] if index + 1 < n else []), None, issue
            succs = [target]
            if index + 1 < n:
                succs.append(index + 1)
            return succs, None, None
        if mnemonic == "JAL":
            target = self._target(index, instr)
            if not 0 <= target < n:
                issue = (
                    self.issue_code,
                    f"JAL target index {target} outside text segment",
                )
                if instr.rd == 0:
                    return [], None, issue
                return ([index + 1] if index + 1 < n else []), None, issue
            if instr.rd == 0:
                return [target], None, None  # unconditional jump
            succs = [index + 1] if index + 1 < n else []
            return succs, target, None  # direct call
        if mnemonic == "JALR":
            if instr.rd == 0:
                return [], None, None  # return (or indirect jump): terminator
            succs = [index + 1] if index + 1 < n else []
            return succs, None, None  # indirect call: unknown callee
        if mnemonic == "ECALL" and self.is_exit_ecall(program, index):
            return [], None, None
        if index + 1 < n:
            return [index + 1], None, None
        return [], None, (
            self.issue_code,
            f"{mnemonic} falls off the end of the text segment",
        )

    def ends_block(self, program, index):
        instr = program.instrs[index]
        if instr.spec.fmt == "B":
            return True
        if instr.mnemonic in ("JAL", "JALR"):
            return instr.rd == 0
        if instr.mnemonic == "ECALL":
            return self.is_exit_ecall(program, index)
        return False

    def is_call(self, program, index):
        instr = program.instrs[index]
        return instr.mnemonic in ("JAL", "JALR") and instr.rd != 0

    def is_return(self, program, index):
        instr = program.instrs[index]
        return instr.mnemonic == "JALR" and instr.rd == 0 and instr.rs1 == RA

    # -- dataflow protocol -------------------------------------------------

    def uses(self, program, index):
        """Register numbers instruction ``index`` reads (x0 excluded)."""
        instr = program.instrs[index]
        mnemonic = instr.mnemonic
        if mnemonic == "BB":
            return ()
        if mnemonic == "ECALL":
            return (10, 17)  # every service reads a0 (payload) and a7 (code)
        fmt = instr.spec.fmt
        if fmt in ("R", "S", "B"):
            return tuple(r for r in (instr.rs1, instr.rs2) if r)
        if fmt == "I":
            return (instr.rs1,) if instr.rs1 else ()
        return ()  # U, J

    def defs(self, program, index):
        """Register numbers instruction ``index`` writes (x0 excluded)."""
        instr = program.instrs[index]
        if instr.mnemonic in ("BB", "ECALL"):
            return ()
        if instr.spec.fmt in ("S", "B"):
            return ()
        return (instr.rd,) if instr.rd else ()

    def block_deps(self, program, indices):
        last = {}  # register -> producing index within the sequence
        producers = []
        for index in indices:
            prods = []
            for reg in self.uses(program, index):
                if reg in last:
                    prods.append(("intra", last[reg]))
                else:
                    prods.append(("in", reg))
            producers.append(tuple(prods))
            for reg in self.defs(program, index):
                last[reg] = index
            if self.is_call(program, index):
                # Chain reads of results (and clobbered scratch) through
                # the call rather than across it.
                for reg in CALL_DEFINED | CALL_CLOBBERED:
                    last[reg] = index
        return BlockDeps(indices, producers, last)
