"""RV32IM linker: assembly units + data image -> executable program.

Label merging/collection comes from :mod:`repro.isa.asmcore`; resolution
rebuilds each labeled instruction via ``type(instr)`` so RV32IM-derived
instruction classes (``bb``) survive linking unchanged.
"""

from repro.common.errors import LinkError
from repro.common.layout import TEXT_BASE, STACK_TOP, WORD_BYTES
from repro.isa.asmcore import collect_labels, merge_units
from repro.riscv.encoding import encode
from repro.riscv.assembler import parse_assembly


class RiscvProgram:
    """A linked RV32IM executable image."""

    def __init__(self, instrs, labels, data_words, data_base,
                 entry_label="_start", manifest=None):
        self.instrs = instrs
        self.labels = labels
        self.data_words = data_words
        self.data_base = data_base
        self.text_base = TEXT_BASE
        self.entry_pc = TEXT_BASE + labels[entry_label] * WORD_BYTES
        self.stack_top = STACK_TOP
        #: per-function facts from the backend (``{"functions": {...}}``);
        #: the static verifier uses them for calling-convention checks.
        self.manifest = manifest

    @property
    def text_words(self):
        return [encode(i) for i in self.instrs]

    def pc_of(self, label):
        return self.text_base + self.labels[label] * WORD_BYTES

    def index_of_pc(self, pc):
        return (pc - self.text_base) // WORD_BYTES

    def disassemble(self):
        by_index = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, instr in enumerate(self.instrs):
            for label in by_index.get(index, ()):
                lines.append(f"{label}:")
            pc = self.text_base + index * WORD_BYTES
            lines.append(f"  {pc:#08x}: {instr.to_asm()}")
        return "\n".join(lines)


#: ECALL service codes (passed in a7): write a0 to the output channel / exit.
ECALL_OUT = 1
ECALL_EXIT = 93


def startup_stub():
    """Runtime entry: set up sp, call main, exit via ECALL."""
    return parse_assembly(
        f"""
_start:
    lui sp, {STACK_TOP >> 12}
    jal ra, main
    addi a7, zero, {ECALL_EXIT}
    ecall
"""
    )


def link_program(units, data_words=(), data_base=0, program_cls=RiscvProgram):
    """Link assembly units (startup stub first) into a :class:`RiscvProgram`."""
    merged = merge_units(units)
    labels = collect_labels(merged.items)

    instrs = []
    position = 0
    for kind, item in merged.items:
        if kind == "label":
            continue
        instr = item
        if instr.label is not None:
            if instr.label not in labels:
                raise LinkError(f"undefined label {instr.label!r}")
            byte_offset = (labels[instr.label] - position) * WORD_BYTES
            instr = type(instr)(
                instr.mnemonic,
                rd=instr.rd,
                rs1=instr.rs1,
                rs2=instr.rs2,
                imm=byte_offset,
            )
        instrs.append(instr)
        position += 1

    if "_start" not in labels:
        raise LinkError("no _start label; pass startup_stub() as the first unit")

    functions = {}
    for unit in units:
        unit_manifest = getattr(unit, "verify_manifest", None)
        if unit_manifest:
            functions.update(unit_manifest.get("functions", {}))
    manifest = {"functions": functions} if functions else None
    return program_cls(
        instrs, labels, list(data_words), data_base, manifest=manifest
    )
