"""RV32IM subset instruction set specification.

Mnemonics and formats follow the RISC-V unprivileged spec.  The subset is
what the mini-C compiler needs (and what the paper's evaluation uses after
disabling floating point): the full RV32I integer ALU/branch/load-store set
minus byte/half memory ops, plus the M extension's MUL/DIV/REM family, plus
ECALL for the output/exit runtime services.
"""

from repro.common.errors import AsmError

#: ABI register names indexed by register number.
REG_NAMES = (
    "zero",
    "ra",
    "sp",
    "gp",
    "tp",
    "t0",
    "t1",
    "t2",
    "s0",
    "s1",
    "a0",
    "a1",
    "a2",
    "a3",
    "a4",
    "a5",
    "a6",
    "a7",
    "s2",
    "s3",
    "s4",
    "s5",
    "s6",
    "s7",
    "s8",
    "s9",
    "s10",
    "s11",
    "t3",
    "t4",
    "t5",
    "t6",
)

ABI_NAMES = {name: number for number, name in enumerate(REG_NAMES)}
ABI_NAMES["fp"] = 8


def reg_number(name):
    """Parse a register operand: ABI name or ``x<N>``."""
    if name in ABI_NAMES:
        return ABI_NAMES[name]
    if name.startswith("x") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number < 32:
            return number
    raise AsmError(f"unknown register {name!r}")


class OpSpec:
    """Format + encoding constants + timing class for one mnemonic."""

    __slots__ = ("mnemonic", "fmt", "opcode", "funct3", "funct7", "op_class")

    def __init__(self, mnemonic, fmt, opcode, funct3, funct7, op_class):
        self.mnemonic = mnemonic
        self.fmt = fmt  # 'R' | 'I' | 'S' | 'B' | 'U' | 'J' | 'SYS'
        self.opcode = opcode
        self.funct3 = funct3
        self.funct7 = funct7
        self.op_class = op_class


def _build_opcode_table():
    table = {}

    def add(mnemonic, fmt, opcode, funct3=0, funct7=0, op_class="alu"):
        table[mnemonic] = OpSpec(mnemonic, fmt, opcode, funct3, funct7, op_class)

    op = 0b0110011  # OP
    add("ADD", "R", op, 0b000, 0b0000000)
    add("SUB", "R", op, 0b000, 0b0100000)
    add("SLL", "R", op, 0b001, 0b0000000)
    add("SLT", "R", op, 0b010, 0b0000000)
    add("SLTU", "R", op, 0b011, 0b0000000)
    add("XOR", "R", op, 0b100, 0b0000000)
    add("SRL", "R", op, 0b101, 0b0000000)
    add("SRA", "R", op, 0b101, 0b0100000)
    add("OR", "R", op, 0b110, 0b0000000)
    add("AND", "R", op, 0b111, 0b0000000)
    add("MUL", "R", op, 0b000, 0b0000001, "mul")
    add("DIV", "R", op, 0b100, 0b0000001, "div")
    add("DIVU", "R", op, 0b101, 0b0000001, "div")
    add("REM", "R", op, 0b110, 0b0000001, "div")
    add("REMU", "R", op, 0b111, 0b0000001, "div")

    opi = 0b0010011  # OP-IMM
    add("ADDI", "I", opi, 0b000)
    add("SLTI", "I", opi, 0b010)
    add("SLTIU", "I", opi, 0b011)
    add("XORI", "I", opi, 0b100)
    add("ORI", "I", opi, 0b110)
    add("ANDI", "I", opi, 0b111)
    add("SLLI", "I", opi, 0b001, 0b0000000)
    add("SRLI", "I", opi, 0b101, 0b0000000)
    add("SRAI", "I", opi, 0b101, 0b0100000)

    add("LW", "I", 0b0000011, 0b010, op_class="load")
    add("SW", "S", 0b0100011, 0b010, op_class="store")

    br = 0b1100011
    add("BEQ", "B", br, 0b000, op_class="branch")
    add("BNE", "B", br, 0b001, op_class="branch")
    add("BLT", "B", br, 0b100, op_class="branch")
    add("BGE", "B", br, 0b101, op_class="branch")
    add("BLTU", "B", br, 0b110, op_class="branch")
    add("BGEU", "B", br, 0b111, op_class="branch")

    add("LUI", "U", 0b0110111)
    add("AUIPC", "U", 0b0010111)
    add("JAL", "J", 0b1101111, op_class="jump")
    add("JALR", "I", 0b1100111, 0b000, op_class="jump")
    add("ECALL", "SYS", 0b1110011, op_class="sys")
    return table


OPCODES = _build_opcode_table()


class RInstr:
    """One RV32IM instruction at the assembly level.

    ``label`` (branch/jump target) is resolved to a PC-relative byte offset
    in ``imm`` by the linker.

    ``OPCODES`` and ``SET_NAME`` are class attributes so RV32IM-derived
    ISAs (the ``bb`` BasicBlocker variant) subclass with an extended opcode
    table and inherit all the operand validation.
    """

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "imm", "label")

    OPCODES = OPCODES
    SET_NAME = "RV32IM"

    def __init__(self, mnemonic, rd=None, rs1=None, rs2=None, imm=None, label=None):
        opcodes = type(self).OPCODES
        if mnemonic not in opcodes:
            raise AsmError(f"unknown {self.SET_NAME} mnemonic {mnemonic!r}")
        spec = opcodes[mnemonic]
        need_rd = spec.fmt in ("R", "I", "U", "J")
        need_rs1 = spec.fmt in ("R", "I", "S", "B")
        need_rs2 = spec.fmt in ("R", "S", "B")
        need_imm = spec.fmt in ("I", "S", "B", "U", "J")
        if need_rd and rd is None:
            raise AsmError(f"{mnemonic} requires rd")
        if need_rs1 and rs1 is None:
            raise AsmError(f"{mnemonic} requires rs1")
        if need_rs2 and rs2 is None:
            raise AsmError(f"{mnemonic} requires rs2")
        if need_imm and imm is None and label is None:
            raise AsmError(f"{mnemonic} requires an immediate or label")
        for reg in (rd, rs1, rs2):
            if reg is not None and not 0 <= reg < 32:
                raise AsmError(f"{mnemonic}: register x{reg} out of range")
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.label = label

    @property
    def spec(self):
        return type(self).OPCODES[self.mnemonic]

    @property
    def op_class(self):
        return self.spec.op_class

    def to_asm(self):
        m = self.mnemonic.lower()
        spec = self.spec
        r = REG_NAMES
        if spec.fmt == "R":
            return f"{m} {r[self.rd]}, {r[self.rs1]}, {r[self.rs2]}"
        if self.mnemonic == "LW":
            return f"{m} {r[self.rd]}, {self.imm}({r[self.rs1]})"
        if self.mnemonic == "SW":
            return f"{m} {r[self.rs2]}, {self.imm}({r[self.rs1]})"
        if spec.fmt == "I":
            tail = self.label if self.label is not None else self.imm
            return f"{m} {r[self.rd]}, {r[self.rs1]}, {tail}"
        if spec.fmt == "B":
            tail = self.label if self.label is not None else self.imm
            return f"{m} {r[self.rs1]}, {r[self.rs2]}, {tail}"
        if spec.fmt == "U":
            return f"{m} {r[self.rd]}, {self.imm}"
        if spec.fmt == "J":
            tail = self.label if self.label is not None else self.imm
            return f"{m} {r[self.rd]}, {tail}"
        return m  # SYS

    def __repr__(self):
        return self.to_asm()
