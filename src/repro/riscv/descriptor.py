"""Registry descriptor for the RV32IM baseline ISA (``riscv``)."""

from repro.isa import IsaDescriptor, register
from repro.riscv.isa import OPCODES
from repro.riscv.assembler import parse_assembly
from repro.riscv.encoding import decode, encode
from repro.riscv.interpreter import RiscvInterpreter
from repro.riscv.linker import link_program, startup_stub
from repro.riscv.predecode import decode_program

#: Encoded field widths per format (the B/J immediates are the 12/20 bits
#: actually stored; the implicit low zero is not a payload bit).
FORMAT_FIELDS = {
    "R": {"opcode": 7, "rd": 5, "funct3": 3, "rs1": 5, "rs2": 5, "funct7": 7},
    "I": {"opcode": 7, "rd": 5, "funct3": 3, "rs1": 5, "imm": 12},
    "S": {"opcode": 7, "imm": 12, "funct3": 3, "rs1": 5, "rs2": 5},
    "B": {"opcode": 7, "imm": 12, "funct3": 3, "rs1": 5, "rs2": 5},
    "U": {"opcode": 7, "rd": 5, "imm": 20},
    "J": {"opcode": 7, "rd": 5, "imm": 20},
    "SYS": {"opcode": 7},
}


def _compile_module(module, max_distance=None, **opts):
    from repro.compiler.riscv_backend import compile_to_riscv

    return compile_to_riscv(module, **opts)


def _make_interpreter(program, collect_trace=False, **kw):
    return RiscvInterpreter(program, collect_trace=collect_trace, **kw)


def _static_check(program, lint=False):
    from repro.riscv.verify import verify_program

    return verify_program(program, lint=lint)


def _analysis():
    from repro.riscv.analysis import GprAnalysisSupport

    return GprAnalysisSupport()


def _cfg_2way(**overrides):
    from repro.core.configs import ss_2way

    return ss_2way(**overrides)


def _cfg_4way(**overrides):
    from repro.core.configs import ss_4way

    return ss_4way(**overrides)


DESCRIPTOR = register(
    IsaDescriptor(
        name="riscv",
        display_name="RV32IM",
        register_model="gpr",
        opcodes=OPCODES,
        format_fields=FORMAT_FIELDS,
        parse_assembly=parse_assembly,
        link=link_program,
        startup_stub=startup_stub,
        encode=encode,
        decode=decode,
        make_interpreter=_make_interpreter,
        compile_module=_compile_module,
        binary_labels={"SS": {}},
        targets={"riscv": {}},
        frontend="rename",
        config_factories={"2way": _cfg_2way, "4way": _cfg_4way},
        static_check=_static_check,
        predecode=decode_program,
        analysis=_analysis,
    )
)
