"""RV32IM assembler: standard assembly text -> instruction lists."""

from repro.common.errors import AsmError
from repro.riscv.isa import RInstr, OPCODES, reg_number


class AsmUnit:
    """A parsed assembly unit: ordered labels and instructions."""

    def __init__(self, items=None):
        self.items = list(items or [])

    def add_label(self, name):
        self.items.append(("label", name))

    def add_instr(self, instr):
        self.items.append(("instr", instr))

    def instructions(self):
        return [item for kind, item in self.items if kind == "instr"]

    def to_text(self):
        lines = []
        for kind, item in self.items:
            lines.append(f"{item}:" if kind == "label" else f"    {item.to_asm()}")
        return "\n".join(lines) + "\n"


def parse_assembly(text):
    """Parse RISC-V assembly text into an :class:`AsmUnit`."""
    unit = AsmUnit()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            unit.add_label(line[:-1].strip())
            continue
        unit.add_instr(_parse_instr_line(line, lineno))
    return unit


def _parse_instr_line(line, lineno):
    head, _, rest = line.partition(" ")
    mnemonic = head.upper()
    if mnemonic not in OPCODES:
        raise AsmError(f"line {lineno}: unknown mnemonic {head!r}")
    spec = OPCODES[mnemonic]
    operands = [tok.strip() for tok in rest.split(",") if tok.strip()]
    try:
        return _build_instr(mnemonic, spec, operands)
    except AsmError as exc:
        raise AsmError(f"line {lineno}: {exc}") from None


def _build_instr(mnemonic, spec, operands):
    fmt = spec.fmt
    if fmt == "SYS":
        return RInstr(mnemonic)
    if fmt == "R":
        rd, rs1, rs2 = (reg_number(op) for op in _exactly(operands, 3, mnemonic))
        return RInstr(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if mnemonic == "LW":
        rd, mem = _exactly(operands, 2, mnemonic)
        base, offset = _parse_mem(mem)
        return RInstr(mnemonic, rd=reg_number(rd), rs1=base, imm=offset)
    if mnemonic == "SW":
        rs2, mem = _exactly(operands, 2, mnemonic)
        base, offset = _parse_mem(mem)
        return RInstr(mnemonic, rs1=base, rs2=reg_number(rs2), imm=offset)
    if fmt == "I":
        rd, rs1, tail = _exactly(operands, 3, mnemonic)
        imm, label = _imm_or_label(tail)
        return RInstr(mnemonic, rd=reg_number(rd), rs1=reg_number(rs1), imm=imm, label=label)
    if fmt == "B":
        rs1, rs2, tail = _exactly(operands, 3, mnemonic)
        imm, label = _imm_or_label(tail)
        return RInstr(
            mnemonic, rs1=reg_number(rs1), rs2=reg_number(rs2), imm=imm, label=label
        )
    if fmt == "U":
        rd, tail = _exactly(operands, 2, mnemonic)
        imm, label = _imm_or_label(tail)
        if label is not None:
            raise AsmError(f"{mnemonic} takes a numeric immediate")
        return RInstr(mnemonic, rd=reg_number(rd), imm=imm)
    if fmt == "J":
        rd, tail = _exactly(operands, 2, mnemonic)
        imm, label = _imm_or_label(tail)
        return RInstr(mnemonic, rd=reg_number(rd), imm=imm, label=label)
    raise AsmError(f"unhandled format {fmt!r}")  # pragma: no cover


def _exactly(operands, count, mnemonic):
    if len(operands) != count:
        raise AsmError(f"{mnemonic} takes {count} operands, got {len(operands)}")
    return operands


def _parse_mem(token):
    """Parse ``imm(reg)``; returns (reg number, offset)."""
    if not token.endswith(")") or "(" not in token:
        raise AsmError(f"bad memory operand {token!r}")
    offset_text, _, reg_text = token[:-1].partition("(")
    offset = int(offset_text, 0) if offset_text else 0
    return reg_number(reg_text.strip()), offset


def _imm_or_label(token):
    body = token[1:] if token[:1] in "+-" else token
    if body.isdigit() or body.lower().startswith("0x"):
        return int(token, 0), None
    return None, token
