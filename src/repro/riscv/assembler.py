"""RV32IM assembler: standard assembly text -> instruction lists.

The line-splitting/label-collection driver and the :class:`AsmUnit`
container live in :mod:`repro.isa.asmcore`; this module contributes the
RV32IM instruction-line grammar.  :func:`make_instr_parser` parameterizes
that grammar over the opcode table and instruction class so RV32IM-derived
ISAs (``bb``) reuse it with their extended tables.
"""

from repro.common.errors import AsmError
from repro.isa.asmcore import AsmUnit, parse_assembly_text
from repro.riscv.isa import RInstr, OPCODES, reg_number

__all__ = ["AsmUnit", "parse_assembly", "make_instr_parser"]


def make_instr_parser(opcodes, instr_cls):
    """A ``parse_instr_line(line, lineno)`` for one RV32IM-family table."""

    def parse_instr_line(line, lineno):
        head, _, rest = line.partition(" ")
        mnemonic = head.upper()
        if mnemonic not in opcodes:
            raise AsmError(f"unknown mnemonic {head!r}", line=lineno)
        spec = opcodes[mnemonic]
        operands = [tok.strip() for tok in rest.split(",") if tok.strip()]
        try:
            return _build_instr(mnemonic, spec, operands, instr_cls)
        except AsmError as exc:
            raise AsmError(str(exc), line=lineno) from None

    return parse_instr_line


_parse_instr_line = make_instr_parser(OPCODES, RInstr)


def parse_assembly(text):
    """Parse RISC-V assembly text into an :class:`AsmUnit`."""
    return parse_assembly_text(text, _parse_instr_line)


def _build_instr(mnemonic, spec, operands, instr_cls):
    fmt = spec.fmt
    if fmt == "SYS":
        return instr_cls(mnemonic)
    if fmt == "R":
        rd, rs1, rs2 = (reg_number(op) for op in _exactly(operands, 3, mnemonic))
        return instr_cls(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if mnemonic == "LW":
        rd, mem = _exactly(operands, 2, mnemonic)
        base, offset = _parse_mem(mem)
        return instr_cls(mnemonic, rd=reg_number(rd), rs1=base, imm=offset)
    if mnemonic == "SW":
        rs2, mem = _exactly(operands, 2, mnemonic)
        base, offset = _parse_mem(mem)
        return instr_cls(mnemonic, rs1=base, rs2=reg_number(rs2), imm=offset)
    if fmt == "I":
        rd, rs1, tail = _exactly(operands, 3, mnemonic)
        imm, label = _imm_or_label(tail)
        return instr_cls(
            mnemonic, rd=reg_number(rd), rs1=reg_number(rs1), imm=imm, label=label
        )
    if fmt == "B":
        rs1, rs2, tail = _exactly(operands, 3, mnemonic)
        imm, label = _imm_or_label(tail)
        return instr_cls(
            mnemonic, rs1=reg_number(rs1), rs2=reg_number(rs2), imm=imm, label=label
        )
    if fmt == "U":
        rd, tail = _exactly(operands, 2, mnemonic)
        imm, label = _imm_or_label(tail)
        if label is not None:
            raise AsmError(f"{mnemonic} takes a numeric immediate")
        return instr_cls(mnemonic, rd=reg_number(rd), imm=imm)
    if fmt == "J":
        rd, tail = _exactly(operands, 2, mnemonic)
        imm, label = _imm_or_label(tail)
        return instr_cls(mnemonic, rd=reg_number(rd), imm=imm, label=label)
    raise AsmError(f"unhandled format {fmt!r}")  # pragma: no cover


def _exactly(operands, count, mnemonic):
    if len(operands) != count:
        raise AsmError(f"{mnemonic} takes {count} operands, got {len(operands)}")
    return operands


def _parse_mem(token):
    """Parse ``imm(reg)``; returns (reg number, offset)."""
    if not token.endswith(")") or "(" not in token:
        raise AsmError(f"bad memory operand {token!r}")
    offset_text, _, reg_text = token[:-1].partition("(")
    offset = int(offset_text, 0) if offset_text else 0
    return reg_number(reg_text.strip()), offset


def _imm_or_label(token):
    body = token[1:] if token[:1] in "+-" else token
    if body.isdigit() or body.lower().startswith("0x"):
        return int(token, 0), None
    return None, token
