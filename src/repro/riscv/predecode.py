"""Pre-decoded RV32IM instructions: decode a linked binary exactly once.

The RV32IM counterpart of :mod:`repro.straight.predecode`, built on the
generic machinery in :mod:`repro.isa.predecode`: a dense ``RK_*`` dispatch
kind space plus the static ``_decode_one`` hook, with ALU/compare/branch
evaluators pre-bound, immediates pre-wrapped, branch/jump targets
pre-resolved to instruction indices, link values precomputed, and the
call/return stream annotations resolved statically.

The ``BB`` block-header marker of the BasicBlocker-style ``bb`` ISA decodes
here too (kind :data:`RK_BB`, a functional no-op): ``bb`` programs are
RV32IM programs plus block headers, so they share this decoder and the
:class:`~repro.riscv.interpreter.RiscvInterpreter` hot path outright.
"""

from functools import partial

from repro.common.bitops import wrap32
from repro.common.layout import WORD_BYTES
from repro.ir.passes.constfold import eval_binop, eval_icmp
from repro.isa.predecode import DecodedOp
from repro.isa.predecode import decode_program as _decode_program

#: Dispatch kinds (dense ints; the interpreter dispatches on these instead
#: of hashing mnemonic strings per retired instruction).
RK_ALU = 0       # R-format binop/compare of two registers
RK_ALU_IMM = 1   # I-format binop/compare of a register and an immediate
RK_LUI = 2
RK_AUIPC = 3
RK_LOAD = 4      # LW
RK_STORE = 5     # SW
RK_BRANCH = 6    # conditional B-format branches
RK_JAL = 7
RK_JALR = 8
RK_ECALL = 9
RK_BB = 10       # bb block header: functional no-op

_R_BINOPS = {
    "ADD": "add",
    "SUB": "sub",
    "SLL": "shl",
    "XOR": "xor",
    "SRL": "lshr",
    "SRA": "ashr",
    "OR": "or",
    "AND": "and",
    "MUL": "mul",
    "DIV": "sdiv",
    "DIVU": "udiv",
    "REM": "srem",
    "REMU": "urem",
}
_I_BINOPS = {
    "ADDI": "add",
    "XORI": "xor",
    "ORI": "or",
    "ANDI": "and",
    "SLLI": "shl",
    "SRLI": "lshr",
    "SRAI": "ashr",
}
_BRANCH_PREDS = {
    "BEQ": "eq",
    "BNE": "ne",
    "BLT": "slt",
    "BGE": "sge",
    "BLTU": "ult",
    "BGEU": "uge",
}


def _trace_srcs(*regs):
    """The commit-stream source list: used registers, x0 elided."""
    return tuple(r for r in regs if r)


def _decode_one(index, instr, text_base):
    pc = text_base + index * WORD_BYTES
    m = instr.mnemonic
    rd = instr.rd
    rs1 = instr.rs1
    rs2 = instr.rs2
    # The architectural destination as the commit stream reports it (and as
    # the register write sees it): x0 writes are elided entirely.
    dest = rd if rd not in (None, 0) else None
    srcs = ()
    operand = None
    target_index = None
    target_pc = None
    if m in _R_BINOPS:
        kind = RK_ALU
        operand = (partial(eval_binop, _R_BINOPS[m]), rs1, rs2)
        srcs = _trace_srcs(rs1, rs2)
    elif m in ("SLT", "SLTU"):
        kind = RK_ALU
        operand = (partial(eval_icmp, "slt" if m == "SLT" else "ult"), rs1, rs2)
        srcs = _trace_srcs(rs1, rs2)
    elif m in _I_BINOPS:
        kind = RK_ALU_IMM
        operand = (partial(eval_binop, _I_BINOPS[m]), rs1, wrap32(instr.imm))
        srcs = _trace_srcs(rs1)
    elif m in ("SLTI", "SLTIU"):
        kind = RK_ALU_IMM
        operand = (
            partial(eval_icmp, "slt" if m == "SLTI" else "ult"),
            rs1,
            wrap32(instr.imm),
        )
        srcs = _trace_srcs(rs1)
    elif m == "LUI":
        kind = RK_LUI
        operand = wrap32(instr.imm << 12)
    elif m == "AUIPC":
        kind = RK_AUIPC
        operand = wrap32(pc + (instr.imm << 12))
    elif m == "LW":
        kind = RK_LOAD
        operand = (rs1, instr.imm)
        srcs = _trace_srcs(rs1)
    elif m == "SW":
        kind = RK_STORE
        operand = (rs1, rs2, instr.imm)
        srcs = _trace_srcs(rs1, rs2)
    elif m in _BRANCH_PREDS:
        kind = RK_BRANCH
        operand = (partial(eval_icmp, _BRANCH_PREDS[m]), rs1, rs2)
        target_pc = pc + instr.imm
        target_index = (target_pc - text_base) // WORD_BYTES
        srcs = _trace_srcs(rs1, rs2)
    elif m == "JAL":
        kind = RK_JAL
        target_pc = pc + instr.imm
        target_index = (target_pc - text_base) // WORD_BYTES
        operand = (pc + WORD_BYTES, rd == 1)  # link value, is_call
    elif m == "JALR":
        kind = RK_JALR
        operand = (
            rs1,
            instr.imm,
            pc + WORD_BYTES,           # link value
            rd == 1,                   # is_call
            rd == 0 and rs1 == 1,      # is_return
        )
        srcs = _trace_srcs(rs1)
    elif m == "ECALL":
        kind = RK_ECALL
        srcs = (10, 17)  # a0, a7
    elif m == "BB":
        kind = RK_BB
    else:  # pragma: no cover - the opcode table is closed
        raise ValueError(f"unimplemented mnemonic {m}")
    return DecodedOp(
        index, pc, kind, instr, operand, target_index, target_pc,
        srcs=srcs, dest=dest,
    )


def decode_program(program):
    """The memoized decoded-op array of ``program`` (RV32IM kinds)."""
    return _decode_program(program, _decode_one)
