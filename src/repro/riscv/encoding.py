"""RV32IM binary encoding, following the RISC-V unprivileged spec exactly."""

from repro.common.bitops import bits, fits_signed, sext
from repro.common.errors import AsmError
from repro.riscv.isa import RInstr, OPCODES


def encode(instr):
    """Encode an :class:`RInstr` (with resolved immediate) to a 32-bit word."""
    spec = instr.spec
    if instr.label is not None:
        raise AsmError(f"cannot encode unresolved label in {instr!r}")
    fmt = spec.fmt
    imm = instr.imm

    if fmt == "R":
        return (
            (spec.funct7 << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (instr.rd << 7)
            | spec.opcode
        )
    if fmt == "I":
        if instr.mnemonic in ("SLLI", "SRLI", "SRAI"):
            if not 0 <= imm < 32:
                raise AsmError(f"{instr!r}: shift amount out of range")
            imm_field = (spec.funct7 << 5) | imm
        else:
            if not fits_signed(imm, 12):
                raise AsmError(f"{instr!r}: immediate {imm} does not fit 12 bits")
            imm_field = imm & 0xFFF
        return (
            (imm_field << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (instr.rd << 7)
            | spec.opcode
        )
    if fmt == "S":
        if not fits_signed(imm, 12):
            raise AsmError(f"{instr!r}: immediate {imm} does not fit 12 bits")
        u = imm & 0xFFF
        return (
            (bits(u, 11, 5) << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (bits(u, 4, 0) << 7)
            | spec.opcode
        )
    if fmt == "B":
        if imm % 2 != 0 or not fits_signed(imm, 13):
            raise AsmError(f"{instr!r}: bad branch offset {imm}")
        u = imm & 0x1FFF
        return (
            (bits(u, 12, 12) << 31)
            | (bits(u, 10, 5) << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (bits(u, 4, 1) << 8)
            | (bits(u, 11, 11) << 7)
            | spec.opcode
        )
    if fmt == "U":
        if not 0 <= imm < (1 << 20):
            raise AsmError(f"{instr!r}: U immediate out of range")
        return (imm << 12) | (instr.rd << 7) | spec.opcode
    if fmt == "J":
        if imm % 2 != 0 or not fits_signed(imm, 21):
            raise AsmError(f"{instr!r}: bad jump offset {imm}")
        u = imm & 0x1F_FFFF
        return (
            (bits(u, 20, 20) << 31)
            | (bits(u, 10, 1) << 21)
            | (bits(u, 11, 11) << 20)
            | (bits(u, 19, 12) << 12)
            | (instr.rd << 7)
            | spec.opcode
        )
    if fmt == "SYS":
        return spec.opcode  # ECALL: funct12 = 0
    raise AsmError(f"unknown format {fmt!r}")  # pragma: no cover


# Lookup: (opcode, funct3, funct7-or-None) -> mnemonic, built once.
def _build_decoder_index():
    index = {}
    for mnemonic, spec in OPCODES.items():
        if spec.fmt == "R" or mnemonic in ("SLLI", "SRLI", "SRAI"):
            index[(spec.opcode, spec.funct3, spec.funct7)] = mnemonic
        elif spec.fmt in ("I", "S", "B"):
            index[(spec.opcode, spec.funct3, None)] = mnemonic
        else:  # U, J, SYS keyed by opcode alone
            index[(spec.opcode, None, None)] = mnemonic
    return index


_DECODER = _build_decoder_index()


def decode(word):
    """Decode a 32-bit word to an :class:`RInstr`."""
    opcode = bits(word, 6, 0)
    funct3 = bits(word, 14, 12)
    funct7 = bits(word, 31, 25)
    rd = bits(word, 11, 7)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)

    mnemonic = (
        _DECODER.get((opcode, funct3, funct7))
        or _DECODER.get((opcode, funct3, None))
        or _DECODER.get((opcode, None, None))
    )
    if mnemonic is None:
        raise AsmError(f"cannot decode word {word:#010x}")
    spec = OPCODES[mnemonic]
    fmt = spec.fmt

    if fmt == "R":
        return RInstr(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if fmt == "I":
        if mnemonic in ("SLLI", "SRLI", "SRAI"):
            imm = rs2  # shamt
        else:
            imm = sext(bits(word, 31, 20), 12)
        return RInstr(mnemonic, rd=rd, rs1=rs1, imm=imm)
    if fmt == "S":
        imm = sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)
        return RInstr(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    if fmt == "B":
        imm = sext(
            (bits(word, 31, 31) << 12)
            | (bits(word, 7, 7) << 11)
            | (bits(word, 30, 25) << 5)
            | (bits(word, 11, 8) << 1),
            13,
        )
        return RInstr(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    if fmt == "U":
        return RInstr(mnemonic, rd=rd, imm=bits(word, 31, 12))
    if fmt == "J":
        imm = sext(
            (bits(word, 31, 31) << 20)
            | (bits(word, 19, 12) << 12)
            | (bits(word, 20, 20) << 11)
            | (bits(word, 30, 21) << 1),
            21,
        )
        return RInstr(mnemonic, rd=rd, imm=imm)
    return RInstr(mnemonic)  # SYS
