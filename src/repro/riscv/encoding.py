"""RV32IM binary encoding, following the RISC-V unprivileged spec exactly.

Both :func:`encode` and the decoder are table-driven off each instruction's
spec, so RV32IM-derived ISAs (the ``bb`` BasicBlocker variant) reuse them by
calling :func:`make_decoder` with their extended opcode table and
instruction class — no per-ISA copy of the bit scrambles.
"""

from repro.common.bitops import (
    FieldOverflow,
    bits,
    sext,
    signed_field,
    unsigned_field,
)
from repro.common.errors import AsmError
from repro.riscv.isa import RInstr, OPCODES

_SHIFTS = ("SLLI", "SRLI", "SRAI")


def encode(instr):
    """Encode an :class:`RInstr` (with resolved immediate) to a 32-bit word."""
    spec = instr.spec
    if instr.label is not None:
        raise AsmError(f"cannot encode unresolved label in {instr!r}")
    fmt = spec.fmt
    imm = instr.imm

    try:
        if fmt == "R":
            return (
                (spec.funct7 << 25)
                | (instr.rs2 << 20)
                | (instr.rs1 << 15)
                | (spec.funct3 << 12)
                | (instr.rd << 7)
                | spec.opcode
            )
        if fmt == "I":
            if instr.mnemonic in _SHIFTS:
                if not 0 <= imm < 32:
                    raise AsmError(f"{instr!r}: shift amount out of range")
                imm_field = (spec.funct7 << 5) | imm
            else:
                imm_field = signed_field(imm, 12)
            return (
                (imm_field << 20)
                | (instr.rs1 << 15)
                | (spec.funct3 << 12)
                | (instr.rd << 7)
                | spec.opcode
            )
        if fmt == "S":
            u = signed_field(imm, 12)
            return (
                (bits(u, 11, 5) << 25)
                | (instr.rs2 << 20)
                | (instr.rs1 << 15)
                | (spec.funct3 << 12)
                | (bits(u, 4, 0) << 7)
                | spec.opcode
            )
        if fmt == "B":
            if imm % 2 != 0:
                raise AsmError(f"{instr!r}: bad branch offset {imm}")
            u = signed_field(imm, 13)
            return (
                (bits(u, 12, 12) << 31)
                | (bits(u, 10, 5) << 25)
                | (instr.rs2 << 20)
                | (instr.rs1 << 15)
                | (spec.funct3 << 12)
                | (bits(u, 4, 1) << 8)
                | (bits(u, 11, 11) << 7)
                | spec.opcode
            )
        if fmt == "U":
            return (unsigned_field(imm, 20) << 12) | (instr.rd << 7) | spec.opcode
        if fmt == "J":
            if imm % 2 != 0:
                raise AsmError(f"{instr!r}: bad jump offset {imm}")
            u = signed_field(imm, 21)
            return (
                (bits(u, 20, 20) << 31)
                | (bits(u, 10, 1) << 21)
                | (bits(u, 11, 11) << 20)
                | (bits(u, 19, 12) << 12)
                | (instr.rd << 7)
                | spec.opcode
            )
        if fmt == "SYS":
            return spec.opcode  # ECALL: funct12 = 0
    except FieldOverflow as exc:
        raise AsmError(f"{instr!r}: {exc}") from None
    raise AsmError(f"unknown format {fmt!r}")  # pragma: no cover


# Lookup: (opcode, funct3, funct7-or-None) -> mnemonic, built once per table.
def _build_decoder_index(opcodes):
    index = {}
    for mnemonic, spec in opcodes.items():
        if spec.fmt == "R" or mnemonic in _SHIFTS:
            index[(spec.opcode, spec.funct3, spec.funct7)] = mnemonic
        elif spec.fmt in ("I", "S", "B"):
            index[(spec.opcode, spec.funct3, None)] = mnemonic
        else:  # U, J, SYS keyed by opcode alone
            index[(spec.opcode, None, None)] = mnemonic
    return index


def make_decoder(opcodes, instr_cls):
    """A ``decode(word)`` for one RV32IM-family opcode table."""
    decoder_index = _build_decoder_index(opcodes)

    def decode(word):
        opcode = bits(word, 6, 0)
        funct3 = bits(word, 14, 12)
        funct7 = bits(word, 31, 25)
        rd = bits(word, 11, 7)
        rs1 = bits(word, 19, 15)
        rs2 = bits(word, 24, 20)

        mnemonic = (
            decoder_index.get((opcode, funct3, funct7))
            or decoder_index.get((opcode, funct3, None))
            or decoder_index.get((opcode, None, None))
        )
        if mnemonic is None:
            raise AsmError(f"cannot decode word {word:#010x}")
        spec = opcodes[mnemonic]
        fmt = spec.fmt

        if fmt == "R":
            return instr_cls(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        if fmt == "I":
            if mnemonic in _SHIFTS:
                imm = rs2  # shamt
            else:
                imm = sext(bits(word, 31, 20), 12)
            return instr_cls(mnemonic, rd=rd, rs1=rs1, imm=imm)
        if fmt == "S":
            imm = sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)
            return instr_cls(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
        if fmt == "B":
            imm = sext(
                (bits(word, 31, 31) << 12)
                | (bits(word, 7, 7) << 11)
                | (bits(word, 30, 25) << 5)
                | (bits(word, 11, 8) << 1),
                13,
            )
            return instr_cls(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
        if fmt == "U":
            return instr_cls(mnemonic, rd=rd, imm=bits(word, 31, 12))
        if fmt == "J":
            imm = sext(
                (bits(word, 31, 31) << 20)
                | (bits(word, 19, 12) << 12)
                | (bits(word, 20, 20) << 11)
                | (bits(word, 30, 21) << 1),
                21,
            )
            return instr_cls(mnemonic, rd=rd, imm=imm)
        return instr_cls(mnemonic)  # SYS

    return decode


decode = make_decoder(OPCODES, RInstr)
