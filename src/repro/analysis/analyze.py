"""``straight analyze``: one static-analysis surface per binary.

Bundles, for any registered ISA with analysis support, the verifier's
diagnostics (errors plus the advisory lint tier) and the static ILP pass
(per-block critical paths, simple-loop recurrences, the IPC upper bound per
machine width) into a single report with deterministic text and JSON
renderings — diagnostics in the shared ``sort_key`` order, blocks and
loops in leader order, so two runs over the same binary are byte-identical.
"""

from repro import isa as isa_registry
from repro.analysis.diagnostics import Report
from repro.analysis.ilp_static import analyze_ilp

#: Machine widths the IPC bound is reported for (the evaluated cores).
DEFAULT_WIDTHS = (2, 4)


class AnalysisBundle:
    """Verifier report + static ILP report for one binary."""

    def __init__(self, name, isa, verify_report, ilp_report,
                 widths=DEFAULT_WIDTHS):
        self.name = name
        self.isa = isa
        self.verify_report = verify_report
        self.ilp_report = ilp_report
        self.widths = tuple(widths)

    @property
    def ok(self):
        return not self.verify_report.has_errors()

    def as_dict(self):
        return {
            "name": self.name,
            "isa": self.isa,
            "ok": self.ok,
            "verify": self.verify_report.as_dict(),
            "ilp": self.ilp_report.as_dict(self.widths),
        }

    def text(self, max_blocks=12):
        lines = [f"analyze {self.name} [{self.isa}]: "
                 f"{self.verify_report.summary()}"]
        for diag in self.verify_report.sorted():
            lines.append(f"  {diag.render()}")
        lines.append(self.ilp_report.text(max_blocks=max_blocks))
        return "\n".join(lines)


def analyze_program(program, isa, name=None, lint=True,
                    widths=DEFAULT_WIDTHS):
    """Run the full static-analysis stack on one linked binary.

    ``isa`` names a registered ISA; its descriptor supplies both the
    verifier (``static_check``) and the analysis support the ILP pass
    needs.  Raises ``ValueError`` when the ISA has no analysis support.
    """
    descriptor = isa_registry.get(isa)
    support = descriptor.analysis() if descriptor.analysis else None
    if support is None:
        raise ValueError(f"ISA {isa!r} has no analysis support")
    if descriptor.has_static_check:
        verify_report = descriptor.static_check(program, lint=lint)
    else:
        verify_report = Report(program)
    ilp_report = analyze_ilp(program, support)
    return AnalysisBundle(
        name or descriptor.name, descriptor.name, verify_report, ilp_report,
        widths=widths,
    )
