"""ISA-generic static analysis of linked binaries.

One dataflow fixpoint engine (:mod:`repro.analysis.framework`),
parameterized over each registered ISA's analysis support, carries every
pass in the repo: ``verify_program`` proves the STRAIGHT
distance/write-once/SP/calling-convention discipline over every CFG path
(translation validation when the backend's producer manifest is attached);
the gpr-model and ``bb`` verifiers live in :mod:`repro.riscv.verify` and
:mod:`repro.bb.verify`; liveness / value-range lints in
:mod:`repro.analysis.passes`; the static ILP / IPC-bound pass in
:mod:`repro.analysis.ilp_static`; and :func:`analyze_program` bundles the
whole stack for one binary.  ``run_campaign_for_isa`` measures that each
ISA's verifier catches seeded corruption.  See DESIGN.md §8 (STRAIGHT
domain) and §13 (the generic framework).
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    ERROR,
    INFO,
    Report,
    WARNING,
)
from repro.analysis.verifier import verify_program
from repro.analysis.cfg import build_cfg
from repro.analysis.framework import (
    Analysis,
    fixpoint,
    solve_backward,
    solve_forward,
    support_for,
)
from repro.analysis.analyze import AnalysisBundle, analyze_program
from repro.analysis.ilp_static import StaticIlpReport, analyze_ilp
from repro.analysis.mutation import (
    MutationReport,
    cached_mutation_campaign,
    run_bb_mutation_campaign,
    run_campaign_for_isa,
    run_gpr_mutation_campaign,
    run_mutation_campaign,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "INFO",
    "Report",
    "WARNING",
    "Analysis",
    "AnalysisBundle",
    "StaticIlpReport",
    "analyze_ilp",
    "analyze_program",
    "build_cfg",
    "fixpoint",
    "solve_backward",
    "solve_forward",
    "support_for",
    "verify_program",
    "MutationReport",
    "cached_mutation_campaign",
    "run_bb_mutation_campaign",
    "run_campaign_for_isa",
    "run_gpr_mutation_campaign",
    "run_mutation_campaign",
]
