"""Static analysis of assembled STRAIGHT binaries.

``verify_program`` proves the distance/write-once/SP/calling-convention
discipline over every CFG path of a linked program (translation validation
when the backend's producer manifest is attached); ``run_mutation_campaign``
measures that the verifier catches seeded distance corruption.  See
DESIGN.md §8 for the abstract domain and the proof obligations.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    ERROR,
    INFO,
    Report,
    WARNING,
)
from repro.analysis.verifier import verify_program
from repro.analysis.cfg import build_cfg
from repro.analysis.mutation import MutationReport, run_mutation_campaign

__all__ = [
    "CODES",
    "Diagnostic",
    "ERROR",
    "INFO",
    "Report",
    "WARNING",
    "build_cfg",
    "verify_program",
    "MutationReport",
    "run_mutation_campaign",
]
