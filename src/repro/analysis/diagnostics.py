"""Diagnostics framework for the static STRAIGHT verifier.

Every finding carries a stable code (``STR0xx`` for invariant violations,
``STR1xx`` for lints), a severity, the linked instruction index/PC, the
containing function, a label-relative location (``main.loop+3``), and — when
the unit was assembled from text — the 1-based assembly source line mapped
back through the assembler (:attr:`AsmUnit.origins`).

The catalog below is the contract: codes are append-only and never reused,
so downstream tooling (CI gates, baselines) can match on them.
"""

from repro.common.layout import WORD_BYTES

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (severity, title).  STR0xx: proof obligations; STR1xx: lints.
CODES = {
    "STR001": (ERROR, "merge-inconsistent operand"),
    "STR002": (ERROR, "distance exceeds max_distance"),
    "STR003": (ERROR, "operand reaches across a call boundary"),
    "STR004": (ERROR, "SP offset differs across incoming paths"),
    "STR005": (ERROR, "SP offset not restored at return"),
    "STR006": (ERROR, "distance reaches before program start"),
    "STR007": (ERROR, "JR target is not the return address"),
    "STR008": (ERROR, "call site does not provide a value the callee consumes"),
    "STR009": (ERROR, "instruction does not survive encode/decode"),
    "STR010": (ERROR, "control transfer leaves the text segment"),
    "STR011": (ERROR, "distance names a different producer than intended"),
    "STR012": (ERROR, "consumes a caller-internal value beyond the convention"),
    "STR101": (WARNING, "dead destination: result is never consumed"),
    "STR102": (WARNING, "redundant RMOV: re-produced value is never consumed"),
    "STR103": (INFO, "long RMOV relay chain"),
    "STR104": (INFO, "return address reloaded through memory"),
    "STR105": (WARNING, "unreachable instruction"),
    "STR106": (INFO, "consumes the call-boundary JR value"),
}


class Diagnostic:
    """One verifier or lint finding, anchored to a linked instruction."""

    __slots__ = (
        "code",
        "severity",
        "message",
        "index",
        "pc",
        "function",
        "location",
        "origin",
        "data",
    )

    def __init__(
        self,
        code,
        message,
        index=None,
        pc=None,
        function=None,
        location=None,
        origin=None,
        data=None,
    ):
        if code not in CODES:
            raise KeyError(f"unknown diagnostic code {code!r}")
        self.code = code
        self.severity = CODES[code][0]
        self.message = message
        self.index = index
        self.pc = pc
        self.function = function
        self.location = location
        self.origin = origin
        self.data = dict(data) if data else {}

    @property
    def title(self):
        return CODES[self.code][1]

    def sort_key(self):
        return (
            _SEVERITY_ORDER[self.severity],
            self.code,
            self.index if self.index is not None else -1,
        )

    def render(self):
        where = self.location or (f"pc={self.pc:#x}" if self.pc is not None else "?")
        prefix = f"{where}: {self.severity} {self.code}"
        if self.origin is not None:
            prefix += f" (asm line {self.origin})"
        return f"{prefix}: {self.message}"

    def as_dict(self):
        payload = {
            "code": self.code,
            "severity": self.severity,
            "title": self.title,
            "message": self.message,
            "index": self.index,
            "pc": self.pc,
            "function": self.function,
            "location": self.location,
            "origin": self.origin,
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    def __repr__(self):
        return f"Diagnostic({self.code}, {self.location!r}, {self.message!r})"


class Report:
    """The ordered set of diagnostics one verification run produced."""

    def __init__(self, program=None):
        self.program = program
        self.diagnostics = []
        self._seen = set()
        self.stats = {}

    # -- emission ------------------------------------------------------------

    def emit(self, code, message, index=None, **kwargs):
        """Add one diagnostic; duplicate (code, index, operand) are dropped."""
        dedup = (code, index, kwargs.get("data", {}).get("operand"))
        if index is not None and dedup in self._seen:
            return None
        self._seen.add(dedup)
        pc = kwargs.pop("pc", None)
        location = kwargs.pop("location", None)
        origin = kwargs.pop("origin", None)
        if index is not None and self.program is not None:
            if pc is None:
                pc = self.program.text_base + index * WORD_BYTES
            if location is None:
                location = locate(self.program, index)
            if origin is None and index < len(self.program.origins):
                origin = self.program.origins[index]
        diag = Diagnostic(
            code,
            message,
            index=index,
            pc=pc,
            location=location,
            origin=origin,
            **kwargs,
        )
        self.diagnostics.append(diag)
        return diag

    # -- queries -------------------------------------------------------------

    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    def has_errors(self):
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self):
        counts = {ERROR: 0, WARNING: 0, INFO: 0}
        for diag in self.diagnostics:
            counts[diag.severity] += 1
        return counts

    def by_code(self):
        table = {}
        for diag in self.diagnostics:
            table.setdefault(diag.code, []).append(diag)
        return table

    def sorted(self):
        return sorted(self.diagnostics, key=lambda d: d.sort_key())

    # -- rendering -----------------------------------------------------------

    def summary(self):
        counts = self.counts()
        return (
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info"
        )

    def text(self, max_items=None):
        lines = [d.render() for d in self.sorted()]
        if max_items is not None and len(lines) > max_items:
            dropped = len(lines) - max_items
            lines = lines[:max_items] + [f"... ({dropped} more)"]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self):
        return {
            "counts": self.counts(),
            "stats": dict(self.stats),
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }


def locate(program, index):
    """Label-relative position of instruction ``index`` (``main.loop+3``)."""
    best_label, best_index = None, -1
    for label, label_index in program.labels.items():
        if best_index < label_index <= index:
            best_label, best_index = label, label_index
        elif label_index == best_index and best_label is not None:
            # Prefer the more specific (dotted, later-registered) label.
            if label.count(".") > best_label.count("."):
                best_label = label
    if best_label is None:
        return f"+{index}"
    offset = index - best_index
    return best_label if offset == 0 else f"{best_label}+{offset}"
