"""Diagnostics framework shared by every ISA's static analyses.

Every finding carries a stable code, a severity, the linked instruction
index/PC, the containing function, a label-relative location
(``main.loop+3``), and — when the unit was assembled from text — the
1-based assembly source line mapped back through the assembler
(:attr:`AsmUnit.origins`).

The catalog below is the contract: codes are append-only and never reused,
so downstream tooling (CI gates, baselines) can match on them.  Namespaces
by analysis: ``STR0xx`` STRAIGHT proof obligations, ``STR1xx`` STRAIGHT
lints, ``BBV0xx`` the ``bb`` block-structure verifier, ``RVG0xx`` the
gpr-model (rv32im) dataflow verifier, ``ANL1xx`` ISA-generic analysis
lints (liveness / value range).

Rendering is fully deterministic: diagnostics sort by (pc, code) with
stable insertion order breaking ties, so ``straight verify --json`` output
is byte-stable across runs.
"""

from repro.common.layout import WORD_BYTES

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (severity, title).  STR0xx: proof obligations; STR1xx: lints.
CODES = {
    "STR001": (ERROR, "merge-inconsistent operand"),
    "STR002": (ERROR, "distance exceeds max_distance"),
    "STR003": (ERROR, "operand reaches across a call boundary"),
    "STR004": (ERROR, "SP offset differs across incoming paths"),
    "STR005": (ERROR, "SP offset not restored at return"),
    "STR006": (ERROR, "distance reaches before program start"),
    "STR007": (ERROR, "JR target is not the return address"),
    "STR008": (ERROR, "call site does not provide a value the callee consumes"),
    "STR009": (ERROR, "instruction does not survive encode/decode"),
    "STR010": (ERROR, "control transfer leaves the text segment"),
    "STR011": (ERROR, "distance names a different producer than intended"),
    "STR012": (ERROR, "consumes a caller-internal value beyond the convention"),
    "STR101": (WARNING, "dead destination: result is never consumed"),
    "STR102": (WARNING, "redundant RMOV: re-produced value is never consumed"),
    "STR103": (INFO, "long RMOV relay chain"),
    "STR104": (INFO, "return address reloaded through memory"),
    "STR105": (WARNING, "unreachable instruction"),
    "STR106": (INFO, "consumes the call-boundary JR value"),
    # bb block-structure verifier (repro.bb.verify).
    "BBV001": (ERROR, "control transfer target is not a block header"),
    "BBV002": (ERROR, "block header announces the wrong instruction count"),
    "BBV003": (ERROR, "instruction after a control transfer is not a header"),
    "BBV004": (ERROR, "branch or jump lands inside a basic block"),
    # gpr-model dataflow verifier (repro.riscv.verify).
    "RVG001": (ERROR, "register may be read before any write"),
    "RVG002": (ERROR, "register may be clobbered by an intervening call"),
    "RVG003": (ERROR, "SP offset differs across incoming paths"),
    "RVG004": (ERROR, "SP offset not restored at return"),
    "RVG005": (ERROR, "SP written outside the ADDI sp, sp, imm discipline"),
    "RVG006": (ERROR, "control transfer leaves the text segment"),
    "RVG007": (ERROR, "value-returning function may return without defining a0"),
    # ISA-generic analysis lints (repro.analysis.passes).
    "ANL101": (WARNING, "dead definition: register is overwritten before any read"),
    "ANL102": (WARNING, "branch condition is statically constant"),
    "ANL103": (WARNING, "division by a constant zero"),
}


class Diagnostic:
    """One verifier or lint finding, anchored to a linked instruction."""

    __slots__ = (
        "code",
        "severity",
        "message",
        "index",
        "pc",
        "function",
        "location",
        "origin",
        "data",
    )

    def __init__(
        self,
        code,
        message,
        index=None,
        pc=None,
        function=None,
        location=None,
        origin=None,
        data=None,
    ):
        if code not in CODES:
            raise KeyError(f"unknown diagnostic code {code!r}")
        self.code = code
        self.severity = CODES[code][0]
        self.message = message
        self.index = index
        self.pc = pc
        self.function = function
        self.location = location
        self.origin = origin
        self.data = dict(data) if data else {}

    @property
    def title(self):
        return CODES[self.code][1]

    def sort_key(self):
        # Program order first (pc, then code for several findings at one
        # pc); list-insertion order — itself deterministic — breaks ties,
        # keeping text and JSON rendering byte-stable across runs.
        return (
            self.pc if self.pc is not None else -1,
            self.code,
            self.index if self.index is not None else -1,
            _SEVERITY_ORDER[self.severity],
        )

    def render(self):
        where = self.location or (f"pc={self.pc:#x}" if self.pc is not None else "?")
        prefix = f"{where}: {self.severity} {self.code}"
        if self.origin is not None:
            prefix += f" (asm line {self.origin})"
        return f"{prefix}: {self.message}"

    def as_dict(self):
        payload = {
            "code": self.code,
            "severity": self.severity,
            "title": self.title,
            "message": self.message,
            "index": self.index,
            "pc": self.pc,
            "function": self.function,
            "location": self.location,
            "origin": self.origin,
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    def __repr__(self):
        return f"Diagnostic({self.code}, {self.location!r}, {self.message!r})"


class Report:
    """The ordered set of diagnostics one verification run produced."""

    def __init__(self, program=None):
        self.program = program
        self.diagnostics = []
        self._seen = set()
        self.stats = {}

    # -- emission ------------------------------------------------------------

    def emit(self, code, message, index=None, **kwargs):
        """Add one diagnostic; duplicate (code, index, operand) are dropped."""
        dedup = (code, index, kwargs.get("data", {}).get("operand"))
        if index is not None and dedup in self._seen:
            return None
        self._seen.add(dedup)
        pc = kwargs.pop("pc", None)
        location = kwargs.pop("location", None)
        origin = kwargs.pop("origin", None)
        if index is not None and self.program is not None:
            if pc is None:
                pc = self.program.text_base + index * WORD_BYTES
            if location is None:
                location = locate(self.program, index)
            origins = getattr(self.program, "origins", None)
            if origin is None and origins is not None and index < len(origins):
                origin = origins[index]
        diag = Diagnostic(
            code,
            message,
            index=index,
            pc=pc,
            location=location,
            origin=origin,
            **kwargs,
        )
        self.diagnostics.append(diag)
        return diag

    # -- queries -------------------------------------------------------------

    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    def has_errors(self):
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self):
        counts = {ERROR: 0, WARNING: 0, INFO: 0}
        for diag in self.diagnostics:
            counts[diag.severity] += 1
        return counts

    def by_code(self):
        table = {}
        for diag in self.diagnostics:
            table.setdefault(diag.code, []).append(diag)
        return table

    def sorted(self):
        return sorted(self.diagnostics, key=lambda d: d.sort_key())

    # -- rendering -----------------------------------------------------------

    def summary(self):
        counts = self.counts()
        return (
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info"
        )

    def text(self, max_items=None):
        lines = [d.render() for d in self.sorted()]
        if max_items is not None and len(lines) > max_items:
            dropped = len(lines) - max_items
            lines = lines[:max_items] + [f"... ({dropped} more)"]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_dict(self):
        return {
            "counts": self.counts(),
            "stats": dict(self.stats),
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }


def locate(program, index):
    """Label-relative position of instruction ``index`` (``main.loop+3``)."""
    best_label, best_index = None, -1
    for label, label_index in program.labels.items():
        if best_index < label_index <= index:
            best_label, best_index = label, label_index
        elif label_index == best_index and best_label is not None:
            # Prefer the more specific (dotted, later-registered) label.
            if label.count(".") > best_label.count("."):
                best_label = label
    if best_label is None:
        return f"+{index}"
    offset = index - best_index
    return best_label if offset == 0 else f"{best_label}+{offset}"
