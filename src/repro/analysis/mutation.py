"""Seeded mutation campaign: prove the static verifier catches corruption.

The dual of :mod:`repro.guardrails.faultinject`: instead of flipping
simulator state at run time, this corrupts operand *distances* in a
known-good linked binary — the encodings a STRAIGHT compiler bug or a bad
linker relocation would actually produce — and checks that
:func:`repro.analysis.verify_program` flags every mutant.

Mutation targets (all on ``SInstr.srcs``, keeping the producer manifest
truthful so detection measures the verifier, not a stale manifest):

* ``off_by_one``  — a distance nudged by ±1 (the classic refresh-slot bug);
* ``bit_flip``    — one of the 10 encoding bits of a distance flipped;
* ``retarget``    — a distance rewritten to another in-range value;
* ``zeroed``      — a distance replaced by 0 (reads the zero register);
* ``rmov_retarget`` — specifically an RMOV's source distance, modelling a
  corrupted merge-refresh or bounding relay.

Every mutation changes the dynamic dataflow of some reachable instruction,
so an undetected mutant is a genuine verifier gap, not a benign rewrite.

The campaign runs over *every* registered ISA (:func:`run_campaign_for_isa`).
The gpr-model campaigns corrupt what an RV32IM backend bug would corrupt —
stack-adjust immediates, read operands, control-transfer offsets — guided
by the clean program's converged abstract state
(:func:`repro.riscv.verify.undef_map`) so that each seeded read targets a
register the verifier *proves* may be unwritten or call-clobbered.  The
``bb`` campaign corrupts the block-structure contract itself (header
counts, branch/jump targets).  :func:`cached_mutation_campaign` memoizes
golden campaign runs through the harness :class:`ResultCache`, keyed by the
binary digest and every campaign parameter, so CI reruns are warm.
"""

import copy
import random

from repro.analysis.verifier import verify_program

#: The campaign's mutation mix: (target, weight).
DEFAULT_MIX = (
    ("off_by_one", 30),
    ("bit_flip", 25),
    ("retarget", 20),
    ("zeroed", 10),
    ("rmov_retarget", 15),
)

#: gpr-model (RV32IM) mix: SP bookkeeping, proven-undefined reads,
#: call-clobbered reads.
GPR_MIX = (
    ("sp_imm", 30),
    ("undef_read", 45),
    ("clob_read", 25),
)

#: ``bb`` structural mix: header counts and control-transfer targets.
BB_MIX = (
    ("header_count", 40),
    ("branch_retarget", 35),
    ("jump_retarget", 25),
)


class MutationReport:
    """Aggregated outcome of one verifier mutation campaign."""

    def __init__(self, seed, records, isa="straight"):
        self.seed = seed
        self.isa = isa
        self.records = records
        self.total = len(records)
        self.detected = sum(1 for r in records if r["detected"])
        self.by_target = {}
        for record in records:
            bucket = self.by_target.setdefault(
                record["target"], {"detected": 0, "missed": 0}
            )
            bucket["detected" if record["detected"] else "missed"] += 1

    @property
    def detection_rate(self):
        return self.detected / self.total if self.total else 1.0

    def missed(self):
        return [r for r in self.records if not r["detected"]]

    @classmethod
    def from_payload(cls, payload):
        """Rehydrate a report from a cached campaign payload."""
        return cls(
            payload["seed"],
            payload["records"],
            isa=payload.get("isa", "straight"),
        )

    def payload(self):
        """The JSON-safe cacheable form (inverse of :meth:`from_payload`)."""
        return {"seed": self.seed, "isa": self.isa, "records": self.records}

    def as_dict(self):
        return {
            "seed": self.seed,
            "isa": self.isa,
            "total": self.total,
            "detected": self.detected,
            "missed": self.total - self.detected,
            "detection_rate": round(self.detection_rate, 4),
            "by_target": self.by_target,
        }

    def text(self):
        lines = [
            f"verifier mutation campaign [{self.isa}]: seed={self.seed} "
            f"mutants={self.total}",
            f"  detected {self.detected:4d}  ({self.detection_rate:.1%})",
            f"  missed   {self.total - self.detected:4d}",
        ]
        for target, bucket in sorted(self.by_target.items()):
            lines.append(
                f"    {target:15s} detected={bucket['detected']} "
                f"missed={bucket['missed']}"
            )
        for record in self.missed():
            lines.append(
                f"    MISSED {record['target']} at index {record['index']}: "
                f"{record['mutation']}"
            )
        return "\n".join(lines)


def _mutable_sites(program):
    """(index, operand) pairs whose distance a mutation may corrupt."""
    sites = []
    rmov_sites = []
    for index, instr in enumerate(program.instrs):
        for operand, dist in enumerate(instr.srcs):
            if dist > 0:
                sites.append((index, operand))
                if instr.mnemonic == "RMOV":
                    rmov_sites.append((index, operand))
    return sites, rmov_sites


def _mutate(rng, program, target, sites, rmov_sites, bound):
    """Apply one mutation in place; returns a (index, description) record."""
    pool = rmov_sites if target == "rmov_retarget" and rmov_sites else sites
    index, operand = pool[rng.randrange(len(pool))]
    instr = program.instrs[index]
    old = instr.srcs[operand]
    new = old
    while new == old:
        if target == "off_by_one":
            new = old + rng.choice((-1, 1))
            if not 0 <= new <= bound:
                new = old - (new - old)
        elif target == "bit_flip":
            new = old ^ (1 << rng.randrange(10))
        elif target == "zeroed":
            new = 0  # sites only list nonzero distances
        else:  # retarget / rmov_retarget
            new = rng.randrange(1, bound + 1)
    srcs = list(instr.srcs)
    srcs[operand] = new
    instr.srcs = tuple(srcs)  # bypass SInstr validation: corrupt on purpose
    return index, f"srcs[{operand}] {old} -> {new}"


def run_mutation_campaign(
    program, mutants=80, seed=20260805, mix=DEFAULT_MIX, max_distance=None
):
    """Corrupt ``mutants`` seeded copies of ``program``; verify each one.

    ``program`` must verify cleanly (no error diagnostics) before the
    campaign starts — a dirty baseline would make detection meaningless —
    otherwise ``ValueError`` is raised.  Returns a :class:`MutationReport`.
    """
    baseline = verify_program(program, max_distance=max_distance)
    if baseline.has_errors():
        raise ValueError(
            "mutation campaign needs a clean baseline, got:\n"
            + baseline.text(max_items=10)
        )
    bound = max_distance if max_distance is not None else program.max_distance
    sites, rmov_sites = _mutable_sites(program)
    if not sites:
        raise ValueError("program has no distance operands to mutate")

    rng = random.Random(seed)
    targets = [t for t, weight in mix for _ in range(weight)]
    records = []
    for _ in range(mutants):
        target = targets[rng.randrange(len(targets))]
        mutant = copy.deepcopy(program)
        index, description = _mutate(
            rng, mutant, target, sites, rmov_sites, bound
        )
        report = verify_program(mutant, max_distance=max_distance)
        records.append(
            {
                "target": target,
                "index": index,
                "mutation": description,
                "detected": report.has_errors(),
                "codes": sorted({d.code for d in report.errors()}),
            }
        )
    return MutationReport(seed, records)


# --------------------------------------------------------------------------
# gpr-model campaign (RV32IM and any future gpr ISA)
# --------------------------------------------------------------------------

_READ_FIELDS = {"R": ("rs1", "rs2"), "I": ("rs1",), "S": ("rs1", "rs2"),
                "B": ("rs1", "rs2")}


def _require_clean(report, isa):
    if report.has_errors():
        raise ValueError(
            f"mutation campaign needs a clean baseline ({isa}), got:\n"
            + report.text(max_items=10)
        )


def _gpr_sites(program):
    """Site pools for the gpr campaign, guided by the converged fixpoint.

    ``sp_sites`` are the ADDI-sp stack adjustments; ``undef_sites`` /
    ``clob_sites`` are ``(index, field, candidate registers)`` triples where
    retargeting the read to any candidate is *provably* detected — the
    candidates come from the clean program's own abstract state, and a read
    operand never feeds the transfer functions, so the mutant converges to
    the same state and the verifier must flag the read.
    """
    from repro.riscv.verify import undef_map

    table = undef_map(program)
    sp_sites = []
    undef_sites = []
    clob_sites = []
    for index, instr in enumerate(program.instrs):
        if instr.mnemonic == "BB":
            continue
        if instr.mnemonic == "ADDI" and instr.rd == 2 and instr.rs1 == 2:
            sp_sites.append(index)
        state = table.get(index)
        if state is None:  # unreachable from any function entry
            continue
        undef, clob = state
        for field in _READ_FIELDS.get(instr.spec.fmt, ()):
            old = getattr(instr, field)
            undef_regs = sorted(undef - {old})
            if undef_regs:
                undef_sites.append((index, field, undef_regs))
            clob_regs = sorted(clob - {old})
            if clob_regs:
                clob_sites.append((index, field, clob_regs))
    return sp_sites, undef_sites, clob_sites


def _mutate_gpr(rng, program, target, sp_sites, undef_sites, clob_sites):
    if target == "sp_imm":
        index = sp_sites[rng.randrange(len(sp_sites))]
        instr = program.instrs[index]
        old = instr.imm
        instr.imm = old + rng.choice((-4, 4))
        return index, f"imm {old} -> {instr.imm}"
    pool = clob_sites if target == "clob_read" and clob_sites else undef_sites
    index, field, regs = pool[rng.randrange(len(pool))]
    instr = program.instrs[index]
    old = getattr(instr, field)
    new = regs[rng.randrange(len(regs))]
    setattr(instr, field, new)
    return index, f"{field} {old} -> {new}"


def run_gpr_mutation_campaign(
    program, isa="riscv", mutants=40, seed=20260805, mix=GPR_MIX
):
    """Seeded corruption of a linked gpr-model binary; verify each mutant.

    Mutation targets model what an RV32IM backend or linker bug would
    produce: a mis-sized stack adjustment (``sp_imm``), a read operand
    rewired to a register no path has written (``undef_read``) or one an
    intervening call may have clobbered (``clob_read``).
    """
    from repro.riscv.verify import verify_program as gpr_verify

    _require_clean(gpr_verify(program), isa)
    sp_sites, undef_sites, clob_sites = _gpr_sites(program)
    if not undef_sites:
        raise ValueError("program has no provably-detectable read sites")

    rng = random.Random(seed)
    targets = [t for t, weight in mix for _ in range(weight)]
    records = []
    for _ in range(mutants):
        target = targets[rng.randrange(len(targets))]
        if target == "sp_imm" and not sp_sites:
            target = "undef_read"
        mutant = copy.deepcopy(program)
        index, description = _mutate_gpr(
            rng, mutant, target, sp_sites, undef_sites, clob_sites
        )
        report = gpr_verify(mutant)
        records.append(
            {
                "target": target,
                "index": index,
                "mutation": description,
                "detected": report.has_errors(),
                "codes": sorted({d.code for d in report.errors()}),
            }
        )
    return MutationReport(seed, records, isa=isa)


# --------------------------------------------------------------------------
# bb structural campaign
# --------------------------------------------------------------------------

def _bb_sites(program):
    """Header indices, transfer sites, and non-header target candidates."""
    headers = []
    branch_sites = []
    jump_sites = []
    non_headers = []
    for index, instr in enumerate(program.instrs):
        if instr.mnemonic == "BB":
            headers.append(index)
            continue
        non_headers.append(index)
        if instr.imm is None:
            continue
        if instr.spec.fmt == "B":
            branch_sites.append(index)
        elif instr.mnemonic == "JAL":
            jump_sites.append(index)
    return headers, branch_sites, jump_sites, non_headers


def _mutate_bb(rng, program, target, headers, branch_sites, jump_sites,
               non_headers):
    from repro.common.layout import WORD_BYTES

    if target == "header_count":
        index = headers[rng.randrange(len(headers))]
        instr = program.instrs[index]
        old = instr.imm
        new = old + rng.choice((-1, 1))
        if new < 0:
            new = old + 1
        instr.imm = new
        return index, f"BB count {old} -> {new}"
    pool = branch_sites if target == "branch_retarget" else jump_sites
    index = pool[rng.randrange(len(pool))]
    instr = program.instrs[index]
    old = instr.imm
    old_target = index + old // WORD_BYTES
    new_target = old_target
    while new_target == old_target:
        new_target = non_headers[rng.randrange(len(non_headers))]
    instr.imm = (new_target - index) * WORD_BYTES
    return index, f"target {old_target} -> {new_target} (non-header)"


def run_bb_mutation_campaign(program, mutants=40, seed=20260805, mix=BB_MIX):
    """Seeded corruption of the ``bb`` block-structure contract.

    Targets the invariants the structural verifier proves: a header count
    that disagrees with the block body (``header_count``, B2) and branch /
    jump targets rewired to mid-block instructions (``*_retarget``, B4).
    """
    from repro.bb.verify import verify_program as bb_verify

    _require_clean(bb_verify(program), "bb")
    headers, branch_sites, jump_sites, non_headers = _bb_sites(program)
    if not headers or not non_headers:
        raise ValueError("program has no BB block structure to mutate")

    rng = random.Random(seed)
    targets = [t for t, weight in mix for _ in range(weight)]
    records = []
    for _ in range(mutants):
        target = targets[rng.randrange(len(targets))]
        if target == "branch_retarget" and not branch_sites:
            target = "header_count"
        if target == "jump_retarget" and not jump_sites:
            target = "header_count"
        mutant = copy.deepcopy(program)
        index, description = _mutate_bb(
            rng, mutant, target, headers, branch_sites, jump_sites,
            non_headers,
        )
        report = bb_verify(mutant)
        records.append(
            {
                "target": target,
                "index": index,
                "mutation": description,
                "detected": report.has_errors(),
                "codes": sorted({d.code for d in report.errors()}),
            }
        )
    return MutationReport(seed, records, isa="bb")


# --------------------------------------------------------------------------
# registry dispatch + cached golden runs
# --------------------------------------------------------------------------

def run_campaign_for_isa(isa, program, mutants=None, seed=20260805,
                         max_distance=None):
    """Run the mutation campaign appropriate for a registered ISA.

    Dispatches on the descriptor's register model: distance-machine
    binaries get the STRAIGHT operand campaign, ``bb`` binaries the
    structural campaign, and any other gpr-model ISA the RV32IM dataflow
    campaign.  Raises :class:`~repro.common.errors.UnknownIsaError` for
    unregistered names.
    """
    from repro import isa as isa_registry

    descriptor = isa_registry.get(isa)
    if descriptor.register_model == "distance":
        return run_mutation_campaign(
            program,
            mutants=80 if mutants is None else mutants,
            seed=seed,
            max_distance=max_distance,
        )
    if descriptor.name == "bb":
        return run_bb_mutation_campaign(
            program, mutants=40 if mutants is None else mutants, seed=seed
        )
    return run_gpr_mutation_campaign(
        program,
        isa=descriptor.name,
        mutants=40 if mutants is None else mutants,
        seed=seed,
    )


class _CampaignBinary:
    """Adapter giving :func:`repro.harness.cache.binary_digest` its shape."""

    def __init__(self, isa, program):
        self.isa = isa
        self.program = program


def cached_mutation_campaign(isa, program, mutants=None, seed=20260805,
                             max_distance=None):
    """:func:`run_campaign_for_isa` memoized through the result cache.

    The key covers the binary digest (text + data + geometry), the ISA and
    every campaign parameter, so a toolchain change or a different mix can
    never serve a stale golden run.  Memory-only sessions (no cache
    configured) just run the campaign.
    """
    from repro.harness import cache as harness_cache

    results = harness_cache.result_cache()
    if results is None:
        return run_campaign_for_isa(
            isa, program, mutants=mutants, seed=seed,
            max_distance=max_distance,
        )
    key = {
        "kind": "mutation-campaign",
        "toolchain": harness_cache.TOOLCHAIN_TAG,
        "binary": harness_cache.binary_digest(_CampaignBinary(isa, program)),
        "isa": isa,
        "mutants": mutants,
        "seed": seed,
        "max_distance": max_distance,
    }
    hit = results.get(key)
    if hit is not None:
        return MutationReport.from_payload(hit)
    report = run_campaign_for_isa(
        isa, program, mutants=mutants, seed=seed, max_distance=max_distance
    )
    results.put(key, report.payload())
    return report
