"""Seeded mutation campaign: prove the static verifier catches corruption.

The dual of :mod:`repro.guardrails.faultinject`: instead of flipping
simulator state at run time, this corrupts operand *distances* in a
known-good linked binary — the encodings a STRAIGHT compiler bug or a bad
linker relocation would actually produce — and checks that
:func:`repro.analysis.verify_program` flags every mutant.

Mutation targets (all on ``SInstr.srcs``, keeping the producer manifest
truthful so detection measures the verifier, not a stale manifest):

* ``off_by_one``  — a distance nudged by ±1 (the classic refresh-slot bug);
* ``bit_flip``    — one of the 10 encoding bits of a distance flipped;
* ``retarget``    — a distance rewritten to another in-range value;
* ``zeroed``      — a distance replaced by 0 (reads the zero register);
* ``rmov_retarget`` — specifically an RMOV's source distance, modelling a
  corrupted merge-refresh or bounding relay.

Every mutation changes the dynamic dataflow of some reachable instruction,
so an undetected mutant is a genuine verifier gap, not a benign rewrite.
"""

import copy
import random

from repro.analysis.verifier import verify_program

#: The campaign's mutation mix: (target, weight).
DEFAULT_MIX = (
    ("off_by_one", 30),
    ("bit_flip", 25),
    ("retarget", 20),
    ("zeroed", 10),
    ("rmov_retarget", 15),
)


class MutationReport:
    """Aggregated outcome of one verifier mutation campaign."""

    def __init__(self, seed, records):
        self.seed = seed
        self.records = records
        self.total = len(records)
        self.detected = sum(1 for r in records if r["detected"])
        self.by_target = {}
        for record in records:
            bucket = self.by_target.setdefault(
                record["target"], {"detected": 0, "missed": 0}
            )
            bucket["detected" if record["detected"] else "missed"] += 1

    @property
    def detection_rate(self):
        return self.detected / self.total if self.total else 1.0

    def missed(self):
        return [r for r in self.records if not r["detected"]]

    def as_dict(self):
        return {
            "seed": self.seed,
            "total": self.total,
            "detected": self.detected,
            "missed": self.total - self.detected,
            "detection_rate": round(self.detection_rate, 4),
            "by_target": self.by_target,
        }

    def text(self):
        lines = [
            f"verifier mutation campaign: seed={self.seed} "
            f"mutants={self.total}",
            f"  detected {self.detected:4d}  ({self.detection_rate:.1%})",
            f"  missed   {self.total - self.detected:4d}",
        ]
        for target, bucket in sorted(self.by_target.items()):
            lines.append(
                f"    {target:15s} detected={bucket['detected']} "
                f"missed={bucket['missed']}"
            )
        for record in self.missed():
            lines.append(
                f"    MISSED {record['target']} at index {record['index']}: "
                f"{record['mutation']}"
            )
        return "\n".join(lines)


def _mutable_sites(program):
    """(index, operand) pairs whose distance a mutation may corrupt."""
    sites = []
    rmov_sites = []
    for index, instr in enumerate(program.instrs):
        for operand, dist in enumerate(instr.srcs):
            if dist > 0:
                sites.append((index, operand))
                if instr.mnemonic == "RMOV":
                    rmov_sites.append((index, operand))
    return sites, rmov_sites


def _mutate(rng, program, target, sites, rmov_sites, bound):
    """Apply one mutation in place; returns a (index, description) record."""
    pool = rmov_sites if target == "rmov_retarget" and rmov_sites else sites
    index, operand = pool[rng.randrange(len(pool))]
    instr = program.instrs[index]
    old = instr.srcs[operand]
    new = old
    while new == old:
        if target == "off_by_one":
            new = old + rng.choice((-1, 1))
            if not 0 <= new <= bound:
                new = old - (new - old)
        elif target == "bit_flip":
            new = old ^ (1 << rng.randrange(10))
        elif target == "zeroed":
            new = 0  # sites only list nonzero distances
        else:  # retarget / rmov_retarget
            new = rng.randrange(1, bound + 1)
    srcs = list(instr.srcs)
    srcs[operand] = new
    instr.srcs = tuple(srcs)  # bypass SInstr validation: corrupt on purpose
    return index, f"srcs[{operand}] {old} -> {new}"


def run_mutation_campaign(
    program, mutants=80, seed=20260805, mix=DEFAULT_MIX, max_distance=None
):
    """Corrupt ``mutants`` seeded copies of ``program``; verify each one.

    ``program`` must verify cleanly (no error diagnostics) before the
    campaign starts — a dirty baseline would make detection meaningless —
    otherwise ``ValueError`` is raised.  Returns a :class:`MutationReport`.
    """
    baseline = verify_program(program, max_distance=max_distance)
    if baseline.has_errors():
        raise ValueError(
            "mutation campaign needs a clean baseline, got:\n"
            + baseline.text(max_items=10)
        )
    bound = max_distance if max_distance is not None else program.max_distance
    sites, rmov_sites = _mutable_sites(program)
    if not sites:
        raise ValueError("program has no distance operands to mutate")

    rng = random.Random(seed)
    targets = [t for t, weight in mix for _ in range(weight)]
    records = []
    for _ in range(mutants):
        target = targets[rng.randrange(len(targets))]
        mutant = copy.deepcopy(program)
        index, description = _mutate(
            rng, mutant, target, sites, rmov_sites, bound
        )
        report = verify_program(mutant, max_distance=max_distance)
        records.append(
            {
                "target": target,
                "index": index,
                "mutation": description,
                "detected": report.has_errors(),
                "codes": sorted({d.code for d in report.errors()}),
            }
        )
    return MutationReport(seed, records)
