"""Static verifier for linked STRAIGHT programs.

Proves, over every path of the reconstructed CFG, the properties the
functional simulator (:mod:`repro.straight.interpreter`) checks dynamically
on one path:

* **Distance discipline** — every operand distance is in bounds, never
  reaches before program start, and never reaches across a call boundary
  into values the callee's dynamic instructions have pushed out of range.
* **Merge consistency / translation validation** — with the backend's
  producer manifest attached (``program.manifest``), every operand is proven
  to name the *same logical value* on every incoming path, i.e. the distance
  walker's merge refreshes actually realigned all producers.
* **SP discipline** — SP is only moved by SPADD, its offset is equal on all
  paths into a merge, and it is restored to the entry offset at every return.
* **Calling convention** — each call site provides every entry-age the
  callee consumes, and every JR jumps through the function's return address.

The abstract domain is a register-age vector: a tuple of ``K`` slots, slot
``d-1`` describing what a distance-``d`` operand would read.  Each slot is a
*frozenset of producer tags* (path join = pointwise union), where a tag is

* an ``int`` — the linked index of the static instruction that produced it,
* ``("entry", k)`` — the value that was at age ``k`` on function entry,
* ``("before", k)`` — a slot predating the program (only at ``_start``),
* ``("call", site, 1 | 2)`` — the callee's JR / return value after the
  call at ``site`` returned,
* ``("dead", site)`` — a caller value pushed out of reach by the callee's
  (statically unbounded) dynamic instruction count.

Every retired instruction writes exactly once, so the transfer function of
an instruction is a uniform shift-in; a JAL replaces the whole vector with
the post-return view.  The join is monotone over finite sets, so the
worklist fixpoint terminates; consumption checks run in a final pass over
the converged block-entry states.
"""

from repro.straight.encoding import encode, decode
from repro.common.errors import AsmError
from repro.analysis.cfg import build_cfg
from repro.analysis.diagnostics import Report, locate
from repro.analysis.framework import solve_forward

#: SP lattice top: incoming paths disagree on the SPADD sum.
SP_CONFLICT = "conflict"


class FuncResult:
    """Per-function facts the final pass and the lints consume."""

    def __init__(self, func):
        self.func = func
        self.annotated = False
        self.entry_ages = {}
        self.returns_value = False
        self.demand = set()  # entry ages k >= 2 this function consumes
        self.call_states = {}  # call-site index -> state before the JAL
        self.pre_jr_tags = set()  # int tags at slot 0 just before a JR
        self.in_states = {}  # block leader -> (slots, sp)


class VerifyContext:
    """Shared state of one :func:`verify_program` run."""

    def __init__(self, program, manifest, report, depth):
        self.program = program
        self.report = report
        self.depth = depth  # K: number of tracked slots
        self.manifest_instrs = (manifest or {}).get("instrs", {})
        self.manifest_funcs = (manifest or {}).get("functions", {})
        self.consumed = set()  # int tags read on some path
        self.rmov_src_tags = {}  # RMOV index -> frozenset of source tags
        self.rmov_source_of = set()  # int tags feeding some RMOV
        self.results = {}  # function entry index -> FuncResult


def verify_program(program, manifest=None, lint=False, max_distance=None):
    """Verify a linked :class:`~repro.straight.linker.StraightProgram`.

    ``manifest`` defaults to ``program.manifest`` (attached by the backend);
    without one, only the structural obligations are checked and the
    translation-validation checks (STR001/STR011) are skipped.
    ``max_distance`` overrides the bound to prove (default: the program's).
    Returns a :class:`~repro.analysis.diagnostics.Report`.
    """
    report = Report(program)
    if manifest is None:
        manifest = program.manifest
    bound = max_distance if max_distance is not None else program.max_distance

    _check_encoding(program, report)

    cfg = build_cfg(program)
    for code, index, message in cfg.issues:
        report.emit(code, message, index=index)

    depth = _state_depth(program, bound)
    ctx = VerifyContext(program, manifest, report, depth)

    for func in cfg.functions:
        _verify_function(ctx, cfg, func, bound)

    _check_call_sites(ctx, cfg)

    report.stats.update(
        {
            "functions": len(cfg.functions),
            "instructions": len(program.instrs),
            "tracked_slots": depth,
            "annotated_functions": sum(
                1 for r in ctx.results.values() if r.annotated
            ),
        }
    )

    if lint:
        from repro.analysis.lints import run_lints

        run_lints(ctx, cfg, report)
    return report


# -- program-wide structural checks -------------------------------------------


def _check_encoding(program, report):
    """STR009: every instruction must survive an encode/decode round trip."""
    for index, instr in enumerate(program.instrs):
        try:
            back = decode(encode(instr))
        except AsmError as exc:
            report.emit("STR009", str(exc), index=index)
            continue
        same = (
            back.mnemonic == instr.mnemonic
            and back.srcs == instr.srcs
            and (back.imm or 0) == (instr.imm or 0)
        )
        if not same:
            report.emit(
                "STR009",
                f"{instr!r} decodes as {back!r}",
                index=index,
            )


def _state_depth(program, bound):
    """K: deep enough for every used distance, capped at the proved bound."""
    deepest = 1
    for instr in program.instrs:
        for dist in instr.srcs:
            if dist > deepest:
                deepest = dist
    return max(1, min(bound, deepest))


# -- the abstract domain -------------------------------------------------------


def _entry_state(ctx, func, is_program_entry):
    kind = "before" if is_program_entry else "entry"
    slots = tuple(frozenset({(kind, k)}) for k in range(1, ctx.depth + 1))
    return slots, 0


def _join_sp(a, b):
    if a == b:
        return a
    return SP_CONFLICT


def _join(a, b):
    slots_a, sp_a = a
    slots_b, sp_b = b
    if slots_a == slots_b:
        slots = slots_a
    else:
        slots = tuple(x | y for x, y in zip(slots_a, slots_b))
    return slots, _join_sp(sp_a, sp_b)


def _post_call_slots(ctx, site):
    """The caller's age vector right after the call at ``site`` returns."""
    slots = [frozenset({("call", site, 1)}), frozenset({("call", site, 2)})]
    dead = frozenset({("dead", site)})
    while len(slots) < ctx.depth:
        slots.append(dead)
    return tuple(slots[: ctx.depth])


def _transfer_block(ctx, func, block, state):
    """Push the block's producers through ``state`` (no checks: fixpoint path)."""
    slots, sp = state
    program = ctx.program
    depth = ctx.depth
    indices = block.indices
    # Everything pushed before the last JAL is irrelevant to the out-state.
    last_call = None
    for pos in range(len(indices) - 1, -1, -1):
        if program.instrs[indices[pos]].mnemonic == "JAL":
            last_call = pos
            break
    if sp != SP_CONFLICT:
        for index in indices:
            if program.instrs[index].mnemonic == "SPADD":
                sp += program.instrs[index].imm
    if last_call is not None:
        slots = _post_call_slots(ctx, indices[last_call])
        tail = indices[last_call + 1 :]
    else:
        tail = indices
    if tail:
        pushed = tuple(frozenset({i}) for i in reversed(tail))
        slots = (pushed + slots)[:depth]
    return slots, sp


# -- per-function fixpoint + final checking pass -------------------------------


def _verify_function(ctx, cfg, func, bound):
    program = ctx.program
    result = FuncResult(func)
    ctx.results[func.entry] = result

    fmanifest = ctx.manifest_funcs.get(func.name)
    entry_annotated = func.entry in ctx.manifest_instrs
    if fmanifest is not None and entry_annotated:
        result.annotated = True
        result.entry_ages = dict(fmanifest["entry_ages"])
        result.returns_value = bool(fmanifest.get("returns_value"))

    is_program_entry = func.entry == program.index_of_pc(program.entry_pc)
    entry_state = _entry_state(ctx, func, is_program_entry)

    # The register-age abstract interpretation is one instance of the
    # generic engine: the lattice is (age-slot tag sets, SP offset) with
    # pointwise-union join, the transfer function the uniform shift-in.
    in_states = solve_forward(
        func,
        entry_state,
        lambda leader, state: _transfer_block(
            ctx, func, func.blocks[leader], state
        ),
        _join,
    )
    result.in_states = in_states

    # Final pass: walk each block from its converged entry state, checking
    # every operand and recording consumption facts for lints.  JR target
    # checks are deferred until every RMOV's source tags are on record.
    jr_checks = []
    for leader in sorted(in_states):
        block = func.blocks[leader]
        slots, sp = in_states[leader]
        merge = len(block.preds) > 1
        if merge and sp == SP_CONFLICT:
            ctx.report.emit(
                "STR004",
                "incoming paths reach this merge with different SP offsets",
                index=leader,
                function=func.name,
            )
        for index in block.indices:
            instr = program.instrs[index]
            for operand, dist in enumerate(instr.srcs):
                _check_operand(
                    ctx, result, func, index, instr, operand, dist, slots, bound
                )
            if instr.mnemonic == "RMOV" and instr.srcs[0] > 0:
                dist = instr.srcs[0]
                if dist <= len(slots):
                    tags = slots[dist - 1]
                    ctx.rmov_src_tags[index] = tags
                    ctx.rmov_source_of.update(
                        t for t in tags if isinstance(t, int)
                    )
            if instr.mnemonic == "JAL":
                result.call_states[index] = (slots, sp)
                slots = _post_call_slots(ctx, index)
                continue
            if instr.mnemonic == "JR":
                result.pre_jr_tags.update(
                    t for t in slots[0] if isinstance(t, int)
                )
                if sp != 0 and sp != SP_CONFLICT:
                    ctx.report.emit(
                        "STR005",
                        f"returns with SP offset {sp:+d} (SPADD sum must be "
                        "zero on every path to JR)",
                        index=index,
                        function=func.name,
                    )
                jr_checks.append((index, instr, slots))
            if instr.mnemonic == "SPADD":
                if sp != SP_CONFLICT:
                    sp += instr.imm
            slots = (frozenset({index}),) + slots[: ctx.depth - 1]
    for index, instr, jr_slots in jr_checks:
        _check_return_target(ctx, result, func, index, instr, jr_slots)


def _expected_uid(ctx, index, operand):
    entry = ctx.manifest_instrs.get(index)
    if entry is None:
        return None
    srcs = entry["srcs"]
    return srcs[operand] if operand < len(srcs) else None


def _tag_uid(ctx, result, tag):
    """The logical-value uid a tag carries, or a descriptive sentinel."""
    if isinstance(tag, int):
        entry = ctx.manifest_instrs.get(tag)
        if entry is not None:
            return entry["product"]
        return ("instr", tag)
    kind = tag[0]
    if kind == "entry":
        uid = result.entry_ages.get(tag[1])
        if uid is not None:
            return uid
        return ("beyond-entry", tag[1])
    if kind == "call":
        site = tag[1]
        if tag[2] == 2:
            entry = ctx.manifest_instrs.get(site)
            retval = entry["retval"] if entry is not None else None
            if retval is not None:
                return retval
            return ("void-call", site)
        return ("jr", site)
    return ("invalid",) + tag  # before / dead


def _describe_tag(ctx, tag):
    if isinstance(tag, int):
        return f"producer at {locate(ctx.program, tag)}"
    kind = tag[0]
    if kind == "entry":
        return f"entry age {tag[1]}"
    if kind == "before":
        return "a slot before program start"
    if kind == "call":
        which = "return value" if tag[2] == 2 else "return jump"
        return f"{which} of the call at {locate(ctx.program, tag[1])}"
    return repr(tag)


def _check_operand(ctx, result, func, index, instr, operand, dist, slots, bound):
    report = ctx.report
    where = dict(function=func.name, data={"operand": operand})
    if dist == 0:
        if result.annotated and _expected_uid(ctx, index, operand) is not None:
            report.emit(
                "STR011",
                f"{instr.mnemonic} operand {operand} reads the zero register "
                "but the backend recorded a real source value",
                index=index,
                **where,
            )
        return
    if dist > bound:
        report.emit(
            "STR002",
            f"{instr.mnemonic} operand {operand} has distance {dist} "
            f"> max_distance {bound}",
            index=index,
            **where,
        )
        return
    if dist > len(slots):  # deeper than any producer this program tracks
        report.emit(
            "STR006",
            f"distance {dist} is deeper than any value the program "
            "has produced on this path",
            index=index,
            **where,
        )
        return
    tags = slots[dist - 1]
    ctx.consumed.update(t for t in tags if isinstance(t, int))
    for tag in tags:
        if not isinstance(tag, int) and tag[0] == "entry" and tag[1] >= 2:
            result.demand.add(tag[1])

    # Structural obligations (checked with or without a manifest).
    emitted_error = False
    for tag in tags:
        if isinstance(tag, int):
            continue
        kind = tag[0]
        if kind == "dead":
            report.emit(
                "STR003",
                f"distance {dist} reaches a caller value the call at "
                f"{locate(ctx.program, tag[1])} pushed out of range",
                index=index,
                **where,
            )
            emitted_error = True
        elif kind == "before":
            report.emit(
                "STR006",
                f"distance {dist} reaches before program start",
                index=index,
                **where,
            )
            emitted_error = True
        elif kind == "call" and tag[2] == 1:
            report.emit(
                "STR106",
                f"distance {dist} reads the callee's JR value "
                "(architecturally zero)",
                index=index,
                **where,
            )
        elif kind == "entry" and result.annotated and tag[1] not in result.entry_ages:
            report.emit(
                "STR012",
                f"distance {dist} reaches entry age {tag[1]}, beyond the "
                f"{len(result.entry_ages)} value(s) the calling convention "
                "defines for this function",
                index=index,
                **where,
            )
            emitted_error = True
        elif kind == "call" and tag[2] == 2 and result.annotated:
            entry = ctx.manifest_instrs.get(tag[1])
            if entry is not None and entry["retval"] is None:
                report.emit(
                    "STR003",
                    f"distance {dist} reads the return-value slot of a "
                    "void call",
                    index=index,
                    **where,
                )
                emitted_error = True

    if emitted_error or not result.annotated:
        return

    # Translation validation: every surviving tag must carry the uid the
    # backend recorded for this operand.
    expected = _expected_uid(ctx, index, operand)
    if expected is None:
        # Either this instruction was not compiler-emitted (mixed link) or
        # the backend recorded a zero-register source for a nonzero distance.
        if index in ctx.manifest_instrs:
            report.emit(
                "STR011",
                f"{instr.mnemonic} operand {operand} has distance {dist} "
                "but the backend recorded a zero-register source",
                index=index,
                **where,
            )
        return
    mismatched = [t for t in tags if _tag_uid(ctx, result, t) != expected]
    if not mismatched:
        return
    matched = len(tags) - len(mismatched)
    sample = _describe_tag(ctx, mismatched[0])
    if matched:
        report.emit(
            "STR001",
            f"{instr.mnemonic} operand {operand} (distance {dist}) names "
            f"the intended value on {matched} path(s) but {sample} on "
            f"{len(mismatched)} other(s): merge refresh missing or misaligned",
            index=index,
            **where,
        )
    else:
        report.emit(
            "STR011",
            f"{instr.mnemonic} operand {operand} (distance {dist}) names "
            f"{sample}, not the value the backend intended",
            index=index,
            **where,
        )


def _resolve_root(ctx, tag, _guard=None):
    """Follow RMOV relays back to the originating producer tags."""
    if _guard is None:
        _guard = set()
    if not isinstance(tag, int):
        return {tag}
    if tag in _guard:
        return set()
    _guard.add(tag)
    instr = ctx.program.instrs[tag]
    if instr.mnemonic != "RMOV":
        return {tag}
    roots = set()
    for src in ctx.rmov_src_tags.get(tag, ()):
        roots |= _resolve_root(ctx, src, _guard)
    return roots or {tag}


def _check_return_target(ctx, result, func, index, instr, slots):
    """STR007/STR104: every JR must jump through the return address."""
    dist = instr.srcs[0]
    if dist == 0 or dist > len(slots):
        return  # already diagnosed by the operand checks
    roots = set()
    for tag in slots[dist - 1]:
        roots |= _resolve_root(ctx, tag)
    retaddr_uid = result.entry_ages.get(1) if result.annotated else None
    bad = []
    for root in roots:
        if not isinstance(root, int):
            if root == ("entry", 1):
                continue
            bad.append(root)
            continue
        mnemonic = ctx.program.instrs[root].mnemonic
        if mnemonic == "LD":
            # Spilled return address: the operand itself was validated
            # against the manifest; proving the *memory* round trip is out
            # of scope for a register-age analysis, so only note it.
            ctx.report.emit(
                "STR104",
                "JR target travels through memory (spilled return "
                "address); the round trip is validated dynamically, "
                "not statically",
                index=index,
                function=func.name,
            )
            continue
        if retaddr_uid is not None and _tag_uid(ctx, result, root) == retaddr_uid:
            continue
        bad.append(root)
    for root in bad[:1]:
        ctx.report.emit(
            "STR007",
            f"JR target resolves to {_describe_tag(ctx, root)}, not the "
            "function's return address",
            index=index,
            function=func.name,
        )


# -- interprocedural: call-site demand ----------------------------------------


def _check_call_sites(ctx, cfg):
    """STR008: every entry age a callee consumes must exist at the call."""
    for func in cfg.functions:
        result = ctx.results[func.entry]
        for site, target in func.call_sites:
            if target is None:
                continue
            callee = ctx.results.get(target)
            if callee is None:
                continue
            if callee.annotated:
                demand = {k for k in callee.entry_ages if k >= 2}
            else:
                demand = set(callee.demand)
            state = result.call_states.get(site)
            if state is None:
                continue  # unreachable call site
            slots, _ = state
            callee_name = cfg.function_at(target).name
            for age in sorted(demand):
                caller_dist = age - 1  # callee age k = caller slot k-2
                if caller_dist > len(slots):
                    ctx.report.emit(
                        "STR008",
                        f"callee {callee_name!r} consumes entry age {age} "
                        "but the call site has produced no such value",
                        index=site,
                        function=func.name,
                        data={"operand": age},
                    )
                    continue
                tags = slots[caller_dist - 1]
                broken = [
                    t
                    for t in tags
                    if not isinstance(t, int)
                    and t[0] in ("dead", "before")
                ]
                if broken:
                    ctx.report.emit(
                        "STR008",
                        f"callee {callee_name!r} consumes entry age {age} "
                        f"but at this call site that slot is "
                        f"{_describe_tag(ctx, broken[0])}",
                        index=site,
                        function=func.name,
                        data={"operand": age},
                    )
                    continue
                # The argument producers are consumed by the callee.
                ctx.consumed.update(t for t in tags if isinstance(t, int))
