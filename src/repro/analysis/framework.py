"""ISA-generic dataflow analysis framework.

One worklist fixpoint engine shared by every static analysis in the repo,
parameterized over

* an :class:`IsaAnalysisSupport` object supplied by the ISA's
  :class:`~repro.isa.descriptor.IsaDescriptor` (its ``analysis`` hook),
  which knows the ISA's control protocol (successors, calls, returns,
  block terminators) and its dataflow protocol (uses/defs or age slots,
  latencies, per-block dependence graphs); and
* a *lattice protocol* — three callables ``(boundary, join, transfer)``
  describing one analysis over that ISA.

The engine itself is ISA-agnostic: it walks the reconstructed
:class:`~repro.analysis.cfg.BinCFG` (itself built through the same support
object) and iterates transfer functions to a fixpoint.  The solver's
semantics — LIFO worklist, join-or-first-copy into successors, re-enqueue
on change — are exactly those of the original STRAIGHT verifier's inline
loop, which is now one instance of this engine; the ``bb`` structural
verifier and the new ``rv32im`` def-before-use/SP-balance verifier are two
more, and the liveness, value-range and static-ILP passes
(:mod:`repro.analysis.passes`, :mod:`repro.analysis.ilp_static`) complete
the set.

Termination: the engine requires ``join`` to be monotone over a lattice of
finite height (all analyses here join finite sets or widened intervals);
each node re-enqueues only when its in-state strictly grows.
"""

FORWARD = "forward"
BACKWARD = "backward"


def fixpoint(entries, successors, transfer, join):
    """Generic worklist fixpoint over an explicit node graph.

    ``entries`` maps seed nodes to their boundary in-states; ``successors``
    maps a node to the nodes its out-state flows into (CFG successors for a
    forward analysis, predecessors for a backward one); ``transfer`` maps
    ``(node, in_state)`` to the node's out-state; ``join`` is the lattice's
    least upper bound.  Returns ``{node: converged in-state}`` covering
    every node reachable from the seeds along ``successors`` edges.
    """
    in_states = dict(entries)
    worklist = list(entries)
    on_list = set(entries)
    while worklist:
        node = worklist.pop()
        on_list.discard(node)
        out = transfer(node, in_states[node])
        for succ in successors(node):
            if succ in in_states:
                joined = join(in_states[succ], out)
                if joined == in_states[succ]:
                    continue
                in_states[succ] = joined
            else:
                in_states[succ] = out
            if succ not in on_list:
                on_list.add(succ)
                worklist.append(succ)
    return in_states


def solve_forward(func, entry_state, transfer, join):
    """Forward dataflow over one :class:`~repro.analysis.cfg.BinFunction`.

    Seeds the function's entry block with ``entry_state`` and propagates
    along block successor edges; returns block-leader -> in-state.
    """
    return fixpoint(
        {func.entry: entry_state},
        lambda leader: func.blocks[leader].succs,
        transfer,
        join,
    )


def solve_backward(func, boundary, transfer, join, bottom=None):
    """Backward dataflow over one function: block-leader -> out-state.

    ``boundary`` seeds every *exit* block (no successors); blocks on a cycle
    with no path to an exit are seeded with ``bottom`` (default: the
    boundary) so infinite loops still converge.  ``transfer`` maps
    ``(leader, out_state)`` to the block's in-state, which flows to its
    predecessors' out-states.
    """
    if bottom is None:
        bottom = boundary
    entries = {}
    for leader, block in func.blocks.items():
        entries[leader] = boundary if not block.succs else bottom
    return fixpoint(
        entries,
        lambda leader: func.blocks[leader].preds,
        transfer,
        join,
    )


class Analysis:
    """Lattice-protocol base class for class-style analyses.

    Subclasses set :attr:`direction` and implement :meth:`boundary`,
    :meth:`join` and :meth:`transfer`; :meth:`run` dispatches to the
    matching solver.  Function-style analyses can call
    :func:`solve_forward` / :func:`solve_backward` directly — the verifier
    does — this class exists for analyses that carry configuration.
    """

    direction = FORWARD

    def boundary(self, func):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, func, leader, state):
        raise NotImplementedError

    def bottom(self, func):
        return self.boundary(func)

    def run(self, func):
        transfer = lambda leader, state: self.transfer(func, leader, state)  # noqa: E731
        if self.direction == FORWARD:
            return solve_forward(func, self.boundary(func), transfer, self.join)
        return solve_backward(
            func, self.boundary(func), transfer, self.join, self.bottom(func)
        )


def support_for(isa_name):
    """Resolve the per-ISA analysis support object from the registry.

    Returns ``None`` for ISAs that do not supply an ``analysis`` hook.
    """
    from repro import isa as isa_registry

    descriptor = isa_registry.get(isa_name)
    if descriptor.analysis is None:
        return None
    return descriptor.analysis()
